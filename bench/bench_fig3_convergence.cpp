// Figure 3 (reconstructed): global-placement convergence on dp_alu32 --
// HPWL and density overflow per outer iteration, baseline vs the
// structure-aware flow (whose trace concatenates phase A and phase B).
#include "common.hpp"

int main() {
  using namespace dp;
  bench::quiet_logs();
  const auto b = dpgen::make_benchmark("dp_alu32");
  for (const bench::Flow flow : {bench::Flow::kBaseline, bench::Flow::kGentle}) {
    const auto r = bench::run_flow(b, flow);
    std::printf("Figure 3 series: %s (outer, HPWL, overflow, lambda)\n",
                bench::flow_name(flow));
    for (const auto& p : r.report.gp_result.trace) {
      std::printf("  %3zu  %10.1f  %6.4f  %10.3g\n", p.outer, p.hpwl,
                  p.overflow, p.lambda);
    }
  }
  return 0;
}
