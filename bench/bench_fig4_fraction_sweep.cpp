// Figure 4 (reconstructed): HPWL delta of the structure-aware flow vs the
// baseline as a function of the design's datapath fraction.
#include "common.hpp"

int main() {
  using namespace dp;
  bench::quiet_logs();
  util::Table table({"dp fraction", "base HPWL", "SA HPWL", "delta",
                     "base misalign", "SA misalign"});
  for (const double frac : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    const auto b = dpgen::make_mix(frac, 2000);
    const auto rb = bench::run_flow(b, bench::Flow::kBaseline);
    const auto rs = bench::run_flow(b, bench::Flow::kGentle);
    const double base_mis =
        eval::alignment_score(b.netlist, rb.placement, b.truth)
            .rms_misalignment;
    table.add_row(
        {util::Table::pct(frac, 0), util::Table::num(rb.report.hpwl_final, 0),
         util::Table::num(rs.report.hpwl_final, 0),
         util::Table::pct((rs.report.hpwl_final - rb.report.hpwl_final) /
                              rb.report.hpwl_final,
                          1),
         util::Table::num(base_mis, 2),
         util::Table::num(rs.report.alignment.rms_misalignment, 2)});
  }
  std::printf("Figure 4: effect of datapath fraction\n%s",
              table.to_string().c_str());
  return 0;
}
