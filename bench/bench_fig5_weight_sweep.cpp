// Figure 5 (reconstructed, ablation): alignment-weight sweep on dp_add32.
// Weight 0 disables the alignment objective (the flow degenerates toward
// the baseline shape); large weights push alignment to zero at a
// wirelength cost.
#include "common.hpp"

int main() {
  using namespace dp;
  bench::quiet_logs();
  const auto b = dpgen::make_benchmark("dp_add32");
  const auto rb = bench::run_flow(b, bench::Flow::kBaseline);
  std::printf("baseline: HPWL=%.0f\n", rb.report.hpwl_final);
  util::Table table({"alignment weight", "HPWL", "vs base",
                     "misalign [rows]", "dp HPWL"});
  for (const double w : {0.0, 0.01, 0.1, 0.3, 1.0, 3.0, 10.0}) {
    core::PlacerConfig c = bench::flow_config(bench::Flow::kGentle);
    c.alignment_weight = w;
    const auto r = bench::run_flow(b, bench::Flow::kGentle, c);
    table.add_row({util::Table::num(w, 2),
                   util::Table::num(r.report.hpwl_final, 0),
                   util::Table::pct((r.report.hpwl_final -
                                     rb.report.hpwl_final) /
                                        rb.report.hpwl_final,
                                    1),
                   util::Table::num(r.report.alignment.rms_misalignment, 2),
                   util::Table::num(r.report.datapath_hpwl_final, 0)});
  }
  std::printf("Figure 5: alignment weight ablation (dp_add32)\n%s",
              table.to_string().c_str());
  return 0;
}
