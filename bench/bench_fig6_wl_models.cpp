// Figure 6 (reconstructed, ablation): wirelength-model comparison -- the
// classic log-sum-exp model vs the weighted-average model (the group's own
// TCAD'13 contribution), plus the quadratic initializer alone.
#include "common.hpp"
#include "gp/global_placer.hpp"
#include "gp/quadratic.hpp"

int main() {
  using namespace dp;
  bench::quiet_logs();
  util::Table table({"design", "model", "final HPWL", "CG iters", "time [s]"});
  for (const auto& name : {"dp_add32", "dp_alu32", "mix50"}) {
    const auto b = dpgen::make_benchmark(name);
    // Quadratic initializer alone (no legalization; lower bound reference).
    {
      gp::VarMap vars(b.netlist);
      netlist::Placement pl = b.placement;
      util::Timer t;
      gp::quadratic_initial_placement(b.netlist, b.design, vars, pl);
      table.add_row({name, "quadratic-init",
                     util::Table::num(eval::hpwl(b.netlist, pl), 0), "0",
                     util::Table::num(t.seconds(), 2)});
    }
    for (const auto model :
         {gp::WirelengthModel::kLse, gp::WirelengthModel::kWa}) {
      core::PlacerConfig c = bench::flow_config(bench::Flow::kBaseline);
      c.gp.wl_model = model;
      const auto r = bench::run_flow(b, bench::Flow::kBaseline, c);
      table.add_row({name,
                     model == gp::WirelengthModel::kLse ? "LSE" : "WA",
                     util::Table::num(r.report.hpwl_final, 0),
                     util::Table::integer(
                         (long long)r.report.gp_result.total_cg_iterations),
                     util::Table::num(r.seconds, 2)});
    }
  }
  std::printf("Figure 6: smooth wirelength model ablation (baseline flow)\n%s",
              table.to_string().c_str());
  return 0;
}
