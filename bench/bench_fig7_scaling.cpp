// Figure 7 (reconstructed): runtime scaling with design size for both
// flows (replicated-ALU designs with 40% glue).
#include "common.hpp"

int main() {
  using namespace dp;
  bench::quiet_logs();
  util::Table table({"#cells", "base time [s]", "SA time [s]", "SA/base",
                     "base HPWL", "SA HPWL"});
  for (const std::size_t target : {1000u, 2000u, 4000u, 8000u}) {
    const auto b = dpgen::make_scaled(target);
    const auto rb = bench::run_flow(b, bench::Flow::kBaseline);
    const auto rs = bench::run_flow(b, bench::Flow::kGentle);
    table.add_row({util::Table::integer((long long)b.netlist.num_movable()),
                   util::Table::num(rb.seconds, 2),
                   util::Table::num(rs.seconds, 2),
                   util::Table::num(rs.seconds / rb.seconds, 2),
                   util::Table::num(rb.report.hpwl_final, 0),
                   util::Table::num(rs.report.hpwl_final, 0)});
  }
  std::printf("Figure 7: runtime scaling\n%s", table.to_string().c_str());
  return 0;
}
