// Figure 7 (reconstructed): runtime scaling with design size for both
// flows (replicated-ALU designs with 40% glue).
//
// Flags:
//   --quick       smallest size only (CI smoke mode)
//   --threads N   gradient-kernel worker threads (default 1)
#include <cstring>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace dp;
  bench::quiet_logs();
  bool quick = false;
  std::size_t num_threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      num_threads = static_cast<std::size_t>(std::atol(argv[++i]));
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--threads N]\n", argv[0]);
      return 2;
    }
  }

  util::Table table({"#cells", "base time [s]", "SA time [s]", "SA/base",
                     "base HPWL", "SA HPWL"});
  std::vector<std::size_t> sizes = {1000u, 2000u, 4000u, 8000u};
  if (quick) sizes.resize(1);
  for (const std::size_t target : sizes) {
    const auto b = dpgen::make_scaled(target);
    auto cb = bench::flow_config(bench::Flow::kBaseline);
    auto cs = bench::flow_config(bench::Flow::kGentle);
    cb.num_threads = num_threads;
    cs.num_threads = num_threads;
    const auto rb = bench::run_flow(b, bench::Flow::kBaseline, cb);
    const auto rs = bench::run_flow(b, bench::Flow::kGentle, cs);
    table.add_row({util::Table::integer((long long)b.netlist.num_movable()),
                   util::Table::num(rb.seconds, 2),
                   util::Table::num(rs.seconds, 2),
                   util::Table::num(rs.seconds / rb.seconds, 2),
                   util::Table::num(rb.report.hpwl_final, 0),
                   util::Table::num(rs.report.hpwl_final, 0)});
  }
  std::printf("Figure 7: runtime scaling%s\n%s", quick ? " (quick)" : "",
              table.to_string().c_str());
  return 0;
}
