// Micro-benchmarks (google-benchmark): per-evaluation cost of the placer
// kernels on dp_alu32-sized data, including thread-count sweeps for the
// parallel gradient kernels. Unless the caller passes --benchmark_out,
// results are also written to BENCH_gp_kernels.json (machine-readable,
// consumed by CI).
#include <benchmark/benchmark.h>

#include <memory>
#include <string_view>
#include <thread>
#include <vector>

#include "common.hpp"
#include "extract/extractor.hpp"
#include "gp/density.hpp"
#include "gp/wirelength.hpp"
#include "util/thread_pool.hpp"

namespace {

const dp::dpgen::Benchmark& bench_data() {
  static const dp::dpgen::Benchmark b = [] {
    dp::bench::quiet_logs();
    return dp::dpgen::make_benchmark("dp_alu32");
  }();
  return b;
}

void BM_Hpwl(benchmark::State& state) {
  const auto& b = bench_data();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dp::eval::hpwl(b.netlist, b.placement));
  }
}
BENCHMARK(BM_Hpwl);

void BM_WirelengthGradient(benchmark::State& state) {
  const auto& b = bench_data();
  const dp::gp::VarMap vars(b.netlist);
  dp::gp::SmoothWirelength wl(
      b.netlist,
      state.range(0) == 0 ? dp::gp::WirelengthModel::kLse
                          : dp::gp::WirelengthModel::kWa,
      1.0);
  std::vector<double> gx(vars.num_vars()), gy(vars.num_vars());
  auto pl = b.placement;
  for (auto _ : state) {
    std::fill(gx.begin(), gx.end(), 0.0);
    std::fill(gy.begin(), gy.end(), 0.0);
    benchmark::DoNotOptimize(wl.eval(pl, vars, gx, gy));
  }
}
BENCHMARK(BM_WirelengthGradient)->Arg(0)->Arg(1);

void BM_DensityGradient(benchmark::State& state) {
  const auto& b = bench_data();
  const dp::gp::VarMap vars(b.netlist);
  dp::gp::DensityPenalty den(b.netlist, b.design);
  std::vector<double> gx(vars.num_vars()), gy(vars.num_vars());
  auto pl = b.placement;
  for (auto _ : state) {
    std::fill(gx.begin(), gx.end(), 0.0);
    std::fill(gy.begin(), gy.end(), 0.0);
    benchmark::DoNotOptimize(den.eval(pl, vars, gx, gy));
  }
}
BENCHMARK(BM_DensityGradient);

// Thread-count sweep (1/2/4/hardware) for the parallel kernels. The
// arg is the total worker count handed to the pool; results are bitwise
// identical across the sweep, only the wall time may change.
void thread_args(benchmark::internal::Benchmark* b) {
  std::vector<long> counts = {1, 2, 4};
  const long hw = static_cast<long>(std::thread::hardware_concurrency());
  if (hw > 4) counts.push_back(hw);
  for (const long c : counts) b->Arg(c);
}

void BM_WirelengthEvalThreads(benchmark::State& state) {
  const auto& b = bench_data();
  const dp::gp::VarMap vars(b.netlist);
  dp::gp::SmoothWirelength wl(b.netlist, dp::gp::WirelengthModel::kWa, 1.0);
  wl.set_thread_pool(std::make_shared<dp::util::ThreadPool>(
      static_cast<std::size_t>(state.range(0))));
  std::vector<double> gx(vars.num_vars()), gy(vars.num_vars());
  const auto& pl = b.placement;
  for (auto _ : state) {
    std::fill(gx.begin(), gx.end(), 0.0);
    std::fill(gy.begin(), gy.end(), 0.0);
    benchmark::DoNotOptimize(wl.eval(pl, vars, gx, gy));
  }
}
BENCHMARK(BM_WirelengthEvalThreads)->Apply(thread_args);

void BM_DensityEvalThreads(benchmark::State& state) {
  const auto& b = bench_data();
  const dp::gp::VarMap vars(b.netlist);
  dp::gp::DensityPenalty den(b.netlist, b.design);
  den.set_thread_pool(std::make_shared<dp::util::ThreadPool>(
      static_cast<std::size_t>(state.range(0))));
  std::vector<double> gx(vars.num_vars()), gy(vars.num_vars());
  const auto& pl = b.placement;
  for (auto _ : state) {
    std::fill(gx.begin(), gx.end(), 0.0);
    std::fill(gy.begin(), gy.end(), 0.0);
    benchmark::DoNotOptimize(den.eval(pl, vars, gx, gy));
  }
}
BENCHMARK(BM_DensityEvalThreads)->Apply(thread_args);

void BM_Extraction(benchmark::State& state) {
  const auto& b = bench_data();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dp::extract::extract_structures(b.netlist));
  }
}
BENCHMARK(BM_Extraction);

void BM_Signatures(benchmark::State& state) {
  const auto& b = bench_data();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dp::extract::cell_signatures(b.netlist));
  }
}
BENCHMARK(BM_Signatures);

}  // namespace

// Like BENCHMARK_MAIN(), but defaults --benchmark_out to
// BENCH_gp_kernels.json (JSON format) when the caller didn't choose an
// output file, so a bare run always leaves a machine-readable record.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).rfind("--benchmark_out", 0) == 0) {
      has_out = true;
    }
  }
  static char out_flag[] = "--benchmark_out=BENCH_gp_kernels.json";
  static char fmt_flag[] = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag);
    args.push_back(fmt_flag);
  }
  int args_argc = static_cast<int>(args.size());
  benchmark::Initialize(&args_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
