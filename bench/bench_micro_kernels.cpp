// Micro-benchmarks (google-benchmark): per-evaluation cost of the placer
// kernels on dp_alu32-sized data.
#include <benchmark/benchmark.h>

#include "common.hpp"
#include "extract/extractor.hpp"
#include "gp/density.hpp"
#include "gp/wirelength.hpp"

namespace {

const dp::dpgen::Benchmark& bench_data() {
  static const dp::dpgen::Benchmark b = [] {
    dp::bench::quiet_logs();
    return dp::dpgen::make_benchmark("dp_alu32");
  }();
  return b;
}

void BM_Hpwl(benchmark::State& state) {
  const auto& b = bench_data();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dp::eval::hpwl(b.netlist, b.placement));
  }
}
BENCHMARK(BM_Hpwl);

void BM_WirelengthGradient(benchmark::State& state) {
  const auto& b = bench_data();
  const dp::gp::VarMap vars(b.netlist);
  dp::gp::SmoothWirelength wl(
      b.netlist,
      state.range(0) == 0 ? dp::gp::WirelengthModel::kLse
                          : dp::gp::WirelengthModel::kWa,
      1.0);
  std::vector<double> gx(vars.num_vars()), gy(vars.num_vars());
  auto pl = b.placement;
  for (auto _ : state) {
    std::fill(gx.begin(), gx.end(), 0.0);
    std::fill(gy.begin(), gy.end(), 0.0);
    benchmark::DoNotOptimize(wl.eval(pl, vars, gx, gy));
  }
}
BENCHMARK(BM_WirelengthGradient)->Arg(0)->Arg(1);

void BM_DensityGradient(benchmark::State& state) {
  const auto& b = bench_data();
  const dp::gp::VarMap vars(b.netlist);
  dp::gp::DensityPenalty den(b.netlist, b.design);
  std::vector<double> gx(vars.num_vars()), gy(vars.num_vars());
  auto pl = b.placement;
  for (auto _ : state) {
    std::fill(gx.begin(), gx.end(), 0.0);
    std::fill(gy.begin(), gy.end(), 0.0);
    benchmark::DoNotOptimize(den.eval(pl, vars, gx, gy));
  }
}
BENCHMARK(BM_DensityGradient);

void BM_Extraction(benchmark::State& state) {
  const auto& b = bench_data();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dp::extract::extract_structures(b.netlist));
  }
}
BENCHMARK(BM_Extraction);

void BM_Signatures(benchmark::State& state) {
  const auto& b = bench_data();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dp::extract::cell_signatures(b.netlist));
  }
}
BENCHMARK(BM_Signatures);

}  // namespace

BENCHMARK_MAIN();
