// Micro-benchmarks (google-benchmark): per-evaluation cost of the placer
// kernels on dp_alu32-sized data, including thread-count sweeps for the
// parallel gradient kernels. Unless the caller passes --benchmark_out,
// results are also written to BENCH_gp_kernels.json (machine-readable,
// consumed by CI).
#include <benchmark/benchmark.h>

#include <memory>
#include <string_view>
#include <thread>
#include <vector>

#include "common.hpp"
#include "detail/detailed_placer.hpp"
#include "eval/incremental_hpwl.hpp"
#include "extract/extractor.hpp"
#include "gp/density.hpp"
#include "gp/wirelength.hpp"
#include "legal/abacus.hpp"
#include "util/prng.hpp"
#include "util/thread_pool.hpp"

namespace {

const dp::dpgen::Benchmark& bench_data() {
  static const dp::dpgen::Benchmark b = [] {
    dp::bench::quiet_logs();
    return dp::dpgen::make_benchmark("dp_alu32");
  }();
  return b;
}

void BM_Hpwl(benchmark::State& state) {
  const auto& b = bench_data();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dp::eval::hpwl(b.netlist, b.placement));
  }
}
BENCHMARK(BM_Hpwl);

void BM_WirelengthGradient(benchmark::State& state) {
  const auto& b = bench_data();
  const dp::gp::VarMap vars(b.netlist);
  dp::gp::SmoothWirelength wl(
      b.netlist,
      state.range(0) == 0 ? dp::gp::WirelengthModel::kLse
                          : dp::gp::WirelengthModel::kWa,
      1.0);
  std::vector<double> gx(vars.num_vars()), gy(vars.num_vars());
  auto pl = b.placement;
  for (auto _ : state) {
    std::fill(gx.begin(), gx.end(), 0.0);
    std::fill(gy.begin(), gy.end(), 0.0);
    benchmark::DoNotOptimize(wl.eval(pl, vars, gx, gy));
  }
}
BENCHMARK(BM_WirelengthGradient)->Arg(0)->Arg(1);

void BM_DensityGradient(benchmark::State& state) {
  const auto& b = bench_data();
  const dp::gp::VarMap vars(b.netlist);
  dp::gp::DensityPenalty den(b.netlist, b.design);
  std::vector<double> gx(vars.num_vars()), gy(vars.num_vars());
  auto pl = b.placement;
  for (auto _ : state) {
    std::fill(gx.begin(), gx.end(), 0.0);
    std::fill(gy.begin(), gy.end(), 0.0);
    benchmark::DoNotOptimize(den.eval(pl, vars, gx, gy));
  }
}
BENCHMARK(BM_DensityGradient);

// Thread-count sweep (1/2/4/hardware) for the parallel kernels. The
// arg is the total worker count handed to the pool; results are bitwise
// identical across the sweep, only the wall time may change.
void thread_args(benchmark::internal::Benchmark* b) {
  std::vector<long> counts = {1, 2, 4};
  const long hw = static_cast<long>(std::thread::hardware_concurrency());
  if (hw > 4) counts.push_back(hw);
  for (const long c : counts) b->Arg(c);
}

void BM_WirelengthEvalThreads(benchmark::State& state) {
  const auto& b = bench_data();
  const dp::gp::VarMap vars(b.netlist);
  dp::gp::SmoothWirelength wl(b.netlist, dp::gp::WirelengthModel::kWa, 1.0);
  wl.set_thread_pool(std::make_shared<dp::util::ThreadPool>(
      static_cast<std::size_t>(state.range(0))));
  std::vector<double> gx(vars.num_vars()), gy(vars.num_vars());
  const auto& pl = b.placement;
  for (auto _ : state) {
    std::fill(gx.begin(), gx.end(), 0.0);
    std::fill(gy.begin(), gy.end(), 0.0);
    benchmark::DoNotOptimize(wl.eval(pl, vars, gx, gy));
  }
}
BENCHMARK(BM_WirelengthEvalThreads)->Apply(thread_args);

void BM_DensityEvalThreads(benchmark::State& state) {
  const auto& b = bench_data();
  const dp::gp::VarMap vars(b.netlist);
  dp::gp::DensityPenalty den(b.netlist, b.design);
  den.set_thread_pool(std::make_shared<dp::util::ThreadPool>(
      static_cast<std::size_t>(state.range(0))));
  std::vector<double> gx(vars.num_vars()), gy(vars.num_vars());
  const auto& pl = b.placement;
  for (auto _ : state) {
    std::fill(gx.begin(), gx.end(), 0.0);
    std::fill(gy.begin(), gy.end(), 0.0);
    benchmark::DoNotOptimize(den.eval(pl, vars, gx, gy));
  }
}
BENCHMARK(BM_DensityEvalThreads)->Apply(thread_args);

// ---- detailed-placement kernels (recorded to BENCH_detail_kernels.json
// by the filtered CI run: --benchmark_filter='^BM_Detail') -----------------

/// Legalized dp_alu32 placement plus a fixed cycle of candidate moves,
/// shared by the full-rescan and delta kernels so they score identical
/// work. Each candidate shifts a run of `k` cells together -- k = 1 is a
/// slide-pass move, larger k a unit slide of a datapath slice (the
/// structure-aware hot path). With `hi_fanout` the single-cell candidates
/// are drawn from the top 2% of cells by incident net degree (the
/// control-broadcast cohort, ~145 incident pins each) -- the class where
/// a full rescan hurts most and the cached-extent delta shines.
struct DetailFixture {
  dp::netlist::Placement pl;
  std::vector<std::vector<dp::netlist::CellId>> moves;
  std::vector<double> dxs;

  explicit DetailFixture(std::size_t k, bool hi_fanout = false) {
    const auto& b = bench_data();
    pl = b.placement;
    dp::util::Rng rng(17);
    const dp::geom::Rect& core = b.design.core();
    for (dp::netlist::CellId c = 0; c < b.netlist.num_cells(); ++c) {
      if (!b.netlist.cell(c).fixed) {
        pl[c] = {rng.uniform(core.lx, core.hx),
                 rng.uniform(core.ly, core.hy)};
      }
    }
    dp::legal::AbacusLegalizer(b.netlist, b.design).run_all(pl);

    std::vector<dp::netlist::CellId> pool;
    if (hi_fanout) {
      std::vector<std::pair<std::size_t, dp::netlist::CellId>> by_degree;
      std::vector<dp::netlist::NetId> nets;
      for (dp::netlist::CellId c = 0; c < b.netlist.num_cells(); ++c) {
        if (b.netlist.cell(c).fixed) continue;
        nets.clear();
        for (dp::netlist::PinId p : b.netlist.cell(c).pins) {
          nets.push_back(b.netlist.pin(p).net);
        }
        std::sort(nets.begin(), nets.end());
        nets.erase(std::unique(nets.begin(), nets.end()), nets.end());
        std::size_t degree = 0;
        for (dp::netlist::NetId n : nets) {
          degree += b.netlist.net(n).pins.size();
        }
        by_degree.push_back({degree, c});
      }
      std::sort(by_degree.begin(), by_degree.end());
      const std::size_t cnt = std::max<std::size_t>(1, by_degree.size() / 50);
      for (std::size_t i = by_degree.size() - cnt; i < by_degree.size(); ++i) {
        pool.push_back(by_degree[i].second);
      }
    }

    const double site = b.design.site_width();
    const std::size_t n = b.netlist.num_cells();
    while (moves.size() < 1024) {
      std::vector<dp::netlist::CellId> set;
      if (hi_fanout) {
        set.push_back(pool[rng.index(pool.size())]);
      } else {
        const auto start = rng.index(n);
        for (std::size_t c = start; c < n && set.size() < k; ++c) {
          if (!b.netlist.cell(static_cast<dp::netlist::CellId>(c)).fixed) {
            set.push_back(static_cast<dp::netlist::CellId>(c));
          }
        }
        if (set.size() < k) continue;
      }
      const double dx = (static_cast<double>(rng.index(17)) - 8.0) * site;
      if (dx == 0.0) continue;
      moves.push_back(std::move(set));
      dxs.push_back(dx);
    }
  }
};

/// Fixture cache keyed by (k, hi_fanout); hi-fanout uses slot 64.
const DetailFixture& detail_fixture(std::size_t k, bool hi_fanout = false) {
  static std::vector<std::unique_ptr<DetailFixture>> cache(65);
  const std::size_t slot = hi_fanout ? 64 : k;
  if (!cache[slot]) cache[slot] = std::make_unique<DetailFixture>(k, hi_fanout);
  return *cache[slot];
}

/// Candidate-move evaluation the way the detailer did it before the
/// incremental engine: walk the moved cells' incident nets and recompute
/// each net's HPWL from every pin, before and after the move.
void full_rescan_loop(benchmark::State& state, const DetailFixture& fx) {
  const auto& b = bench_data();
  auto pl = fx.pl;
  std::vector<dp::netlist::NetId> nets;
  auto nets_hpwl = [&](const std::vector<dp::netlist::CellId>& cells) {
    nets.clear();
    for (dp::netlist::CellId c : cells) {
      for (dp::netlist::PinId p : b.netlist.cell(c).pins) {
        nets.push_back(b.netlist.pin(p).net);
      }
    }
    std::sort(nets.begin(), nets.end());
    nets.erase(std::unique(nets.begin(), nets.end()), nets.end());
    double total = 0.0;
    for (dp::netlist::NetId n : nets) {
      total += b.netlist.net(n).weight * dp::eval::net_hpwl(b.netlist, n, pl);
    }
    return total;
  };
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& cells = fx.moves[i];
    const double dx = fx.dxs[i];
    const double before = nets_hpwl(cells);
    for (dp::netlist::CellId c : cells) pl[c].x += dx;
    const double after = nets_hpwl(cells);
    for (dp::netlist::CellId c : cells) pl[c].x -= dx;  // always reject
    benchmark::DoNotOptimize(after - before);
    if (++i == fx.moves.size()) i = 0;
  }
}

/// The same candidate moves through eval::IncrementalHpwl::trial_shift:
/// O(pins of the moved cells) against cached per-net extents.
void delta_loop(benchmark::State& state, const DetailFixture& fx) {
  const auto& b = bench_data();
  auto pl = fx.pl;
  dp::eval::IncrementalHpwl inc(b.netlist, pl);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto t = inc.trial_shift(fx.moves[i], fx.dxs[i], 0.0);
    inc.rollback();
    benchmark::DoNotOptimize(t.delta());
    if (++i == fx.moves.size()) i = 0;
  }
}

void BM_DetailCandidateFullRescan(benchmark::State& state) {
  full_rescan_loop(
      state, detail_fixture(static_cast<std::size_t>(state.range(0))));
}
BENCHMARK(BM_DetailCandidateFullRescan)->Arg(1)->Arg(8)->Arg(32);

void BM_DetailCandidateDelta(benchmark::State& state) {
  delta_loop(state, detail_fixture(static_cast<std::size_t>(state.range(0))));
}
BENCHMARK(BM_DetailCandidateDelta)->Arg(1)->Arg(8)->Arg(32);

/// Single-cell candidates restricted to the control-broadcast cohort
/// (top 2% incident net degree). This is where the detailer burns its
/// time under full rescans -- each candidate touches ~145 pins -- and
/// where the delta path's O(pins of the moved cell) bound pays off.
void BM_DetailCandidateFullRescanHiFanout(benchmark::State& state) {
  full_rescan_loop(state, detail_fixture(1, /*hi_fanout=*/true));
}
BENCHMARK(BM_DetailCandidateFullRescanHiFanout);

void BM_DetailCandidateDeltaHiFanout(benchmark::State& state) {
  delta_loop(state, detail_fixture(1, /*hi_fanout=*/true));
}
BENCHMARK(BM_DetailCandidateDeltaHiFanout);

/// End-to-end detailed-placement pass throughput on legalized dp_alu32.
void BM_DetailPass(benchmark::State& state) {
  const auto& b = bench_data();
  dp::detail::DetailedPlacer placer(b.netlist, b.design);
  dp::detail::DetailOptions opt;
  opt.max_passes = 1;
  for (auto _ : state) {
    auto pl = detail_fixture(1).pl;
    const auto stats = placer.run(pl, opt);
    benchmark::DoNotOptimize(stats.hpwl_after);
  }
}
BENCHMARK(BM_DetailPass);

void BM_Extraction(benchmark::State& state) {
  const auto& b = bench_data();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dp::extract::extract_structures(b.netlist));
  }
}
BENCHMARK(BM_Extraction);

void BM_Signatures(benchmark::State& state) {
  const auto& b = bench_data();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dp::extract::cell_signatures(b.netlist));
  }
}
BENCHMARK(BM_Signatures);

}  // namespace

// Like BENCHMARK_MAIN(), but defaults --benchmark_out to
// BENCH_gp_kernels.json (JSON format) when the caller didn't choose an
// output file, so a bare run always leaves a machine-readable record.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).rfind("--benchmark_out", 0) == 0) {
      has_out = true;
    }
  }
  static char out_flag[] = "--benchmark_out=BENCH_gp_kernels.json";
  static char fmt_flag[] = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag);
    args.push_back(fmt_flag);
  }
  int args_argc = static_cast<int>(args.size());
  benchmark::Initialize(&args_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
