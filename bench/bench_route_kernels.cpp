// Micro-benchmarks (google-benchmark) for the route::CongestionMap
// kernels: full RUDY+pin rasterization on dp_alu32-sized data, a
// thread-count sweep of the parallel build, a grid-resolution sweep, the
// report() metric pass, and the cell-inflation feedback. Unless the
// caller passes --benchmark_out, results are also written to
// BENCH_route_kernels.json (machine-readable, consumed by CI).
#include <benchmark/benchmark.h>

#include <memory>
#include <string_view>
#include <thread>
#include <vector>

#include "common.hpp"
#include "route/congestion.hpp"
#include "route/inflation.hpp"
#include "util/thread_pool.hpp"

namespace {

const dp::dpgen::Benchmark& bench_data() {
  static const dp::dpgen::Benchmark b = [] {
    dp::bench::quiet_logs();
    return dp::dpgen::make_benchmark("dp_alu32");
  }();
  return b;
}

/// Serial rasterization at the auto-selected grid resolution.
void BM_CongestionBuild(benchmark::State& state) {
  const auto& b = bench_data();
  dp::route::CongestionMap map(b.netlist, b.design, {});
  for (auto _ : state) {
    map.build(b.placement);
    benchmark::DoNotOptimize(map.demand_h().data());
  }
}
BENCHMARK(BM_CongestionBuild);

// Thread-count sweep (1/2/4/hardware) of the parallel build; results are
// bitwise identical across the sweep, only the wall time may change.
void thread_args(benchmark::internal::Benchmark* b) {
  std::vector<long> counts = {1, 2, 4};
  const long hw = static_cast<long>(std::thread::hardware_concurrency());
  if (hw > 4) counts.push_back(hw);
  for (const long c : counts) b->Arg(c);
}

void BM_CongestionBuildThreads(benchmark::State& state) {
  const auto& b = bench_data();
  dp::route::CongestionMap map(b.netlist, b.design, {});
  map.set_thread_pool(std::make_shared<dp::util::ThreadPool>(
      static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    map.build(b.placement);
    benchmark::DoNotOptimize(map.demand_h().data());
  }
}
BENCHMARK(BM_CongestionBuildThreads)->Apply(thread_args);

/// Grid-resolution sweep: rasterization cost scales with bins touched per
/// net, so finer grids stress the inner rasterization loop.
void BM_CongestionBuildBins(benchmark::State& state) {
  const auto& b = bench_data();
  dp::route::CongestionOptions opt;
  opt.bins_per_side = static_cast<std::size_t>(state.range(0));
  dp::route::CongestionMap map(b.netlist, b.design, opt);
  for (auto _ : state) {
    map.build(b.placement);
    benchmark::DoNotOptimize(map.demand_h().data());
  }
}
BENCHMARK(BM_CongestionBuildBins)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

/// Metric extraction (peaks, overflow, ACE percentile sort) on a built map.
void BM_CongestionReport(benchmark::State& state) {
  const auto& b = bench_data();
  dp::route::CongestionMap map(b.netlist, b.design, {});
  map.build(b.placement);
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.report());
  }
}
BENCHMARK(BM_CongestionReport);

/// One cell-inflation pass over all movable cells against a built map.
void BM_InflateCells(benchmark::State& state) {
  const auto& b = bench_data();
  dp::route::CongestionMap map(b.netlist, b.design, {});
  map.build(b.placement);
  dp::route::InflationOptions opt;
  opt.threshold = 0.5;  // well below peak so the slope path runs
  const std::vector<double> base(b.netlist.num_cells(), 1.0);
  const std::vector<bool> eligible(b.netlist.num_cells(), true);
  std::vector<double> scale(b.netlist.num_cells(), 1.0);
  for (auto _ : state) {
    std::fill(scale.begin(), scale.end(), 1.0);
    benchmark::DoNotOptimize(dp::route::inflate_cells(
        b.netlist, map, b.placement, opt, base, eligible, scale));
  }
}
BENCHMARK(BM_InflateCells);

}  // namespace

// Like BENCHMARK_MAIN(), but defaults --benchmark_out to
// BENCH_route_kernels.json (JSON format) when the caller didn't choose an
// output file, so a bare run always leaves a machine-readable record.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).rfind("--benchmark_out", 0) == 0) {
      has_out = true;
    }
  }
  static char out_flag[] = "--benchmark_out=BENCH_route_kernels.json";
  static char fmt_flag[] = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag);
    args.push_back(fmt_flag);
  }
  int args_argc = static_cast<int>(args.size());
  benchmark::Initialize(&args_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
