// Table 1 (reconstructed): benchmark statistics.
#include "common.hpp"
#include "netlist/stats.hpp"

int main() {
  using namespace dp;
  bench::quiet_logs();
  util::Table table({"design", "#cells", "#movable", "#nets", "#pins",
                     "avg deg", "#groups", "dp cells", "dp frac"});
  for (const auto& name : dpgen::standard_benchmarks()) {
    const auto b = dpgen::make_benchmark(name);
    const auto s = netlist::compute_stats(b.netlist, &b.truth);
    table.add_row({name, util::Table::integer((long long)s.num_cells),
                   util::Table::integer((long long)s.num_movable),
                   util::Table::integer((long long)s.num_nets),
                   util::Table::integer((long long)s.num_pins),
                   util::Table::num(s.avg_net_degree, 2),
                   util::Table::integer((long long)s.num_groups),
                   util::Table::integer((long long)s.datapath_cells),
                   util::Table::pct(s.datapath_fraction)});
  }
  std::printf("Table 1: benchmark statistics\n%s", table.to_string().c_str());
  return 0;
}
