// Table 2 (reconstructed): datapath extraction quality vs. ground truth.
#include "common.hpp"
#include "extract/extractor.hpp"
#include "extract/metrics.hpp"

int main() {
  using namespace dp;
  bench::quiet_logs();
  util::Table table({"design", "truth groups", "found", "precision",
                     "recall", "lane acc", "seeds", "time [ms]"});
  for (const auto& name : dpgen::standard_benchmarks()) {
    const auto b = dpgen::make_benchmark(name);
    const auto r = extract::extract_structures(b.netlist);
    const auto q = extract::compare_extraction(b.netlist, r.annotation, b.truth);
    table.add_row({name,
                   util::Table::integer((long long)b.truth.groups.size()),
                   util::Table::integer((long long)q.groups_found),
                   util::Table::num(q.precision, 3),
                   util::Table::num(q.recall, 3),
                   util::Table::num(q.lane_accuracy, 3),
                   util::Table::integer((long long)r.seeds_tried),
                   util::Table::num(r.seconds * 1e3, 1)});
  }
  std::printf("Table 2: datapath structure extraction quality\n%s",
              table.to_string().c_str());
  return 0;
}
