// Table 3 (reconstructed, headline): total and datapath HPWL, alignment,
// and runtime for the structure-oblivious baseline vs. the structure-aware
// flow (gentle legalization = the paper's flow; template blocks = strict
// extension).
#include "common.hpp"

int main() {
  using namespace dp;
  bench::quiet_logs();
  util::Table table({"design", "flow", "HPWL", "vs base", "dp HPWL",
                     "misalign [rows]", "legal", "time [s]"});
  for (const auto& name : dpgen::standard_benchmarks()) {
    const auto b = dpgen::make_benchmark(name);
    double base = 0.0;
    for (const bench::Flow flow :
         {bench::Flow::kBaseline, bench::Flow::kGentle, bench::Flow::kBlocks}) {
      const auto r = bench::run_flow(b, flow);
      if (flow == bench::Flow::kBaseline) base = r.report.hpwl_final;
      const double mis =
          flow == bench::Flow::kBaseline
              ? eval::alignment_score(b.netlist, r.placement, b.truth)
                    .rms_misalignment
              : r.report.alignment.rms_misalignment;
      table.add_row(
          {name, bench::flow_name(flow),
           util::Table::num(r.report.hpwl_final, 0),
           util::Table::pct((r.report.hpwl_final - base) / base, 1),
           util::Table::num(flow == bench::Flow::kBaseline
                                ? eval::datapath_hpwl(b.netlist, r.placement,
                                                      b.truth)
                                : r.report.datapath_hpwl_final,
                            0),
           util::Table::num(mis, 2),
           r.report.legality.legal() ? "yes" : "NO",
           util::Table::num(r.seconds, 2)});
    }
  }
  std::printf("Table 3 (headline): placement quality, baseline vs structure-aware\n%s",
              table.to_string().c_str());
  return 0;
}
