// Table 4 (reconstructed): legality and structure-quality detail --
// overlaps (must be 0), alignment score, and wire predictability (stdev
// of datapath net lengths; regular placement makes per-bit wires nearly
// identical, the property datapath designers actually need).
#include "common.hpp"

int main() {
  using namespace dp;
  bench::quiet_logs();
  util::Table table({"design", "flow", "overlaps", "off-grid",
                     "misalign [rows]", "dp-net stdev", "dp-net stdev vs base"});
  for (const auto& name : dpgen::standard_benchmarks()) {
    const auto b = dpgen::make_benchmark(name);
    if (b.truth.groups.empty()) continue;
    double base_stdev = 0.0;
    for (const bench::Flow flow :
         {bench::Flow::kBaseline, bench::Flow::kGentle, bench::Flow::kBlocks}) {
      const auto r = bench::run_flow(b, flow);
      const double stdev =
          bench::datapath_net_stdev(b, r.placement, b.truth);
      if (flow == bench::Flow::kBaseline) base_stdev = stdev;
      const double mis =
          flow == bench::Flow::kBaseline
              ? eval::alignment_score(b.netlist, r.placement, b.truth)
                    .rms_misalignment
              : r.report.alignment.rms_misalignment;
      table.add_row(
          {name, bench::flow_name(flow),
           util::Table::integer((long long)r.report.legality.overlaps),
           util::Table::integer(
               (long long)(r.report.legality.off_row +
                           r.report.legality.off_site +
                           r.report.legality.out_of_core)),
           util::Table::num(mis, 2), util::Table::num(stdev, 2),
           util::Table::pct((stdev - base_stdev) / base_stdev, 1)});
    }
  }
  std::printf("Table 4: legality and structure quality\n%s",
              table.to_string().c_str());
  return 0;
}
