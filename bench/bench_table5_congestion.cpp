// Table 5 (extension): routing-congestion comparison on the dpgen suite.
// For the baseline and structure-aware flows, with and without the
// cell-inflation refinement: final peak bin ratio, overflow fraction,
// worst-2% ACE, and the final-HPWL cost of refinement. The acceptance
// bar for the refinement loop is "peak never worse, final HPWL within 1%
// of the unrefined flow" -- the last two columns report exactly that,
// per benchmark.
#include "common.hpp"

int main() {
  using namespace dp;
  bench::quiet_logs();
  util::Table table({"design", "flow", "peak", "peak(ref)", "ovfl",
                     "ovfl(ref)", "ace2%", "ace2%(ref)", "hpwl delta",
                     "refine iters"});
  for (const auto& name : dpgen::standard_benchmarks()) {
    const auto b = dpgen::make_benchmark(name);
    for (const bench::Flow flow :
         {bench::Flow::kBaseline, bench::Flow::kGentle}) {
      core::PlacerConfig plain = bench::flow_config(flow);
      plain.congestion.measure = true;
      const auto off = bench::run_flow(b, flow, plain);

      core::PlacerConfig refined = bench::flow_config(flow);
      refined.congestion.measure = true;
      refined.congestion.refine = true;
      const auto on = bench::run_flow(b, flow, refined);

      const auto& c0 = off.report.congestion;
      const auto& c1 = on.report.congestion;
      table.add_row(
          {name, bench::flow_name(flow), util::Table::num(c0.peak, 2),
           util::Table::num(c1.peak, 2),
           util::Table::pct(c0.overflow_frac, 1),
           util::Table::pct(c1.overflow_frac, 1),
           util::Table::num(c0.ace_2, 2), util::Table::num(c1.ace_2, 2),
           util::Table::pct((on.report.hpwl_final - off.report.hpwl_final) /
                                off.report.hpwl_final,
                            2),
           util::Table::integer(
               (long long)on.report.congestion_refine_iters)});
    }
  }
  std::printf(
      "Table 5: routing congestion (RUDY), refinement off vs on\n%s",
      table.to_string().c_str());
  return 0;
}
