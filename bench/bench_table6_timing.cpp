// Table 6 (extension): timing comparison on the dpgen suite. For each
// benchmark, the critical delay (worst endpoint arrival under the unit
// gate + linear wire delay model) of the baseline flow, the
// structure-aware flow, and the structure-aware flow with timing-driven
// feedback (criticality net reweighting in GP plus the detailed-placement
// WNS guard). WNS columns are measured against a common clock period --
// the SA-only critical delay -- so WNS(sa) = 0 by construction and a
// positive WNS(sa+t) means the driven flow beat it. The acceptance bar:
// WNS improves on at least 6 of the 10 benchmarks with a total-HPWL
// regression of at most 2%; the summary line below the table reports
// exactly that.
#include "common.hpp"

int main() {
  using namespace dp;
  bench::quiet_logs();
  util::Table table({"design", "crit(base)", "crit(sa)", "crit(sa+t)",
                     "wns(sa+t)", "tns(sa+t)", "hpwl delta", "vetoes"});
  std::size_t improved = 0, total = 0;
  double hpwl_sa = 0.0, hpwl_driven = 0.0;
  for (const auto& name : dpgen::standard_benchmarks()) {
    const auto b = dpgen::make_benchmark(name);

    core::PlacerConfig base_cfg = bench::flow_config(bench::Flow::kBaseline);
    base_cfg.timing.measure = true;
    const auto base = bench::run_flow(b, bench::Flow::kBaseline, base_cfg);

    core::PlacerConfig sa_cfg = bench::flow_config(bench::Flow::kGentle);
    sa_cfg.timing.measure = true;
    const auto sa = bench::run_flow(b, bench::Flow::kGentle, sa_cfg);

    // Pin the driven run's clock to the SA-only critical delay, so its
    // WNS/TNS read as the margin gained (or lost) against that flow.
    core::PlacerConfig driven_cfg = bench::flow_config(bench::Flow::kGentle);
    driven_cfg.timing.driven = true;
    driven_cfg.timing.model.clock_period = sa.report.timing.max_arrival;
    const auto driven = bench::run_flow(b, bench::Flow::kGentle, driven_cfg);

    const double crit_sa = sa.report.timing.max_arrival;
    const double crit_driven = driven.report.timing.max_arrival;
    ++total;
    if (crit_driven < crit_sa) ++improved;
    hpwl_sa += sa.report.hpwl_final;
    hpwl_driven += driven.report.hpwl_final;

    table.add_row(
        {name, util::Table::num(base.report.timing.max_arrival, 2),
         util::Table::num(crit_sa, 2), util::Table::num(crit_driven, 2),
         util::Table::num(driven.report.timing.wns, 2),
         util::Table::num(driven.report.timing.tns, 2),
         util::Table::pct(
             (driven.report.hpwl_final - sa.report.hpwl_final) /
                 sa.report.hpwl_final,
             2),
         util::Table::integer(
             (long long)driven.report.detail_stats.profile.guard_vetoes)});
  }
  std::printf(
      "Table 6: static timing, baseline vs structure-aware vs "
      "timing-driven\n%s",
      table.to_string().c_str());
  std::printf(
      "summary: WNS improved on %zu/%zu benchmarks; total HPWL "
      "regression %+.2f%% (bar: >=6/10 improved, <=2%%)\n",
      improved, total, 100.0 * (hpwl_driven - hpwl_sa) / hpwl_sa);
  return 0;
}
