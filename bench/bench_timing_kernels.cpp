// Micro-benchmarks (google-benchmark) for the timing subsystem kernels:
// TimingGraph construction (arc collection + levelization) on
// dp_alu32-sized data, the full analyze() sweep, a thread-count sweep of
// the parallel propagation (bitwise identical results, only wall time may
// change), and the criticality -> net-weight-scale feedback pass. Unless
// the caller passes --benchmark_out, results are also written to
// BENCH_timing_kernels.json (machine-readable, consumed by CI).
#include <benchmark/benchmark.h>

#include <memory>
#include <string_view>
#include <thread>
#include <vector>

#include "common.hpp"
#include "timing/timing_analyzer.hpp"
#include "timing/timing_graph.hpp"
#include "util/thread_pool.hpp"

namespace {

const dp::dpgen::Benchmark& bench_data() {
  static const dp::dpgen::Benchmark b = [] {
    dp::bench::quiet_logs();
    return dp::dpgen::make_benchmark("dp_alu32");
  }();
  return b;
}

const dp::timing::TimingGraph& bench_graph() {
  static const dp::timing::TimingGraph g(bench_data().netlist);
  return g;
}

/// Graph construction: arc collection, CSR builds, Kahn levelization.
void BM_TimingGraphBuild(benchmark::State& state) {
  const auto& b = bench_data();
  for (auto _ : state) {
    dp::timing::TimingGraph g(b.netlist);
    benchmark::DoNotOptimize(g.order().data());
  }
}
BENCHMARK(BM_TimingGraphBuild);

/// Serial full analysis: net delays, arrival, required, slack,
/// criticality.
void BM_TimingAnalyze(benchmark::State& state) {
  const auto& b = bench_data();
  dp::timing::TimingAnalyzer an(bench_graph());
  for (auto _ : state) {
    benchmark::DoNotOptimize(&an.analyze(b.placement));
  }
}
BENCHMARK(BM_TimingAnalyze);

// Thread-count sweep (1/2/4/hardware) of the parallel propagation.
void thread_args(benchmark::internal::Benchmark* b) {
  std::vector<long> counts = {1, 2, 4};
  const long hw = static_cast<long>(std::thread::hardware_concurrency());
  if (hw > 4) counts.push_back(hw);
  for (const long c : counts) b->Arg(c);
}

void BM_TimingAnalyzeThreads(benchmark::State& state) {
  const auto& b = bench_data();
  dp::timing::TimingAnalyzer an(bench_graph());
  an.set_thread_pool(std::make_shared<dp::util::ThreadPool>(
      static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(&an.analyze(b.placement));
  }
}
BENCHMARK(BM_TimingAnalyzeThreads)->Apply(thread_args);

/// The GP feedback pass: criticality to multiplicative net-weight scale.
void BM_NetCriticality(benchmark::State& state) {
  const auto& b = bench_data();
  dp::timing::TimingAnalyzer an(bench_graph());
  an.analyze(b.placement);
  std::vector<double> scale;
  for (auto _ : state) {
    an.net_weight_scale(8.0, 0.5, scale);
    benchmark::DoNotOptimize(scale.data());
  }
}
BENCHMARK(BM_NetCriticality);

}  // namespace

// Like BENCHMARK_MAIN(), but defaults --benchmark_out to
// BENCH_timing_kernels.json (JSON format) when the caller didn't choose
// an output file, so a bare run always leaves a machine-readable record.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).rfind("--benchmark_out", 0) == 0) {
      has_out = true;
    }
  }
  static char out_flag[] = "--benchmark_out=BENCH_timing_kernels.json";
  static char fmt_flag[] = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag);
    args.push_back(fmt_flag);
  }
  int args_argc = static_cast<int>(args.size());
  benchmark::Initialize(&args_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
