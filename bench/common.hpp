#pragma once

// Shared helpers for the table/figure regeneration harnesses. Each bench
// binary prints the rows/series of one reconstructed table or figure of
// the paper (see DESIGN.md section 4 for the experiment index).

#include <cstdio>
#include <string>

#include "core/structure_placer.hpp"
#include "dpgen/benchmarks.hpp"
#include "eval/metrics.hpp"
#include "util/logger.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace dp::bench {

enum class Flow { kBaseline, kGentle, kBlocks };

inline const char* flow_name(Flow flow) {
  switch (flow) {
    case Flow::kBaseline: return "baseline";
    case Flow::kGentle: return "sa-gentle";
    case Flow::kBlocks: return "sa-blocks";
  }
  return "?";
}

inline core::PlacerConfig flow_config(Flow flow) {
  core::PlacerConfig config;
  config.structure_aware = flow != Flow::kBaseline;
  config.legalization = flow == Flow::kBlocks
                            ? core::LegalizationMode::kStructured
                            : core::LegalizationMode::kGentle;
  return config;
}

struct FlowResult {
  core::PlaceReport report;
  netlist::Placement placement;
  double seconds = 0.0;
};

inline FlowResult run_flow(const dpgen::Benchmark& bench, Flow flow,
                           core::PlacerConfig config) {
  FlowResult out;
  core::StructurePlacer placer(bench.netlist, bench.design, config);
  out.placement = bench.placement;
  util::Timer timer;
  out.report = placer.place(out.placement, &bench.truth);
  out.seconds = timer.seconds();
  (void)flow;
  return out;
}

inline FlowResult run_flow(const dpgen::Benchmark& bench, Flow flow) {
  return run_flow(bench, flow, flow_config(flow));
}

/// Standard deviation of datapath-net HPWLs: the "wire predictability"
/// metric -- regular placements give near-identical per-bit wires.
inline double datapath_net_stdev(const dpgen::Benchmark& bench,
                                 const netlist::Placement& pl,
                                 const netlist::StructureAnnotation& groups) {
  const auto member = groups.membership(bench.netlist.num_cells());
  std::vector<double> lengths;
  for (netlist::NetId n = 0; n < bench.netlist.num_nets(); ++n) {
    bool touches = false;
    for (auto p : bench.netlist.net(n).pins) {
      if (member[bench.netlist.pin(p).cell]) {
        touches = true;
        break;
      }
    }
    if (touches) lengths.push_back(eval::net_hpwl(bench.netlist, n, pl));
  }
  return std::sqrt(util::variance(lengths));
}

inline void quiet_logs() { util::Logger::set_level(util::LogLevel::kError); }

}  // namespace dp::bench
