file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_fraction_sweep.dir/bench_fig4_fraction_sweep.cpp.o"
  "CMakeFiles/bench_fig4_fraction_sweep.dir/bench_fig4_fraction_sweep.cpp.o.d"
  "bench_fig4_fraction_sweep"
  "bench_fig4_fraction_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_fraction_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
