# Empty dependencies file for bench_fig4_fraction_sweep.
# This may be replaced when dependencies are built.
