file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_weight_sweep.dir/bench_fig5_weight_sweep.cpp.o"
  "CMakeFiles/bench_fig5_weight_sweep.dir/bench_fig5_weight_sweep.cpp.o.d"
  "bench_fig5_weight_sweep"
  "bench_fig5_weight_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_weight_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
