# Empty dependencies file for bench_fig5_weight_sweep.
# This may be replaced when dependencies are built.
