# Empty dependencies file for bench_fig6_wl_models.
# This may be replaced when dependencies are built.
