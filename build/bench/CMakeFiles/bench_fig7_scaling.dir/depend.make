# Empty dependencies file for bench_fig7_scaling.
# This may be replaced when dependencies are built.
