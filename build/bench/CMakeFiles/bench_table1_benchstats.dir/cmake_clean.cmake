file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_benchstats.dir/bench_table1_benchstats.cpp.o"
  "CMakeFiles/bench_table1_benchstats.dir/bench_table1_benchstats.cpp.o.d"
  "bench_table1_benchstats"
  "bench_table1_benchstats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_benchstats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
