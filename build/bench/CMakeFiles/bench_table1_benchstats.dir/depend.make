# Empty dependencies file for bench_table1_benchstats.
# This may be replaced when dependencies are built.
