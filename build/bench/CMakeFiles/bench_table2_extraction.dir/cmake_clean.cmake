file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_extraction.dir/bench_table2_extraction.cpp.o"
  "CMakeFiles/bench_table2_extraction.dir/bench_table2_extraction.cpp.o.d"
  "bench_table2_extraction"
  "bench_table2_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
