file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_hpwl.dir/bench_table3_hpwl.cpp.o"
  "CMakeFiles/bench_table3_hpwl.dir/bench_table3_hpwl.cpp.o.d"
  "bench_table3_hpwl"
  "bench_table3_hpwl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_hpwl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
