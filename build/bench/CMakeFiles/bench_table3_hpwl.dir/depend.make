# Empty dependencies file for bench_table3_hpwl.
# This may be replaced when dependencies are built.
