file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_quality.dir/bench_table4_quality.cpp.o"
  "CMakeFiles/bench_table4_quality.dir/bench_table4_quality.cpp.o.d"
  "bench_table4_quality"
  "bench_table4_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
