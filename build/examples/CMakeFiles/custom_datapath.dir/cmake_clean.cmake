file(REMOVE_RECURSE
  "CMakeFiles/custom_datapath.dir/custom_datapath.cpp.o"
  "CMakeFiles/custom_datapath.dir/custom_datapath.cpp.o.d"
  "custom_datapath"
  "custom_datapath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_datapath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
