# Empty compiler generated dependencies file for custom_datapath.
# This may be replaced when dependencies are built.
