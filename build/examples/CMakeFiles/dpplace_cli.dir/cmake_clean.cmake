file(REMOVE_RECURSE
  "CMakeFiles/dpplace_cli.dir/dpplace_cli.cpp.o"
  "CMakeFiles/dpplace_cli.dir/dpplace_cli.cpp.o.d"
  "dpplace_cli"
  "dpplace_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpplace_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
