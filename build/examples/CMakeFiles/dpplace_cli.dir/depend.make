# Empty dependencies file for dpplace_cli.
# This may be replaced when dependencies are built.
