file(REMOVE_RECURSE
  "CMakeFiles/extraction_demo.dir/extraction_demo.cpp.o"
  "CMakeFiles/extraction_demo.dir/extraction_demo.cpp.o.d"
  "extraction_demo"
  "extraction_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extraction_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
