# Empty dependencies file for extraction_demo.
# This may be replaced when dependencies are built.
