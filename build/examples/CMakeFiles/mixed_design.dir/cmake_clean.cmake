file(REMOVE_RECURSE
  "CMakeFiles/mixed_design.dir/mixed_design.cpp.o"
  "CMakeFiles/mixed_design.dir/mixed_design.cpp.o.d"
  "mixed_design"
  "mixed_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
