# Empty compiler generated dependencies file for mixed_design.
# This may be replaced when dependencies are built.
