file(REMOVE_RECURSE
  "CMakeFiles/dp_core.dir/alignment.cpp.o"
  "CMakeFiles/dp_core.dir/alignment.cpp.o.d"
  "CMakeFiles/dp_core.dir/overlap.cpp.o"
  "CMakeFiles/dp_core.dir/overlap.cpp.o.d"
  "CMakeFiles/dp_core.dir/partition.cpp.o"
  "CMakeFiles/dp_core.dir/partition.cpp.o.d"
  "CMakeFiles/dp_core.dir/structure_placer.cpp.o"
  "CMakeFiles/dp_core.dir/structure_placer.cpp.o.d"
  "libdp_core.a"
  "libdp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
