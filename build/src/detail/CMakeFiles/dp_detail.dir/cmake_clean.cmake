file(REMOVE_RECURSE
  "CMakeFiles/dp_detail.dir/detailed_placer.cpp.o"
  "CMakeFiles/dp_detail.dir/detailed_placer.cpp.o.d"
  "libdp_detail.a"
  "libdp_detail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_detail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
