file(REMOVE_RECURSE
  "libdp_detail.a"
)
