# Empty dependencies file for dp_detail.
# This may be replaced when dependencies are built.
