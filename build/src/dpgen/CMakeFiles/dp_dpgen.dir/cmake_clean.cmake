file(REMOVE_RECURSE
  "CMakeFiles/dp_dpgen.dir/benchmarks.cpp.o"
  "CMakeFiles/dp_dpgen.dir/benchmarks.cpp.o.d"
  "CMakeFiles/dp_dpgen.dir/generator.cpp.o"
  "CMakeFiles/dp_dpgen.dir/generator.cpp.o.d"
  "libdp_dpgen.a"
  "libdp_dpgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_dpgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
