file(REMOVE_RECURSE
  "libdp_dpgen.a"
)
