# Empty dependencies file for dp_dpgen.
# This may be replaced when dependencies are built.
