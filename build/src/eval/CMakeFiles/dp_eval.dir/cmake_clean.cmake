file(REMOVE_RECURSE
  "CMakeFiles/dp_eval.dir/metrics.cpp.o"
  "CMakeFiles/dp_eval.dir/metrics.cpp.o.d"
  "CMakeFiles/dp_eval.dir/svg.cpp.o"
  "CMakeFiles/dp_eval.dir/svg.cpp.o.d"
  "libdp_eval.a"
  "libdp_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
