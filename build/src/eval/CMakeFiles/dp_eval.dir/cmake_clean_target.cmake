file(REMOVE_RECURSE
  "libdp_eval.a"
)
