# Empty dependencies file for dp_eval.
# This may be replaced when dependencies are built.
