
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/extract/extractor.cpp" "src/extract/CMakeFiles/dp_extract.dir/extractor.cpp.o" "gcc" "src/extract/CMakeFiles/dp_extract.dir/extractor.cpp.o.d"
  "/root/repo/src/extract/metrics.cpp" "src/extract/CMakeFiles/dp_extract.dir/metrics.cpp.o" "gcc" "src/extract/CMakeFiles/dp_extract.dir/metrics.cpp.o.d"
  "/root/repo/src/extract/signature.cpp" "src/extract/CMakeFiles/dp_extract.dir/signature.cpp.o" "gcc" "src/extract/CMakeFiles/dp_extract.dir/signature.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/dp_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
