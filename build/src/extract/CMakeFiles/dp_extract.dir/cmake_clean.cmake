file(REMOVE_RECURSE
  "CMakeFiles/dp_extract.dir/extractor.cpp.o"
  "CMakeFiles/dp_extract.dir/extractor.cpp.o.d"
  "CMakeFiles/dp_extract.dir/metrics.cpp.o"
  "CMakeFiles/dp_extract.dir/metrics.cpp.o.d"
  "CMakeFiles/dp_extract.dir/signature.cpp.o"
  "CMakeFiles/dp_extract.dir/signature.cpp.o.d"
  "libdp_extract.a"
  "libdp_extract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
