file(REMOVE_RECURSE
  "libdp_extract.a"
)
