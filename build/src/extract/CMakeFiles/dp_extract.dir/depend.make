# Empty dependencies file for dp_extract.
# This may be replaced when dependencies are built.
