
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gp/density.cpp" "src/gp/CMakeFiles/dp_gp.dir/density.cpp.o" "gcc" "src/gp/CMakeFiles/dp_gp.dir/density.cpp.o.d"
  "/root/repo/src/gp/global_placer.cpp" "src/gp/CMakeFiles/dp_gp.dir/global_placer.cpp.o" "gcc" "src/gp/CMakeFiles/dp_gp.dir/global_placer.cpp.o.d"
  "/root/repo/src/gp/optimizer.cpp" "src/gp/CMakeFiles/dp_gp.dir/optimizer.cpp.o" "gcc" "src/gp/CMakeFiles/dp_gp.dir/optimizer.cpp.o.d"
  "/root/repo/src/gp/quadratic.cpp" "src/gp/CMakeFiles/dp_gp.dir/quadratic.cpp.o" "gcc" "src/gp/CMakeFiles/dp_gp.dir/quadratic.cpp.o.d"
  "/root/repo/src/gp/wirelength.cpp" "src/gp/CMakeFiles/dp_gp.dir/wirelength.cpp.o" "gcc" "src/gp/CMakeFiles/dp_gp.dir/wirelength.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/dp_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/dp_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
