file(REMOVE_RECURSE
  "CMakeFiles/dp_gp.dir/density.cpp.o"
  "CMakeFiles/dp_gp.dir/density.cpp.o.d"
  "CMakeFiles/dp_gp.dir/global_placer.cpp.o"
  "CMakeFiles/dp_gp.dir/global_placer.cpp.o.d"
  "CMakeFiles/dp_gp.dir/optimizer.cpp.o"
  "CMakeFiles/dp_gp.dir/optimizer.cpp.o.d"
  "CMakeFiles/dp_gp.dir/quadratic.cpp.o"
  "CMakeFiles/dp_gp.dir/quadratic.cpp.o.d"
  "CMakeFiles/dp_gp.dir/wirelength.cpp.o"
  "CMakeFiles/dp_gp.dir/wirelength.cpp.o.d"
  "libdp_gp.a"
  "libdp_gp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_gp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
