file(REMOVE_RECURSE
  "libdp_gp.a"
)
