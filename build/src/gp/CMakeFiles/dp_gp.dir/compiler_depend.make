# Empty compiler generated dependencies file for dp_gp.
# This may be replaced when dependencies are built.
