
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/legal/abacus.cpp" "src/legal/CMakeFiles/dp_legal.dir/abacus.cpp.o" "gcc" "src/legal/CMakeFiles/dp_legal.dir/abacus.cpp.o.d"
  "/root/repo/src/legal/repair.cpp" "src/legal/CMakeFiles/dp_legal.dir/repair.cpp.o" "gcc" "src/legal/CMakeFiles/dp_legal.dir/repair.cpp.o.d"
  "/root/repo/src/legal/rowmap.cpp" "src/legal/CMakeFiles/dp_legal.dir/rowmap.cpp.o" "gcc" "src/legal/CMakeFiles/dp_legal.dir/rowmap.cpp.o.d"
  "/root/repo/src/legal/structure_legal.cpp" "src/legal/CMakeFiles/dp_legal.dir/structure_legal.cpp.o" "gcc" "src/legal/CMakeFiles/dp_legal.dir/structure_legal.cpp.o.d"
  "/root/repo/src/legal/tetris.cpp" "src/legal/CMakeFiles/dp_legal.dir/tetris.cpp.o" "gcc" "src/legal/CMakeFiles/dp_legal.dir/tetris.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/dp_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/dp_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
