file(REMOVE_RECURSE
  "CMakeFiles/dp_legal.dir/abacus.cpp.o"
  "CMakeFiles/dp_legal.dir/abacus.cpp.o.d"
  "CMakeFiles/dp_legal.dir/repair.cpp.o"
  "CMakeFiles/dp_legal.dir/repair.cpp.o.d"
  "CMakeFiles/dp_legal.dir/rowmap.cpp.o"
  "CMakeFiles/dp_legal.dir/rowmap.cpp.o.d"
  "CMakeFiles/dp_legal.dir/structure_legal.cpp.o"
  "CMakeFiles/dp_legal.dir/structure_legal.cpp.o.d"
  "CMakeFiles/dp_legal.dir/tetris.cpp.o"
  "CMakeFiles/dp_legal.dir/tetris.cpp.o.d"
  "libdp_legal.a"
  "libdp_legal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_legal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
