file(REMOVE_RECURSE
  "libdp_legal.a"
)
