# Empty dependencies file for dp_legal.
# This may be replaced when dependencies are built.
