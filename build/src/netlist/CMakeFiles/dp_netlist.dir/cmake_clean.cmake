file(REMOVE_RECURSE
  "CMakeFiles/dp_netlist.dir/bookshelf.cpp.o"
  "CMakeFiles/dp_netlist.dir/bookshelf.cpp.o.d"
  "CMakeFiles/dp_netlist.dir/design.cpp.o"
  "CMakeFiles/dp_netlist.dir/design.cpp.o.d"
  "CMakeFiles/dp_netlist.dir/library.cpp.o"
  "CMakeFiles/dp_netlist.dir/library.cpp.o.d"
  "CMakeFiles/dp_netlist.dir/netlist.cpp.o"
  "CMakeFiles/dp_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/dp_netlist.dir/stats.cpp.o"
  "CMakeFiles/dp_netlist.dir/stats.cpp.o.d"
  "CMakeFiles/dp_netlist.dir/structure.cpp.o"
  "CMakeFiles/dp_netlist.dir/structure.cpp.o.d"
  "libdp_netlist.a"
  "libdp_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
