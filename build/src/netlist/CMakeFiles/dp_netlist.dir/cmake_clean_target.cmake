file(REMOVE_RECURSE
  "libdp_netlist.a"
)
