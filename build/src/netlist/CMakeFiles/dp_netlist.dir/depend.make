# Empty dependencies file for dp_netlist.
# This may be replaced when dependencies are built.
