file(REMOVE_RECURSE
  "CMakeFiles/dp_util.dir/logger.cpp.o"
  "CMakeFiles/dp_util.dir/logger.cpp.o.d"
  "CMakeFiles/dp_util.dir/stats.cpp.o"
  "CMakeFiles/dp_util.dir/stats.cpp.o.d"
  "CMakeFiles/dp_util.dir/table.cpp.o"
  "CMakeFiles/dp_util.dir/table.cpp.o.d"
  "libdp_util.a"
  "libdp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
