file(REMOVE_RECURSE
  "libdp_util.a"
)
