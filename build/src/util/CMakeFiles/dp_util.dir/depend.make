# Empty dependencies file for dp_util.
# This may be replaced when dependencies are built.
