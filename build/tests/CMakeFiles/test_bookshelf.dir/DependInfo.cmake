
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bookshelf.cpp" "tests/CMakeFiles/test_bookshelf.dir/test_bookshelf.cpp.o" "gcc" "tests/CMakeFiles/test_bookshelf.dir/test_bookshelf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dpgen/CMakeFiles/dp_dpgen.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/gp/CMakeFiles/dp_gp.dir/DependInfo.cmake"
  "/root/repo/build/src/extract/CMakeFiles/dp_extract.dir/DependInfo.cmake"
  "/root/repo/build/src/legal/CMakeFiles/dp_legal.dir/DependInfo.cmake"
  "/root/repo/build/src/detail/CMakeFiles/dp_detail.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/dp_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/dp_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
