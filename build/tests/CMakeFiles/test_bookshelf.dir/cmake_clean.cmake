file(REMOVE_RECURSE
  "CMakeFiles/test_bookshelf.dir/test_bookshelf.cpp.o"
  "CMakeFiles/test_bookshelf.dir/test_bookshelf.cpp.o.d"
  "test_bookshelf"
  "test_bookshelf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bookshelf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
