# Empty dependencies file for test_bookshelf.
# This may be replaced when dependencies are built.
