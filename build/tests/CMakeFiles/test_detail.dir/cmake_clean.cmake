file(REMOVE_RECURSE
  "CMakeFiles/test_detail.dir/test_detail.cpp.o"
  "CMakeFiles/test_detail.dir/test_detail.cpp.o.d"
  "test_detail"
  "test_detail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_detail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
