# Empty dependencies file for test_detail.
# This may be replaced when dependencies are built.
