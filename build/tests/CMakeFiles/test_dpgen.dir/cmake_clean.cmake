file(REMOVE_RECURSE
  "CMakeFiles/test_dpgen.dir/test_dpgen.cpp.o"
  "CMakeFiles/test_dpgen.dir/test_dpgen.cpp.o.d"
  "test_dpgen"
  "test_dpgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dpgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
