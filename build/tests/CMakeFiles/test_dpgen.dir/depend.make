# Empty dependencies file for test_dpgen.
# This may be replaced when dependencies are built.
