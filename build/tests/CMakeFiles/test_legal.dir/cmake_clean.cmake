file(REMOVE_RECURSE
  "CMakeFiles/test_legal.dir/test_legal.cpp.o"
  "CMakeFiles/test_legal.dir/test_legal.cpp.o.d"
  "test_legal"
  "test_legal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_legal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
