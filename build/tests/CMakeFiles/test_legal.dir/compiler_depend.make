# Empty compiler generated dependencies file for test_legal.
# This may be replaced when dependencies are built.
