file(REMOVE_RECURSE
  "CMakeFiles/test_wirelength.dir/test_wirelength.cpp.o"
  "CMakeFiles/test_wirelength.dir/test_wirelength.cpp.o.d"
  "test_wirelength"
  "test_wirelength.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wirelength.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
