# Empty compiler generated dependencies file for test_wirelength.
# This may be replaced when dependencies are built.
