// Building your own design with the generator API and exporting it in the
// Bookshelf format: a 16-bit MAC-like datapath (multiplier feeding a
// pipelined accumulator) plus control logic, placed with the
// structure-aware flow and written out as .aux/.nodes/.nets/.pl/.scl plus
// a .groups sidecar with the extracted structure.
//
//   ./build/examples/custom_datapath [output_dir]

#include <cstdio>
#include <string>

#include "core/structure_placer.hpp"
#include "dpgen/generator.hpp"
#include "netlist/bookshelf.hpp"
#include "util/logger.hpp"

int main(int argc, char** argv) {
  using namespace dp;
  util::Logger::set_level(util::LogLevel::kInfo);
  const std::string out_dir = argc > 1 ? argv[1] : "/tmp";

  // ---- construct the design ------------------------------------------------
  dpgen::Generator gen("mac16", /*seed=*/2024);
  gen.add_control_block("ctl", 120);

  dpgen::Bus a = gen.input_bus("a", 16);
  dpgen::Bus b = gen.input_bus("b", 16);
  dpgen::Bus prod = gen.add_multiplier("mul", a, b);
  dpgen::Bus acc = gen.add_pipelined_adder("acc", prod, prod, /*depth=*/2);
  gen.output_bus("mac", acc);

  auto glue_outs = gen.add_glue(
      "status", 200, std::vector<netlist::NetId>(acc.begin(), acc.end()));
  gen.output_bus("status", dpgen::Bus(glue_outs.begin(), glue_outs.end()));

  dpgen::Benchmark bench = gen.finish(/*utilization=*/0.7);
  std::printf("built %s: %zu cells, %zu nets, %zu ground-truth groups\n",
              bench.name.c_str(), bench.netlist.num_cells(),
              bench.netlist.num_nets(), bench.truth.groups.size());

  // ---- place ---------------------------------------------------------------
  core::PlacerConfig config;
  config.structure_aware = true;
  core::StructurePlacer placer(bench.netlist, bench.design, config);
  netlist::Placement pl = bench.placement;
  const core::PlaceReport rep = placer.place(pl, &bench.truth);
  std::printf("placed: hpwl=%.1f, %zu groups extracted, misalign=%.2f rows, "
              "legal=%s\n",
              rep.hpwl_final, rep.structure.groups.size(),
              rep.alignment.rms_misalignment,
              rep.legality.legal() ? "yes" : "NO");

  // ---- export ---------------------------------------------------------------
  const std::string base = out_dir + "/mac16";
  netlist::write_bookshelf(base, bench.netlist, bench.design, pl);
  netlist::write_groups(base + ".groups", bench.netlist, rep.structure);
  std::printf("wrote %s.{aux,nodes,nets,pl,scl,groups}\n", base.c_str());

  // Round-trip sanity: read it back and compare cell count.
  const auto loaded = netlist::read_bookshelf(base + ".aux");
  std::printf("round-trip: %zu cells, %zu nets\n",
              loaded.netlist.num_cells(), loaded.netlist.num_nets());
  return 0;
}
