// dpplace_check: design lint. Runs the check/ rule catalog over a
// Bookshelf design + placement (or a generated benchmark) and reports
// every violated invariant; exits nonzero when errors are found, so it
// slots into scripted flows as a gate after placement.
//
// Usage:
//   dpplace_check --aux out.aux [--groups out.groups] [options]
//   dpplace_check --bench dp_alu32 [options]
// Options:
//   --level cheap|full    rule depth (default full)
//   --categories LIST     comma list of netlist,geom,legal,structure,timing
//                         (default: all for --aux; netlist,structure for
//                         --bench, whose initial placement is deliberately
//                         unplaced and would fail legality)
//   --json                machine-readable report on stdout
//   --strict              exit nonzero on warnings as well as errors
//   --max-diags N         retain at most N diagnostics (default 64)

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <optional>
#include <string>

#include "check/rules.hpp"
#include "dpgen/benchmarks.hpp"
#include "netlist/bookshelf.hpp"
#include "util/logger.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--bench NAME | --aux FILE) [--groups FILE] "
               "[--level cheap|full] [--categories LIST] [--json] "
               "[--strict] [--max-diags N]\n",
               argv0);
  return 2;
}

unsigned parse_categories(const std::string& list, bool* ok) {
  unsigned mask = 0;
  *ok = true;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    const std::size_t comma = list.find(',', pos);
    const std::string tok =
        list.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (tok == "netlist") mask |= dp::check::kCatNetlist;
    else if (tok == "geom") mask |= dp::check::kCatGeometry;
    else if (tok == "legal") mask |= dp::check::kCatLegality;
    else if (tok == "structure") mask |= dp::check::kCatStructure;
    else if (tok == "timing") mask |= dp::check::kCatTiming;
    else if (!tok.empty()) *ok = false;
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return mask;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dp;
  util::Logger::set_level(util::LogLevel::kWarn);

  std::string bench_name, aux_path, groups_path;
  check::CheckLevel level = check::CheckLevel::kFull;
  unsigned categories = 0;  // 0 = pick a default per input kind
  bool json = false, strict = false;
  std::size_t max_diags = 64;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--bench") {
      if (const char* v = next()) bench_name = v;
    } else if (arg == "--aux") {
      if (const char* v = next()) aux_path = v;
    } else if (arg == "--groups") {
      if (const char* v = next()) groups_path = v;
    } else if (arg == "--level") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      const std::string s = v;
      if (s == "cheap") level = check::CheckLevel::kCheap;
      else if (s == "full") level = check::CheckLevel::kFull;
      else return usage(argv[0]);
    } else if (arg == "--categories") {
      const char* v = next();
      bool ok = false;
      if (v != nullptr) categories = parse_categories(v, &ok);
      if (v == nullptr || !ok || categories == 0) return usage(argv[0]);
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--strict") {
      strict = true;
    } else if (arg == "--max-diags") {
      if (const char* v = next()) max_diags = std::strtoul(v, nullptr, 10);
    } else {
      return usage(argv[0]);
    }
  }
  if (bench_name.empty() == aux_path.empty()) return usage(argv[0]);

  std::optional<dpgen::Benchmark> generated;
  std::optional<netlist::BookshelfDesign> loaded;
  std::optional<netlist::StructureAnnotation> sidecar;
  try {
    if (!bench_name.empty()) {
      generated.emplace(dpgen::make_benchmark(bench_name));
      if (categories == 0) {
        categories =
            check::kCatNetlist | check::kCatStructure | check::kCatTiming;
      }
    } else {
      loaded.emplace(netlist::read_bookshelf(aux_path));
      if (categories == 0) categories = check::kCatAll;
    }
    if (!groups_path.empty()) {
      const netlist::Netlist& for_groups =
          generated ? generated->netlist : loaded->netlist;
      sidecar.emplace(netlist::read_groups(groups_path, for_groups));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dpplace_check: %s\n", e.what());
    return 2;
  }
  const netlist::Netlist& nl =
      generated ? generated->netlist : loaded->netlist;

  check::CheckContext ctx;
  ctx.netlist = &nl;
  ctx.design = generated ? &generated->design : &loaded->design;
  ctx.placement = generated ? &generated->placement : &loaded->placement;
  if (sidecar) {
    ctx.structure = &*sidecar;
  } else if (generated) {
    ctx.structure = &generated->truth;
  }

  check::DiagnosticSink sink(max_diags);
  const check::CheckSummary summary =
      check::run_checks(ctx, sink, level, categories);

  if (json) {
    std::printf("%s\n", check::format_json(sink, &nl).c_str());
  } else {
    std::printf("%s", check::format_text(sink, &nl).c_str());
    std::printf("%zu rule(s) run on %s\n", summary.rules_run,
                bench_name.empty() ? aux_path.c_str() : bench_name.c_str());
  }
  if (sink.num_errors() > 0) return 1;
  if (strict && sink.num_warnings() > 0) return 1;
  return 0;
}
