// dpplace command-line driver: place a Bookshelf design (or a built-in
// generated benchmark) with the baseline or structure-aware flow and write
// the result back as Bookshelf plus an optional SVG and .groups sidecar.
//
// Usage:
//   dpplace_cli --bench dp_alu32 [options]
//   dpplace_cli --aux path/to/design.aux [options]
// Options:
//   --baseline            structure-oblivious flow (default: structure-aware)
//   --blocks              template-block legalization (default: gentle)
//   --weight W            alignment weight (default 0.5)
//   --threads N           gradient-kernel worker threads (default 0 =
//                         hardware concurrency; results are identical for
//                         every N)
//   --swap-window N       detailed-placement swap window (default 1 =
//                         adjacent-only; larger windows consider distant
//                         same-row swaps, affordable because candidates are
//                         scored by incremental delta evaluation)
//   --paranoid            cross-check every accepted detail move against a
//                         full HPWL recompute (slow; debugging aid)
//   --congestion          estimate routing congestion (RUDY) after GP and
//                         on the final placement; adds report lines and,
//                         with --svg, a heatmap overlay layer
//   --congestion-bins N   congestion grid side length (default 0 = auto)
//   --congestion-refine   post-GP cell-inflation refinement: inflate cells
//                         in overflowed bins and re-spread (implies
//                         --congestion)
//   --timing              static timing analysis (unit gate delay + linear
//                         wire delay) and timing-driven placement: critical
//                         nets get heavier GP weights each outer iteration
//                         and detailed placement rejects moves that worsen
//                         the WNS proxy; adds report lines and, with --svg,
//                         a critical-path overlay
//   --timing-weight W     criticality weight strength (default 8; implies
//                         --timing)
//   --timing-period P     clock period constraint (default 0 = auto: the
//                         longest path just meets timing; implies --timing)
//   --report-json FILE    dump the PlaceReport as JSON for scripted
//                         experiment harvesting
//   --out PREFIX          write PREFIX.{aux,nodes,nets,pl,scl}
//   --svg FILE            write an SVG rendering
//   --groups FILE         write the extracted structure annotation
//
// Note: Bookshelf designs carry no cell functions, so extraction runs on
// connectivity signatures only; generated benchmarks retain functions.

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include <fstream>

#include "core/report_json.hpp"
#include "core/structure_placer.hpp"
#include "dpgen/benchmarks.hpp"
#include "eval/svg.hpp"
#include "netlist/bookshelf.hpp"
#include "route/congestion.hpp"
#include "util/logger.hpp"
#include "util/timer.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--bench NAME | --aux FILE) [--baseline] "
               "[--blocks] [--weight W] [--threads N] [--swap-window N] "
               "[--paranoid] [--congestion] [--congestion-bins N] "
               "[--congestion-refine] [--timing] [--timing-weight W] "
               "[--timing-period P] [--report-json FILE] [--out PREFIX] "
               "[--svg FILE] [--groups FILE]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dp;
  util::Logger::set_level(util::LogLevel::kInfo);

  std::string bench_name, aux_path, out_prefix, svg_path, groups_path,
      json_path;
  core::PlacerConfig config;
  config.num_threads = 0;  // CLI default: use all hardware threads
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--bench") {
      if (const char* v = next()) bench_name = v;
    } else if (arg == "--aux") {
      if (const char* v = next()) aux_path = v;
    } else if (arg == "--baseline") {
      config.structure_aware = false;
    } else if (arg == "--blocks") {
      config.legalization = core::LegalizationMode::kStructured;
    } else if (arg == "--weight") {
      if (const char* v = next()) config.alignment_weight = std::atof(v);
    } else if (arg == "--threads") {
      if (const char* v = next()) {
        config.num_threads = static_cast<std::size_t>(std::atol(v));
      }
    } else if (arg == "--swap-window") {
      if (const char* v = next()) {
        config.detail.swap_window = static_cast<std::size_t>(std::atol(v));
      }
    } else if (arg == "--paranoid") {
      config.detail.paranoid = true;
    } else if (arg == "--congestion") {
      config.congestion.measure = true;
    } else if (arg == "--congestion-bins") {
      if (const char* v = next()) {
        config.congestion.map.bins_per_side =
            static_cast<std::size_t>(std::atol(v));
      }
    } else if (arg == "--congestion-refine") {
      config.congestion.measure = true;
      config.congestion.refine = true;
    } else if (arg == "--timing") {
      config.timing.measure = true;
      config.timing.driven = true;
    } else if (arg == "--timing-weight") {
      config.timing.measure = true;
      config.timing.driven = true;
      if (const char* v = next()) config.timing.weight = std::atof(v);
    } else if (arg == "--timing-period") {
      config.timing.measure = true;
      config.timing.driven = true;
      if (const char* v = next()) {
        config.timing.model.clock_period = std::atof(v);
      }
    } else if (arg == "--report-json") {
      if (const char* v = next()) json_path = v;
    } else if (arg == "--out") {
      if (const char* v = next()) out_prefix = v;
    } else if (arg == "--svg") {
      if (const char* v = next()) svg_path = v;
    } else if (arg == "--groups") {
      if (const char* v = next()) groups_path = v;
    } else {
      return usage(argv[0]);
    }
  }
  if (bench_name.empty() == aux_path.empty()) return usage(argv[0]);

  // Load the problem from either source.
  std::optional<dpgen::Benchmark> generated;
  std::optional<netlist::BookshelfDesign> loaded;
  if (!bench_name.empty()) {
    generated.emplace(dpgen::make_benchmark(bench_name));
  } else {
    loaded.emplace(netlist::read_bookshelf(aux_path));
  }
  const netlist::Netlist& nl =
      generated ? generated->netlist : loaded->netlist;
  const netlist::Design& design =
      generated ? generated->design : loaded->design;
  netlist::Placement pl =
      generated ? generated->placement : loaded->placement;
  const netlist::StructureAnnotation* truth =
      generated ? &generated->truth : nullptr;

  std::printf("design: %zu cells (%zu movable), %zu nets, core %.0fx%.0f\n",
              nl.num_cells(), nl.num_movable(), nl.num_nets(),
              design.core().width(), design.core().height());

  util::Timer timer;
  core::StructurePlacer placer(nl, design, config);
  const core::PlaceReport report = placer.place(pl, truth);
  std::printf(
      "placed in %.2fs: HPWL=%.1f (gp %.1f, legal %.1f), %zu groups, "
      "misalign=%.2f rows, legal=%s%s\n",
      timer.seconds(), report.hpwl_final, report.hpwl_gp, report.hpwl_legal,
      report.structure.groups.size(), report.alignment.rms_misalignment,
      report.legality.legal() ? "yes" : "NO",
      report.legality.overlap_truncated ? " (overlap sweep truncated)" : "");
  std::printf("gp eval profile: %s\n",
              report.gp_result.profile.to_string().c_str());
  std::printf("detail profile: %s\n",
              report.detail_stats.profile.to_string().c_str());
  if (report.congestion_measured) {
    const auto& c = report.congestion;
    std::printf(
        "congestion (%zux%zu bins): peak=%.2f (h %.2f, v %.2f) "
        "overflow=%.1f%% bins>cap=%zu ace 0.5/1/2/5%%=%.2f/%.2f/%.2f/%.2f\n",
        c.bins, c.bins, c.peak, c.peak_h, c.peak_v, c.overflow_frac * 100.0,
        c.overflowed_bins, c.ace_0_5, c.ace_1, c.ace_2, c.ace_5);
    std::printf("congestion gp -> final: peak %.2f -> %.2f, overflow "
                "%.1f%% -> %.1f%%",
                report.congestion_gp.peak, c.peak,
                report.congestion_gp.overflow_frac * 100.0,
                c.overflow_frac * 100.0);
    if (config.congestion.refine) {
      std::printf(" (refine: %zu iter(s), %zu cells inflated, gp hpwl "
                  "%.1f -> %.1f)",
                  report.congestion_refine_iters,
                  report.congestion_inflated_cells, report.hpwl_pre_refine,
                  report.hpwl_gp);
    }
    std::printf("\n");
  }
  if (report.timing_measured) {
    const auto& t = report.timing;
    std::printf(
        "timing: wns=%.2f tns=%.2f period=%.2f violations=%zu/%zu "
        "(levels=%zu, path=%zu pins)\n",
        t.wns, t.tns, t.clock_period, t.violations, t.endpoints, t.levels,
        t.critical_path.size());
    std::printf("timing gp -> final: max arrival %.2f -> %.2f "
                "(%zu reweight(s))\n",
                report.timing_gp.max_arrival, t.max_arrival,
                report.timing_reweights);
  }

  if (!out_prefix.empty()) {
    netlist::write_bookshelf(out_prefix, nl, design, pl);
    std::printf("wrote %s.{aux,nodes,nets,pl,scl}\n", out_prefix.c_str());
  }
  if (!svg_path.empty()) {
    eval::SvgOptions svg_options;
    svg_options.groups =
        report.structure.groups.empty() ? nullptr : &report.structure;
    if (report.congestion_measured) {
      route::CongestionMap cmap(nl, design, config.congestion.map);
      cmap.build(pl);
      svg_options.heatmap_bins = cmap.bins_per_side();
      svg_options.heatmap = cmap.ratios();
    }
    if (report.timing_measured) {
      for (const auto& node : report.timing.critical_path) {
        svg_options.critical_path.push_back(nl.pin_position(node.pin, pl));
      }
    }
    eval::write_svg(svg_path, nl, design, pl, svg_options);
    std::printf("wrote %s\n", svg_path.c_str());
  }
  if (!groups_path.empty()) {
    netlist::write_groups(groups_path, nl, report.structure);
    std::printf("wrote %s\n", groups_path.c_str());
  }
  if (!json_path.empty()) {
    std::ofstream json_out(json_path);
    json_out << core::report_to_json(report, &nl) << "\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return report.legality.legal() ? 0 : 1;
}
