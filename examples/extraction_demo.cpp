// Extraction demo: run datapath-structure extraction on every standard
// benchmark, score it against the generator's ground truth, and export one
// benchmark's groups + an SVG rendering of its structure.
//
//   ./build/examples/extraction_demo [output_dir]

#include <cstdio>
#include <string>

#include "dpgen/benchmarks.hpp"
#include "eval/svg.hpp"
#include "extract/extractor.hpp"
#include "extract/metrics.hpp"
#include "netlist/bookshelf.hpp"
#include "util/logger.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dp;
  util::Logger::set_level(util::LogLevel::kWarn);
  const std::string out_dir = argc > 1 ? argv[1] : "/tmp";

  util::Table table({"design", "cells", "truth groups", "found", "precision",
                     "recall", "lane acc", "seeds", "time [ms]"});

  for (const auto& name : dpgen::standard_benchmarks()) {
    const dpgen::Benchmark bench = dpgen::make_benchmark(name);
    const auto result = extract::extract_structures(bench.netlist);
    const auto quality = extract::compare_extraction(
        bench.netlist, result.annotation, bench.truth);
    table.add_row({name,
                   util::Table::integer(
                       static_cast<long long>(bench.netlist.num_cells())),
                   util::Table::integer(
                       static_cast<long long>(bench.truth.groups.size())),
                   util::Table::integer(
                       static_cast<long long>(quality.groups_found)),
                   util::Table::num(quality.precision, 3),
                   util::Table::num(quality.recall, 3),
                   util::Table::num(quality.lane_accuracy, 3),
                   util::Table::integer(
                       static_cast<long long>(result.seeds_tried)),
                   util::Table::num(result.seconds * 1e3, 1)});

    if (name == "dp_alu32") {
      // Export this one for inspection: groups sidecar + SVG with the
      // extracted structure colored over the initial placement.
      netlist::write_groups(out_dir + "/dp_alu32.groups", bench.netlist,
                            result.annotation);
      eval::write_svg(out_dir + "/dp_alu32_structure.svg", bench.netlist,
                      bench.design, bench.placement, &result.annotation);
      std::printf("wrote %s/dp_alu32.groups and dp_alu32_structure.svg\n",
                  out_dir.c_str());
    }
  }

  std::printf("\nDatapath extraction quality vs. ground truth:\n%s",
              table.to_string().c_str());
  return 0;
}
