// Mixed-design walkthrough: place a design that is half datapath and half
// random control logic with the baseline flow, the structure-aware flow
// with gentle legalization, and the structure-aware flow with full
// template-block legalization; compare wirelength, datapath wirelength,
// alignment, and runtime. Writes SVG renderings of all three placements.
//
//   ./build/examples/mixed_design [output_dir]

#include <cstdio>
#include <string>

#include "core/structure_placer.hpp"
#include "dpgen/benchmarks.hpp"
#include "eval/svg.hpp"
#include "util/logger.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dp;
  util::Logger::set_level(util::LogLevel::kWarn);
  const std::string out_dir = argc > 1 ? argv[1] : "/tmp";

  const dpgen::Benchmark bench = dpgen::make_mix(0.5, 2000);
  std::printf("design %s: %zu cells (%zu datapath), %zu nets\n",
              bench.name.c_str(), bench.netlist.num_cells(),
              bench.truth.total_cells(), bench.netlist.num_nets());

  util::Table table({"flow", "HPWL", "dp HPWL", "misalign [rows]",
                     "legal", "time [s]"});

  struct Variant {
    const char* name;
    bool structure_aware;
    core::LegalizationMode mode;
  };
  const Variant variants[] = {
      {"baseline", false, core::LegalizationMode::kGentle},
      {"sa-gentle", true, core::LegalizationMode::kGentle},
      {"sa-blocks", true, core::LegalizationMode::kStructured},
  };

  for (const Variant& v : variants) {
    core::PlacerConfig config;
    config.structure_aware = v.structure_aware;
    config.legalization = v.mode;
    core::StructurePlacer placer(bench.netlist, bench.design, config);
    netlist::Placement pl = bench.placement;
    const core::PlaceReport rep = placer.place(pl, &bench.truth);
    table.add_row({v.name, util::Table::num(rep.hpwl_final, 0),
                   util::Table::num(rep.datapath_hpwl_final, 0),
                   util::Table::num(rep.alignment.rms_misalignment, 2),
                   rep.legality.legal() ? "yes" : "NO",
                   util::Table::num(rep.t_total, 2)});
    eval::write_svg(out_dir + "/mixed_" + v.name + ".svg", bench.netlist,
                    bench.design, pl,
                    v.structure_aware ? &rep.structure : &bench.truth);
  }

  std::printf("\n%s\nSVGs written to %s/mixed_*.svg\n",
              table.to_string().c_str(), out_dir.c_str());
  return 0;
}
