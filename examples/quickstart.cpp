// Quickstart: generate a small datapath-intensive design, place it with the
// structure-oblivious baseline and with the structure-aware flow, and
// compare wirelength, legality, and datapath alignment.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/structure_placer.hpp"
#include "dpgen/benchmarks.hpp"
#include "util/logger.hpp"

int main() {
  using namespace dp;
  util::Logger::set_level(util::LogLevel::kInfo);

  // A 32-bit two-stage pipelined-adder design with control glue.
  dpgen::Benchmark bench = dpgen::make_benchmark("dp_add32");
  std::printf("design %s: %zu cells, %zu nets, %zu movable\n",
              bench.name.c_str(), bench.netlist.num_cells(),
              bench.netlist.num_nets(), bench.netlist.num_movable());

  auto run = [&](bool structure_aware) {
    core::PlacerConfig config;
    config.structure_aware = structure_aware;
    core::StructurePlacer placer(bench.netlist, bench.design, config);
    netlist::Placement pl = bench.placement;  // pads fixed, movables parked
    core::PlaceReport rep = placer.place(pl, &bench.truth);
    std::printf(
        "%-9s hpwl=%9.1f dp_hpwl=%9.1f misalign=%5.2f rows  legal=%s  "
        "(gp %.2fs, legal %.2fs, dp %.2fs)\n",
        structure_aware ? "struct:" : "baseline:", rep.hpwl_final,
        rep.datapath_hpwl_final, rep.alignment.rms_misalignment,
        rep.legality.legal() ? "yes" : "NO", rep.t_gp, rep.t_legal,
        rep.t_detail);
    return rep;
  };

  const auto base = run(false);
  const auto sa = run(true);
  std::printf("HPWL improvement: %.1f%%\n",
              100.0 * (base.hpwl_final - sa.hpwl_final) / base.hpwl_final);
  return 0;
}
