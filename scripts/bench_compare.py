#!/usr/bin/env python3
"""Compare google-benchmark JSON files and flag regressions.

Usage:
    bench_compare.py BASELINE.json CURRENT.json
                     [BASELINE2.json CURRENT2.json ...]
                     [--threshold 0.5] [--filter REGEX]

Positional arguments are baseline/current pairs; several pairs may be
compared in one invocation (e.g. the detail-kernel and route-kernel
baselines side by side in CI), each reported under its own heading.

Benchmarks are matched by name. When a file was produced with
--benchmark_repetitions and aggregate reporting, the median aggregate is
used; otherwise the raw iteration entry. A benchmark regresses when its
current cpu_time exceeds baseline * (1 + threshold); the default 50%
threshold is deliberately loose because shared CI runners are noisy --
the step exists to catch order-of-magnitude cliffs, not 10% drift.

Exit status: 0 when no benchmark regresses, 1 otherwise (missing
counterparts are reported but do not fail the comparison).
"""

import argparse
import json
import re
import sys

_UNIT_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_times(path):
    """Map benchmark name -> cpu_time in ns (median aggregate preferred)."""
    with open(path) as f:
        data = json.load(f)
    times = {}
    for b in data.get("benchmarks", []):
        scale = _UNIT_TO_NS.get(b.get("time_unit", "ns"), 1.0)
        if b.get("run_type") == "aggregate":
            if b.get("aggregate_name") != "median":
                continue
            name = b.get("run_name", b["name"])
        else:
            name = b["name"]
            if name in times:  # keep the first entry per repeated name
                continue
        times[name] = b["cpu_time"] * scale
    return times


def compare_pair(baseline, current, threshold, pattern):
    """Print a comparison table; return the list of (name, ratio) regressions.

    A pair that cannot be compared -- a file that is missing or not valid
    benchmark JSON, or two files with no benchmark name in common -- is
    advisory: it prints a note and contributes no regressions, so a freshly
    added kernel suite without a recorded baseline does not fail CI.
    """
    times = {}
    for role, path in (("baseline", baseline), ("current", current)):
        try:
            times[role] = load_times(path)
        except OSError as e:
            print(f"advisory: cannot read {role} {path}: {e.strerror or e}"
                  " -- skipping this pair (record a baseline to enable the"
                  " comparison)")
            return []
        except (json.JSONDecodeError, KeyError, TypeError) as e:
            print(f"advisory: {role} {path} is not benchmark JSON ({e})"
                  " -- skipping this pair")
            return []
    base, cur = times["baseline"], times["current"]

    if base and cur and not set(base) & set(cur):
        print(f"advisory: {baseline} and {current} share no benchmark names"
              " -- comparing different suites? skipping this pair")
        return []

    names = sorted(set(base) | set(cur))
    if pattern:
        names = [n for n in names if pattern.search(n)]

    regressions = []
    width = max((len(n) for n in names), default=4)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  ratio")
    for name in names:
        if name not in base or name not in cur:
            where = "baseline" if name not in base else "current"
            print(f"{name:<{width}}  (missing from {where})")
            continue
        ratio = cur[name] / base[name] if base[name] > 0 else float("inf")
        flag = ""
        if ratio > 1.0 + threshold:
            regressions.append((name, ratio))
            flag = "  << REGRESSION"
        print(f"{name:<{width}}  {base[name]:>10.0f}ns  {cur[name]:>10.0f}ns"
              f"  {ratio:5.2f}x{flag}")
    return regressions


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="+", metavar="BASELINE CURRENT",
                    help="one or more baseline/current JSON pairs")
    ap.add_argument("--threshold", type=float, default=0.5,
                    help="allowed slowdown fraction (default 0.5 = +50%%)")
    ap.add_argument("--filter", default=None,
                    help="only compare benchmark names matching this regex")
    args = ap.parse_args()

    if len(args.files) % 2 != 0:
        ap.error("expected an even number of files (baseline/current pairs)")
    pattern = re.compile(args.filter) if args.filter else None
    pairs = [(args.files[i], args.files[i + 1])
             for i in range(0, len(args.files), 2)]

    regressions = []
    for i, (baseline, current) in enumerate(pairs):
        if len(pairs) > 1:
            if i > 0:
                print()
            print(f"== {baseline} vs {current} ==")
        regressions += compare_pair(baseline, current, args.threshold,
                                    pattern)

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"+{args.threshold * 100:.0f}%:")
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x")
        return 1
    print("\nno regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
