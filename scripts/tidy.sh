#!/usr/bin/env bash
# Run clang-tidy (config: .clang-tidy) over every source file under src/.
#
# Usage: scripts/tidy.sh [build-dir] [extra clang-tidy args...]
#   build-dir must hold a compile_commands.json; it is configured with
#   CMAKE_EXPORT_COMPILE_COMMANDS on demand if missing.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
shift $(( $# > 0 ? 1 : 0 ))

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "tidy.sh: clang-tidy not found on PATH; skipping" >&2
  exit 0
fi

if [ ! -f "$build/compile_commands.json" ]; then
  cmake -B "$build" -S "$repo" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

mapfile -t files < <(find "$repo/src" -name '*.cpp' | sort)
echo "tidy.sh: checking ${#files[@]} files against $build/compile_commands.json"

status=0
for f in "${files[@]}"; do
  clang-tidy -p "$build" --quiet "$@" "$f" || status=1
done
exit $status
