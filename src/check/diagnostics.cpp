#include "check/diagnostics.hpp"

#include <cstdio>
#include <sstream>

namespace dp::check {

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

void DiagnosticSink::report(Severity severity, std::string rule, Anchor anchor,
                            std::string message) {
  switch (severity) {
    case Severity::kError:
      ++errors_;
      break;
    case Severity::kWarning:
      ++warnings_;
      break;
    case Severity::kNote:
      ++notes_;
      break;
  }
  if (diagnostics_.size() < max_retained_) {
    diagnostics_.push_back(
        {severity, std::move(rule), anchor, std::move(message)});
  }
}

bool DiagnosticSink::fired(const std::string& rule) const {
  for (const Diagnostic& d : diagnostics_) {
    if (d.rule == rule) return true;
  }
  return false;
}

void DiagnosticSink::clear() {
  diagnostics_.clear();
  errors_ = warnings_ = notes_ = 0;
}

std::string describe(const Anchor& anchor, const netlist::Netlist* nl) {
  std::ostringstream out;
  const bool named = nl != nullptr && anchor.id != netlist::kInvalidId;
  switch (anchor.kind) {
    case AnchorKind::kNone:
      out << "design";
      break;
    case AnchorKind::kCell:
      out << "cell ";
      if (named && anchor.id < nl->num_cells()) {
        out << "'" << nl->cell(anchor.id).name << "' ";
      }
      out << "(id " << anchor.id << ")";
      break;
    case AnchorKind::kNet:
      out << "net ";
      if (named && anchor.id < nl->num_nets()) {
        out << "'" << nl->net(anchor.id).name << "' ";
      }
      out << "(id " << anchor.id << ")";
      break;
    case AnchorKind::kPin:
      out << "pin (id " << anchor.id << ")";
      if (named && anchor.id < nl->num_pins()) {
        const netlist::Pin& p = nl->pin(anchor.id);
        if (p.cell < nl->num_cells()) {
          out << " on cell '" << nl->cell(p.cell).name << "'";
        }
      }
      break;
    case AnchorKind::kGroup:
      out << "group " << anchor.id;
      break;
  }
  return out.str();
}

std::string format_text(const DiagnosticSink& sink,
                        const netlist::Netlist* nl) {
  std::ostringstream out;
  for (const Diagnostic& d : sink.diagnostics()) {
    out << to_string(d.severity) << "[" << d.rule << "] "
        << describe(d.anchor, nl) << ": " << d.message << "\n";
  }
  if (sink.dropped() > 0) {
    out << "... " << sink.dropped() << " further diagnostics not shown\n";
  }
  out << sink.num_errors() << " error(s), " << sink.num_warnings()
      << " warning(s), " << sink.num_notes() << " note(s)\n";
  return out.str();
}

namespace {

void append_json_string(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

const char* anchor_kind_name(AnchorKind kind) {
  switch (kind) {
    case AnchorKind::kNone:
      return "none";
    case AnchorKind::kCell:
      return "cell";
    case AnchorKind::kNet:
      return "net";
    case AnchorKind::kPin:
      return "pin";
    case AnchorKind::kGroup:
      return "group";
  }
  return "?";
}

}  // namespace

std::string format_json(const DiagnosticSink& sink,
                        const netlist::Netlist* nl) {
  std::ostringstream out;
  out << "{\"summary\":{\"errors\":" << sink.num_errors()
      << ",\"warnings\":" << sink.num_warnings()
      << ",\"notes\":" << sink.num_notes() << ",\"dropped\":" << sink.dropped()
      << "},\"diagnostics\":[";
  bool first = true;
  for (const Diagnostic& d : sink.diagnostics()) {
    if (!first) out << ",";
    first = false;
    out << "{\"severity\":\"" << to_string(d.severity) << "\",\"rule\":";
    append_json_string(out, d.rule);
    out << ",\"anchor\":{\"kind\":\"" << anchor_kind_name(d.anchor.kind)
        << "\",\"id\":";
    if (d.anchor.id == netlist::kInvalidId) {
      out << "null";
    } else {
      out << d.anchor.id;
    }
    out << ",\"name\":";
    bool have_name = false;
    if (nl != nullptr && d.anchor.id != netlist::kInvalidId) {
      if (d.anchor.kind == AnchorKind::kCell && d.anchor.id < nl->num_cells()) {
        append_json_string(out, nl->cell(d.anchor.id).name);
        have_name = true;
      } else if (d.anchor.kind == AnchorKind::kNet &&
                 d.anchor.id < nl->num_nets()) {
        append_json_string(out, nl->net(d.anchor.id).name);
        have_name = true;
      }
    }
    if (!have_name) out << "null";
    out << "},\"message\":";
    append_json_string(out, d.message);
    out << "}";
  }
  out << "]}";
  return out.str();
}

}  // namespace dp::check
