#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace dp::check {

/// How bad a finding is. Errors mean the data structure violates an
/// invariant some later phase relies on; warnings flag suspicious but
/// survivable shapes (e.g. an undriven net); notes are informational.
enum class Severity : std::uint8_t { kNote, kWarning, kError };

const char* to_string(Severity severity);

/// What a diagnostic points at.
enum class AnchorKind : std::uint8_t { kNone, kCell, kNet, kPin, kGroup };

/// A typed reference into the design: the cell/net/pin id or the index of
/// a structure group within its annotation.
struct Anchor {
  AnchorKind kind = AnchorKind::kNone;
  std::uint32_t id = netlist::kInvalidId;

  static Anchor none() { return {}; }
  static Anchor cell(netlist::CellId c) { return {AnchorKind::kCell, c}; }
  static Anchor net(netlist::NetId n) { return {AnchorKind::kNet, n}; }
  static Anchor pin(netlist::PinId p) { return {AnchorKind::kPin, p}; }
  static Anchor group(std::size_t g) {
    return {AnchorKind::kGroup, static_cast<std::uint32_t>(g)};
  }
};

/// One finding of one rule.
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string rule;  ///< rule id, e.g. "legal.overlap"
  Anchor anchor;
  std::string message;
};

/// Collects diagnostics. Counts every report but retains at most
/// `max_retained` Diagnostic objects, so a catastrophically broken design
/// (every cell overlapping) cannot blow up memory.
class DiagnosticSink {
 public:
  explicit DiagnosticSink(std::size_t max_retained = 256)
      : max_retained_(max_retained) {}

  void report(Severity severity, std::string rule, Anchor anchor,
              std::string message);

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }

  std::size_t num_errors() const { return errors_; }
  std::size_t num_warnings() const { return warnings_; }
  std::size_t num_notes() const { return notes_; }
  std::size_t total() const { return errors_ + warnings_ + notes_; }
  /// Reports beyond the retention cap (counted but not stored).
  std::size_t dropped() const { return total() - diagnostics_.size(); }

  /// No errors (warnings/notes allowed).
  bool ok() const { return errors_ == 0; }
  /// Nothing at all was reported.
  bool clean() const { return total() == 0; }

  /// True iff any retained diagnostic came from `rule`.
  bool fired(const std::string& rule) const;

  void clear();

 private:
  std::size_t max_retained_;
  std::vector<Diagnostic> diagnostics_;
  std::size_t errors_ = 0;
  std::size_t warnings_ = 0;
  std::size_t notes_ = 0;
};

/// Human-readable anchor description ("cell 'dp0_fa3' (id 17)"); uses
/// names when `nl` is given, bare ids otherwise.
std::string describe(const Anchor& anchor, const netlist::Netlist* nl);

/// Compiler-style text report, one line per retained diagnostic plus a
/// summary line. `nl` (optional) resolves anchors to names.
std::string format_text(const DiagnosticSink& sink,
                        const netlist::Netlist* nl = nullptr);

/// Machine-readable report: {"summary": {...}, "diagnostics": [...]}.
std::string format_json(const DiagnosticSink& sink,
                        const netlist::Netlist* nl = nullptr);

}  // namespace dp::check
