#include "check/rules.hpp"

#include <cmath>
#include <sstream>
#include <unordered_map>

#include "eval/metrics.hpp"
#include "timing/timing_graph.hpp"

namespace dp::check {

using netlist::CellId;
using netlist::kInvalidId;
using netlist::NetId;
using netlist::PinId;

namespace {

std::string fmt(const char* pattern, double a) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), pattern, a);
  return buf;
}

std::string fmt(const char* pattern, double a, double b) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), pattern, a, b);
  return buf;
}

// ---- netlist: referential integrity ---------------------------------------

/// Every pin's cell/net ids are in range and the back-pointer lists agree
/// in both directions (pin listed by its cell and its net, lists point at
/// pins that point back).
void rule_pin_refs(const CheckContext& ctx, DiagnosticSink& sink) {
  const auto& nl = *ctx.netlist;
  for (PinId p = 0; p < nl.num_pins(); ++p) {
    const netlist::Pin& pin = nl.pin(p);
    if (pin.cell >= nl.num_cells()) {
      sink.report(Severity::kError, "netlist.pin-refs", Anchor::pin(p),
                  "pin references nonexistent cell id " +
                      std::to_string(pin.cell));
      continue;
    }
    if (pin.net >= nl.num_nets()) {
      sink.report(Severity::kError, "netlist.pin-refs", Anchor::pin(p),
                  "pin references nonexistent net id " +
                      std::to_string(pin.net));
      continue;
    }
    bool in_cell = false;
    for (PinId q : nl.cell(pin.cell).pins) in_cell |= (q == p);
    if (!in_cell) {
      sink.report(Severity::kError, "netlist.pin-refs", Anchor::pin(p),
                  "pin not listed by its cell '" + nl.cell(pin.cell).name +
                      "'");
    }
    bool in_net = false;
    for (PinId q : nl.net(pin.net).pins) in_net |= (q == p);
    if (!in_net) {
      sink.report(Severity::kError, "netlist.pin-refs", Anchor::pin(p),
                  "pin not listed by its net '" + nl.net(pin.net).name + "'");
    }
  }
  for (CellId c = 0; c < nl.num_cells(); ++c) {
    for (PinId p : nl.cell(c).pins) {
      if (p >= nl.num_pins()) {
        sink.report(Severity::kError, "netlist.pin-refs", Anchor::cell(c),
                    "cell lists nonexistent pin id " + std::to_string(p));
      } else if (nl.pin(p).cell != c) {
        sink.report(Severity::kError, "netlist.pin-refs", Anchor::cell(c),
                    "cell lists pin " + std::to_string(p) +
                        " which belongs to cell id " +
                        std::to_string(nl.pin(p).cell));
      }
    }
  }
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    for (PinId p : nl.net(n).pins) {
      if (p >= nl.num_pins()) {
        sink.report(Severity::kError, "netlist.pin-refs", Anchor::net(n),
                    "net lists nonexistent pin id " + std::to_string(p));
      } else if (nl.pin(p).net != n) {
        sink.report(Severity::kError, "netlist.pin-refs", Anchor::net(n),
                    "net lists pin " + std::to_string(p) +
                        " which belongs to net id " +
                        std::to_string(nl.pin(p).net));
      }
    }
  }
}

/// Cell types exist in the library, have sane geometry, and every pin's
/// port index points into its type's pin bank (each port bound once).
void rule_cell_types(const CheckContext& ctx, DiagnosticSink& sink) {
  const auto& nl = *ctx.netlist;
  const auto& lib = nl.library();
  for (CellId c = 0; c < nl.num_cells(); ++c) {
    const netlist::Cell& cell = nl.cell(c);
    if (cell.type >= lib.size()) {
      sink.report(Severity::kError, "netlist.cell-types", Anchor::cell(c),
                  "cell references nonexistent type id " +
                      std::to_string(cell.type));
      continue;
    }
    const netlist::CellType& type = lib.type(cell.type);
    if (!std::isfinite(type.width) || !std::isfinite(type.height) ||
        type.width <= 0.0 || type.height <= 0.0) {
      sink.report(Severity::kError, "netlist.cell-types", Anchor::cell(c),
                  "cell type '" + type.name + "' has degenerate size " +
                      fmt("%gx%g", type.width, type.height));
    }
    std::unordered_map<std::uint16_t, PinId> bound;
    for (PinId p : cell.pins) {
      if (p >= nl.num_pins()) continue;  // rule_pin_refs reports these
      const netlist::Pin& pin = nl.pin(p);
      if (pin.port >= type.pins.size()) {
        sink.report(Severity::kError, "netlist.cell-types", Anchor::pin(p),
                    "pin port " + std::to_string(pin.port) +
                        " out of range for type '" + type.name + "' (" +
                        std::to_string(type.pins.size()) + " ports)");
        continue;
      }
      auto [it, inserted] = bound.emplace(pin.port, p);
      if (!inserted) {
        sink.report(Severity::kError, "netlist.cell-types", Anchor::cell(c),
                    "port " + std::to_string(pin.port) +
                        " bound by two pins (" + std::to_string(it->second) +
                        " and " + std::to_string(p) + ")");
      }
    }
  }
}

/// Pin directions match the cell type's pin specs. Pads are exempt (their
/// single pin legitimately flips direction per instance) and so are
/// generic cells (Bookshelf imports carry per-instance directions).
void rule_pin_dirs(const CheckContext& ctx, DiagnosticSink& sink) {
  const auto& nl = *ctx.netlist;
  for (PinId p = 0; p < nl.num_pins(); ++p) {
    const netlist::Pin& pin = nl.pin(p);
    if (pin.cell >= nl.num_cells()) continue;
    const netlist::Cell& cell = nl.cell(pin.cell);
    if (cell.type >= nl.library().size()) continue;
    const netlist::CellType& type = nl.library().type(cell.type);
    if (type.func == netlist::CellFunc::kPad ||
        type.func == netlist::CellFunc::kGeneric) {
      continue;
    }
    if (pin.port >= type.pins.size()) continue;
    if (pin.dir != type.pins[pin.port].dir) {
      sink.report(Severity::kError, "netlist.pin-dirs", Anchor::pin(p),
                  "direction disagrees with port '" +
                      type.pins[pin.port].name + "' of type '" + type.name +
                      "'");
    }
  }
}

/// Net shape sanity: finite positive weight, and (as a warning) multiple
/// drivers on one net. Undriven and single-pin nets are legal inputs the
/// placer tolerates, so they are not flagged.
void rule_net_shape(const CheckContext& ctx, DiagnosticSink& sink) {
  const auto& nl = *ctx.netlist;
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    const netlist::Net& net = nl.net(n);
    if (!std::isfinite(net.weight) || net.weight <= 0.0) {
      sink.report(Severity::kError, "netlist.net-shape", Anchor::net(n),
                  "net weight " + std::to_string(net.weight) +
                      " is not a positive finite number");
    }
    std::size_t drivers = 0;
    for (PinId p : net.pins) {
      if (p < nl.num_pins() && nl.pin(p).dir == netlist::PinDir::kOutput) {
        ++drivers;
      }
    }
    if (drivers > 1) {
      sink.report(Severity::kWarning, "netlist.net-shape", Anchor::net(n),
                  "net has " + std::to_string(drivers) + " driver pins");
    }
  }
}

// ---- geometry: coordinate sanity ------------------------------------------

/// The placement covers every cell and contains no NaN/Inf coordinate
/// (the classic way a diverged optimizer escapes detection).
void rule_finite(const CheckContext& ctx, DiagnosticSink& sink) {
  const auto& nl = *ctx.netlist;
  const auto& pl = *ctx.placement;
  if (pl.size() < nl.num_cells()) {
    sink.report(Severity::kError, "geom.finite", Anchor::none(),
                "placement has " + std::to_string(pl.size()) +
                    " positions for " + std::to_string(nl.num_cells()) +
                    " cells");
    return;
  }
  for (CellId c = 0; c < nl.num_cells(); ++c) {
    if (!std::isfinite(pl[c].x) || !std::isfinite(pl[c].y)) {
      sink.report(Severity::kError, "geom.finite", Anchor::cell(c),
                  "non-finite position " + fmt("(%g, %g)", pl[c].x, pl[c].y));
    }
  }
}

/// Movable cells sit fully inside the core (fixed pads legitimately ring
/// the outside). Tolerance comes from the context, so the post-GP hook
/// can allow boundary overhang before legalization snaps cells in.
void rule_in_core(const CheckContext& ctx, DiagnosticSink& sink) {
  const auto& nl = *ctx.netlist;
  const auto& pl = *ctx.placement;
  const geom::Rect& core = ctx.design->core();
  for (CellId c = 0; c < nl.num_cells() && c < pl.size(); ++c) {
    if (nl.cell(c).fixed) continue;
    if (!std::isfinite(pl[c].x) || !std::isfinite(pl[c].y)) continue;
    const geom::Rect r =
        geom::Rect::from_center(pl[c], nl.cell_width(c), nl.cell_height(c));
    if (!core.contains(r, ctx.tolerance)) {
      sink.report(Severity::kError, "geom.in-core", Anchor::cell(c),
                  "cell at " + fmt("(%g, %g)", pl[c].x, pl[c].y) +
                      " extends outside the core");
    }
  }
}

/// Fixed cells have not moved relative to the reference placement. The
/// pipeline snapshots its input placement, so any phase that disturbs a
/// pad shows up at the phase that did it.
void rule_fixed_immobile(const CheckContext& ctx, DiagnosticSink& sink) {
  const auto& nl = *ctx.netlist;
  const auto& pl = *ctx.placement;
  const auto& ref = *ctx.fixed_reference;
  for (CellId c = 0; c < nl.num_cells(); ++c) {
    if (!nl.cell(c).fixed || c >= pl.size() || c >= ref.size()) continue;
    if (std::abs(pl[c].x - ref[c].x) > ctx.tolerance ||
        std::abs(pl[c].y - ref[c].y) > ctx.tolerance) {
      sink.report(Severity::kError, "geom.fixed-immobile", Anchor::cell(c),
                  "fixed cell moved from " + fmt("(%g, %g)", ref[c].x,
                                                 ref[c].y) +
                      " to " + fmt("(%g, %g)", pl[c].x, pl[c].y));
    }
  }
}

// ---- legality: row/site discipline ----------------------------------------

/// Movable cells' bottom edges land on row boundaries.
void rule_row_align(const CheckContext& ctx, DiagnosticSink& sink) {
  const auto& nl = *ctx.netlist;
  const auto& pl = *ctx.placement;
  const auto& design = *ctx.design;
  for (CellId c = 0; c < nl.num_cells() && c < pl.size(); ++c) {
    if (nl.cell(c).fixed) continue;
    if (!std::isfinite(pl[c].y)) continue;
    const double ly = pl[c].y - nl.cell_height(c) / 2.0;
    const double rel = (ly - design.core().ly) / design.row_height();
    if (std::abs(rel - std::round(rel)) > ctx.tolerance) {
      sink.report(Severity::kError, "legal.row-align", Anchor::cell(c),
                  "bottom edge " + fmt("%g is %g rows", ly,
                                       rel - std::round(rel)) +
                      " off the row grid");
    }
  }
}

/// Movable cells' left edges land on the site grid.
void rule_site_align(const CheckContext& ctx, DiagnosticSink& sink) {
  const auto& nl = *ctx.netlist;
  const auto& pl = *ctx.placement;
  const auto& design = *ctx.design;
  for (CellId c = 0; c < nl.num_cells() && c < pl.size(); ++c) {
    if (nl.cell(c).fixed) continue;
    if (!std::isfinite(pl[c].x)) continue;
    const double lx = pl[c].x - nl.cell_width(c) / 2.0;
    const double rel = (lx - design.core().lx) / design.site_width();
    if (std::abs(rel - std::round(rel)) > ctx.tolerance) {
      sink.report(Severity::kError, "legal.site-align", Anchor::cell(c),
                  "left edge " + fmt("%g is %g sites", lx,
                                     rel - std::round(rel)) +
                      " off the site grid");
    }
  }
}

/// No two movable cells overlap, via the row-bucketed sweep shared with
/// eval::check_legality.
void rule_overlap(const CheckContext& ctx, DiagnosticSink& sink) {
  bool truncated = false;
  const auto pairs = eval::overlap_pairs(*ctx.netlist, *ctx.design,
                                         *ctx.placement, ctx.tolerance,
                                         /*max_pairs=*/4096, &truncated);
  for (const eval::OverlapPair& p : pairs) {
    sink.report(Severity::kError, "legal.overlap", Anchor::cell(p.a),
                "overlaps cell '" + ctx.netlist->cell(p.b).name + "' (id " +
                    std::to_string(p.b) + ") by area " + fmt("%g", p.area));
  }
  if (truncated) {
    sink.report(Severity::kWarning, "legal.overlap-truncated", Anchor::none(),
                "overlap sweep stopped at " + std::to_string(pairs.size()) +
                    " pairs; overlap counts are a lower bound");
  }
}

// ---- structure: datapath-group well-formedness -----------------------------

/// Groups are rectangular bits x stages arrays with at least one member.
void rule_structure_shape(const CheckContext& ctx, DiagnosticSink& sink) {
  const auto& groups = ctx.structure->groups;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const netlist::StructureGroup& grp = groups[g];
    if (grp.bits == 0 || grp.stages == 0) {
      sink.report(Severity::kError, "structure.shape", Anchor::group(g),
                  "group '" + grp.name + "' has degenerate shape " +
                      std::to_string(grp.bits) + "x" +
                      std::to_string(grp.stages));
      continue;
    }
    if (grp.cells.size() != grp.bits * grp.stages) {
      sink.report(Severity::kError, "structure.shape", Anchor::group(g),
                  "group '" + grp.name + "' is ragged: " +
                      std::to_string(grp.cells.size()) + " entries for " +
                      std::to_string(grp.bits) + "x" +
                      std::to_string(grp.stages));
      continue;
    }
    if (grp.num_cells() == 0) {
      sink.report(Severity::kWarning, "structure.shape", Anchor::group(g),
                  "group '" + grp.name + "' has no members (all holes)");
    }
  }
}

/// Member cell ids are valid movable cells, and no cell belongs to two
/// groups (or appears twice in one): slices must be disjoint so that one
/// cell is never pulled toward two different array positions.
void rule_structure_members(const CheckContext& ctx, DiagnosticSink& sink) {
  const auto& nl = *ctx.netlist;
  const auto& groups = ctx.structure->groups;
  std::unordered_map<CellId, std::size_t> owner;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const netlist::StructureGroup& grp = groups[g];
    for (CellId c : grp.cells) {
      if (c == kInvalidId) continue;
      if (c >= nl.num_cells()) {
        sink.report(Severity::kError, "structure.members", Anchor::group(g),
                    "group '" + grp.name +
                        "' references nonexistent cell id " +
                        std::to_string(c));
        continue;
      }
      if (nl.cell(c).fixed) {
        sink.report(Severity::kError, "structure.members", Anchor::cell(c),
                    "fixed cell '" + nl.cell(c).name + "' is a member of group '" +
                        grp.name + "'");
      }
      auto [it, inserted] = owner.emplace(c, g);
      if (!inserted) {
        sink.report(
            Severity::kError, "structure.members", Anchor::cell(c),
            it->second == g
                ? "cell '" + nl.cell(c).name + "' appears twice in group '" +
                      grp.name + "'"
                : "cell '" + nl.cell(c).name + "' belongs to groups '" +
                      groups[it->second].name + "' and '" + grp.name + "'");
      }
    }
  }
}

/// Cells within one stage column share a cell type: the alignment term and
/// plate legalizer assume a stage is one vertical slice of identical
/// (signature-compatible) cells. Mixed stages place fine but misalign, so
/// this is a warning.
void rule_structure_stage_types(const CheckContext& ctx,
                                DiagnosticSink& sink) {
  const auto& nl = *ctx.netlist;
  const auto& groups = ctx.structure->groups;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const netlist::StructureGroup& grp = groups[g];
    if (grp.cells.size() != grp.bits * grp.stages) continue;  // shape reports
    for (std::size_t s = 0; s < grp.stages; ++s) {
      netlist::CellTypeId first_type = 0;
      bool have = false, mixed = false;
      for (std::size_t b = 0; b < grp.bits && !mixed; ++b) {
        const CellId c = grp.at(b, s);
        if (c == kInvalidId || c >= nl.num_cells()) continue;
        if (!have) {
          first_type = nl.cell(c).type;
          have = true;
        } else if (nl.cell(c).type != first_type) {
          mixed = true;
        }
      }
      if (mixed) {
        sink.report(Severity::kWarning, "structure.stage-types",
                    Anchor::group(g),
                    "group '" + grp.name + "' stage " + std::to_string(s) +
                        " mixes cell types");
      }
    }
  }
}

// ---- timing: graph topology -------------------------------------------------

/// Building a TimingGraph dereferences pin->cell and cell->type links, so
/// the timing rules must not run on a netlist whose references are broken
/// (netlist.pin-refs / netlist.cell-types already report that).
bool timing_prereqs_ok(const netlist::Netlist& nl) {
  for (netlist::PinId p = 0; p < nl.num_pins(); ++p) {
    if (nl.pin(p).cell >= nl.num_cells()) return false;
  }
  for (CellId c = 0; c < nl.num_cells(); ++c) {
    if (nl.cell(c).type >= nl.library().size()) return false;
    for (const netlist::PinId p : nl.cell(c).pins) {
      if (p >= nl.num_pins()) return false;
    }
  }
  for (netlist::NetId n = 0; n < nl.num_nets(); ++n) {
    for (const netlist::PinId p : nl.net(n).pins) {
      if (p >= nl.num_pins()) return false;
    }
  }
  return true;
}

/// No combinational cycles: every pin must levelize. A cycle makes static
/// timing (and most downstream analyses) undefined, so each offending pin
/// is an error (capped; the count is always reported).
void rule_timing_loops(const CheckContext& ctx, DiagnosticSink& sink) {
  if (!timing_prereqs_ok(*ctx.netlist)) return;
  const timing::TimingGraph graph(*ctx.netlist);
  if (!graph.has_loops()) return;
  constexpr std::size_t kMaxReported = 8;
  const auto loops = graph.loop_pins();
  for (std::size_t i = 0; i < loops.size() && i < kMaxReported; ++i) {
    const PinId p = loops[i];
    const netlist::Cell& cell = ctx.netlist->cell(ctx.netlist->pin(p).cell);
    sink.report(Severity::kError, "timing.comb-loops", Anchor::pin(p),
                "pin of cell '" + cell.name +
                    "' is on or downstream of a combinational loop");
  }
  if (loops.size() > kMaxReported) {
    sink.report(Severity::kError, "timing.comb-loops", Anchor::none(),
                std::to_string(loops.size() - kMaxReported) +
                    " further pin(s) on or downstream of combinational "
                    "loops (reporting capped)");
  }
}

/// Primary-output pads driven by combinational logic instead of a
/// register or another pad. Legal (several dpgen benchmarks export
/// combinational flag buses), but worth surfacing: these cones set the
/// critical path without a pipeline stage to absorb it. One aggregated
/// note, so strict lint runs stay green.
void rule_timing_unregistered_outputs(const CheckContext& ctx,
                                      DiagnosticSink& sink) {
  const auto& nl = *ctx.netlist;
  if (!timing_prereqs_ok(nl)) return;
  const timing::TimingGraph graph(nl);

  // Longest combinational depth (cell arcs only) per pin, swept in
  // topological order.
  std::vector<std::size_t> depth(nl.num_pins(), 0);
  for (const PinId p : graph.order()) {
    std::size_t d = 0;
    for (std::size_t a = graph.fanin_first(p); a < graph.fanin_first(p + 1);
         ++a) {
      const std::size_t through =
          depth[graph.arc_src()[a]] +
          (graph.arc_kind()[a] == timing::ArcKind::kCell ? 1 : 0);
      d = std::max(d, through);
    }
    depth[p] = d;
  }

  std::size_t unregistered = 0, max_depth = 0;
  CellId example = kInvalidId;
  for (const PinId p : graph.endpoints()) {
    const CellId c = nl.pin(p).cell;
    if (nl.cell_type(c).func != netlist::CellFunc::kPad) continue;
    if (graph.level(p) == 0 && graph.fanin_first(p) != graph.fanin_first(p + 1)) {
      continue;  // loop pin: depth unknown, rule_timing_loops reports it
    }
    if (depth[p] == 0) continue;  // driven by a register or another pad
    ++unregistered;
    if (depth[p] > max_depth) {
      max_depth = depth[p];
      example = c;
    }
  }
  if (unregistered > 0) {
    sink.report(Severity::kNote, "timing.unregistered-outputs",
                Anchor::cell(example),
                std::to_string(unregistered) +
                    " primary-output pad(s) driven by combinational logic "
                    "(deepest cone: " +
                    std::to_string(max_depth) + " gate(s) at pad '" +
                    nl.cell(example).name + "')");
  }
}

// ---- catalog ----------------------------------------------------------------

using RuleFn = void (*)(const CheckContext&, DiagnosticSink&);

struct Rule {
  RuleInfo info;
  RuleFn fn;
  bool needs_placement = false;
  bool needs_design = false;
  bool needs_structure = false;
  bool needs_reference = false;
};

constexpr Rule kRules[] = {
    {{"netlist.pin-refs", kCatNetlist, true,
      "pin<->cell<->net back-pointers agree and all ids exist"},
     rule_pin_refs},
    {{"netlist.cell-types", kCatNetlist, true,
      "cell types exist, have positive size, ports bind once"},
     rule_cell_types},
    {{"netlist.pin-dirs", kCatNetlist, true,
      "pin directions match the cell type's pin specs"},
     rule_pin_dirs},
    {{"netlist.net-shape", kCatNetlist, true,
      "net weights are positive and nets have at most one driver"},
     rule_net_shape},
    {{"geom.finite", kCatGeometry, true,
      "placement covers all cells with finite coordinates"},
     rule_finite, /*placement=*/true},
    {{"geom.in-core", kCatGeometry, true,
      "movable cells sit inside the core region"},
     rule_in_core, /*placement=*/true, /*design=*/true},
    {{"geom.fixed-immobile", kCatGeometry, true,
      "fixed cells have not moved from the reference placement"},
     rule_fixed_immobile, /*placement=*/true, /*design=*/false,
     /*structure=*/false, /*reference=*/true},
    {{"legal.row-align", kCatLegality, true,
      "movable cells sit on row boundaries"},
     rule_row_align, /*placement=*/true, /*design=*/true},
    {{"legal.site-align", kCatLegality, true,
      "movable cells sit on the site grid"},
     rule_site_align, /*placement=*/true, /*design=*/true},
    {{"legal.overlap", kCatLegality, false,
      "no two movable cells overlap (row-bucketed sweep)"},
     rule_overlap, /*placement=*/true, /*design=*/true},
    {{"structure.shape", kCatStructure, true,
      "groups are rectangular bits x stages arrays"},
     rule_structure_shape, /*placement=*/false, /*design=*/false,
     /*structure=*/true},
    {{"structure.members", kCatStructure, true,
      "group members are valid movable cells and slices are disjoint"},
     rule_structure_members, /*placement=*/false, /*design=*/false,
     /*structure=*/true},
    {{"structure.stage-types", kCatStructure, false,
      "cells within one stage column share a cell type"},
     rule_structure_stage_types, /*placement=*/false, /*design=*/false,
     /*structure=*/true},
    {{"timing.comb-loops", kCatTiming, true,
      "the timing graph levelizes (no combinational cycles)"},
     rule_timing_loops},
    {{"timing.unregistered-outputs", kCatTiming, false,
      "primary-output pads are driven by registers, not logic cones"},
     rule_timing_unregistered_outputs},
};

}  // namespace

std::span<const RuleInfo> rule_catalog() {
  static const auto infos = [] {
    std::vector<RuleInfo> v;
    for (const Rule& r : kRules) v.push_back(r.info);
    return v;
  }();
  return infos;
}

CheckSummary run_checks(const CheckContext& ctx, DiagnosticSink& sink,
                        CheckLevel level, unsigned categories) {
  CheckSummary summary;
  if (ctx.netlist == nullptr || level == CheckLevel::kOff) return summary;
  const std::size_t e0 = sink.num_errors();
  const std::size_t w0 = sink.num_warnings();
  const std::size_t n0 = sink.num_notes();
  for (const Rule& rule : kRules) {
    if ((rule.info.category & categories) == 0) continue;
    if (level == CheckLevel::kCheap && !rule.info.cheap) continue;
    if (rule.needs_placement && ctx.placement == nullptr) continue;
    if (rule.needs_design && ctx.design == nullptr) continue;
    if (rule.needs_structure && ctx.structure == nullptr) continue;
    if (rule.needs_reference && ctx.fixed_reference == nullptr) continue;
    rule.fn(ctx, sink);
    ++summary.rules_run;
  }
  summary.errors = sink.num_errors() - e0;
  summary.warnings = sink.num_warnings() - w0;
  summary.notes = sink.num_notes() - n0;
  return summary;
}

}  // namespace dp::check
