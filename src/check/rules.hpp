#pragma once

#include <span>

#include "check/diagnostics.hpp"
#include "netlist/design.hpp"
#include "netlist/structure.hpp"

namespace dp::check {

/// Rule families, usable as a bitmask to select which families run.
enum : unsigned {
  kCatNetlist = 1u << 0,    ///< referential integrity of the hypergraph
  kCatGeometry = 1u << 1,   ///< coordinate sanity of a placement
  kCatLegality = 1u << 2,   ///< row/site alignment and overlap
  kCatStructure = 1u << 3,  ///< datapath-group well-formedness
  kCatTiming = 1u << 4,     ///< timing-graph topology (loops, open cones)
  kCatAll = (1u << 5) - 1,
};

/// How much checking the pipeline hooks do. kCheap runs the linear-time
/// rules only; kFull adds the sweeps (pairwise overlap, stage typing).
enum class CheckLevel : std::uint8_t { kOff, kCheap, kFull };

/// Everything a rule may look at. `netlist` is mandatory; rules whose
/// other inputs are absent are skipped silently, so one context type
/// serves netlist-only lints and full placement audits alike.
struct CheckContext {
  const netlist::Netlist* netlist = nullptr;
  const netlist::Design* design = nullptr;
  const netlist::Placement* placement = nullptr;
  const netlist::StructureAnnotation* structure = nullptr;
  /// Baseline for the fixed-cell immobility rule: fixed cells must sit
  /// exactly where this placement has them.
  const netlist::Placement* fixed_reference = nullptr;
  /// Geometric slack for in-core / alignment / overlap tests. Phase hooks
  /// loosen this after global placement (cells are not yet snapped).
  double tolerance = 1e-6;
};

/// Static description of one rule in the catalog.
struct RuleInfo {
  const char* id;
  unsigned category;
  bool cheap;  ///< runs at CheckLevel::kCheap
  const char* summary;
};

/// The full rule catalog, in execution order.
std::span<const RuleInfo> rule_catalog();

/// Outcome counts of one run_checks() call.
struct CheckSummary {
  std::size_t rules_run = 0;
  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t notes = 0;

  bool ok() const { return errors == 0; }
};

/// Run every catalog rule matching `level` and `categories` whose inputs
/// are present in `ctx`, reporting findings into `sink`. Returns the
/// counts contributed by this call alone (the sink may be shared across
/// phases and accumulate).
CheckSummary run_checks(const CheckContext& ctx, DiagnosticSink& sink,
                        CheckLevel level = CheckLevel::kFull,
                        unsigned categories = kCatAll);

}  // namespace dp::check
