#include "core/alignment.hpp"

#include <algorithm>
#include <cmath>

namespace dp::core {

using netlist::CellId;
using netlist::kInvalidId;
using netlist::StructureGroup;

AlignmentPenalty::AlignmentPenalty(const netlist::Netlist& nl,
                                   const netlist::StructureAnnotation& groups,
                                   const netlist::Design& design)
    : nl_(&nl), groups_(&groups), design_(&design) {
  orientation_.assign(groups.groups.size(), GroupOrientation::kBitsAlongY);
  stage_pitch_.assign(groups.groups.size(), design.row_height());
  for (std::size_t g = 0; g < groups.groups.size(); ++g) {
    double total_w = 0.0;
    std::size_t n = 0;
    for (CellId c : groups.groups[g].cells) {
      if (c == kInvalidId) continue;
      total_w += nl.cell_width(c);
      ++n;
    }
    if (n > 0) stage_pitch_[g] = total_w / static_cast<double>(n);
  }
  // Default orientation is the pipeline-wide convention: bits are rows.
  // orient_by_shape()/orient_by_placement() remain available as ablations.
}

void AlignmentPenalty::orient_by_shape() {
  for (std::size_t g = 0; g < groups_->groups.size(); ++g) {
    const auto& grp = groups_->groups[g];
    orientation_[g] = grp.bits >= grp.stages
                          ? GroupOrientation::kBitsAlongY
                          : GroupOrientation::kBitsAlongX;
  }
}

namespace {

/// Misalignment proxy: summed variance of slice-share coordinates plus
/// stage-share coordinates for a candidate orientation.
double orientation_cost(const StructureGroup& g,
                        const netlist::Placement& pl, bool bits_along_y) {
  double cost = 0.0;
  auto spread = [&](const std::vector<CellId>& cells, bool use_y) {
    if (cells.size() < 2) return 0.0;
    double mean = 0.0;
    for (CellId c : cells) mean += use_y ? pl[c].y : pl[c].x;
    mean /= static_cast<double>(cells.size());
    double acc = 0.0;
    for (CellId c : cells) {
      const double d = (use_y ? pl[c].y : pl[c].x) - mean;
      acc += d * d;
    }
    return acc;
  };
  for (std::size_t b = 0; b < g.bits; ++b) {
    cost += spread(g.slice(b), bits_along_y);
  }
  for (std::size_t s = 0; s < g.stages; ++s) {
    cost += spread(g.stage(s), !bits_along_y);
  }
  return cost;
}

}  // namespace

void AlignmentPenalty::orient_by_placement(const netlist::Placement& pl) {
  for (std::size_t g = 0; g < groups_->groups.size(); ++g) {
    const auto& grp = groups_->groups[g];
    const double cy = orientation_cost(grp, pl, /*bits_along_y=*/true);
    const double cx = orientation_cost(grp, pl, /*bits_along_y=*/false);
    orientation_[g] = cy <= cx ? GroupOrientation::kBitsAlongY
                               : GroupOrientation::kBitsAlongX;
  }
}

double AlignmentPenalty::eval(const netlist::Placement& pl,
                              const gp::VarMap& vars, std::span<double> gx,
                              std::span<double> gy) const {
  double value = 0.0;

  for (std::size_t gi = 0; gi < groups_->groups.size(); ++gi) {
    const StructureGroup& g = groups_->groups[gi];
    const bool bits_y = orientation_[gi] == GroupOrientation::kBitsAlongY;

    // Lines: bit slices share one coordinate, stages share the other.
    // For bits-along-y: slice coordinate = y, stage coordinate = x.
    // The quadratic pull toward the mean has gradient 2*(c - mean).
    auto align_line = [&](const std::vector<CellId>& cells, bool use_y) {
      if (cells.size() < 2) return 0.0;
      double mean = 0.0;
      std::size_t n = 0;
      for (CellId c : cells) {
        if (!vars.is_movable(c)) continue;
        mean += use_y ? pl[c].y : pl[c].x;
        ++n;
      }
      if (n < 2) return 0.0;
      mean /= static_cast<double>(n);
      double local = 0.0;
      for (CellId c : cells) {
        const auto v = vars.var(c);
        if (v == kInvalidId) continue;
        const double d = (use_y ? pl[c].y : pl[c].x) - mean;
        local += d * d;
        if (use_y) {
          gy[v] += 2.0 * d;
        } else {
          gx[v] += 2.0 * d;
        }
      }
      return local;
    };

    std::vector<double> slice_mean(g.bits, 0.0);
    std::vector<std::size_t> slice_n(g.bits, 0);
    for (std::size_t b = 0; b < g.bits; ++b) {
      const auto cells = g.slice(b);
      value += align_line(cells, bits_y);
      for (CellId c : cells) {
        if (!vars.is_movable(c)) continue;
        slice_mean[b] += bits_y ? pl[c].y : pl[c].x;
        ++slice_n[b];
      }
      if (slice_n[b] > 0) {
        slice_mean[b] /= static_cast<double>(slice_n[b]);
      }
    }

    std::vector<double> stage_mean(g.stages, 0.0);
    std::vector<std::size_t> stage_n(g.stages, 0);
    for (std::size_t s = 0; s < g.stages; ++s) {
      const auto cells = g.stage(s);
      value += align_line(cells, !bits_y);
      for (CellId c : cells) {
        if (!vars.is_movable(c)) continue;
        stage_mean[s] += bits_y ? pl[c].x : pl[c].y;
        ++stage_n[s];
      }
      if (stage_n[s] > 0) {
        stage_mean[s] /= static_cast<double>(stage_n[s]);
      }
    }

    // Ordered ladder springs: consecutive slice (stage) centerlines at
    // exactly one *signed* pitch in index order. Unlike a symmetric
    // keep-apart spring, the signed form actively sorts lanes into their
    // extracted bit order (and stages left to right) -- once plates turn
    // rigid, gradient descent could never permute scrambled lanes, so the
    // order must be imposed while the placement is still fluid. The
    // direction (+/-) is re-estimated per group from the current span so
    // an array that settled upside down is not forced to flip.
    auto pitch_spring = [&](const std::vector<double>& means,
                            const std::vector<std::size_t>& counts,
                            double pitch, bool on_y,
                            auto member_range) {
      // Direction: sign of the overall span across occupied lanes.
      double first = 0.0, last = 0.0;
      bool have_first = false;
      for (std::size_t i = 0; i < means.size(); ++i) {
        if (counts[i] == 0) continue;
        if (!have_first) {
          first = means[i];
          have_first = true;
        }
        last = means[i];
      }
      const double dir = last >= first ? 1.0 : -1.0;

      double local = 0.0;
      for (std::size_t i = 0; i + 1 < means.size(); ++i) {
        if (counts[i] == 0 || counts[i + 1] == 0) continue;
        // v = signed violation of (mean[i+1] - mean[i]) == dir * pitch.
        const double v = means[i + 1] - means[i] - dir * pitch;
        local += v * v;
        const double gi_lo = -2.0 * v / static_cast<double>(counts[i]);
        const double gi_hi = 2.0 * v / static_cast<double>(counts[i + 1]);
        for (CellId c : member_range(i)) {
          const auto vv = vars.var(c);
          if (vv == kInvalidId) continue;
          if (on_y) {
            gy[vv] += gi_lo;
          } else {
            gx[vv] += gi_lo;
          }
        }
        for (CellId c : member_range(i + 1)) {
          const auto vv = vars.var(c);
          if (vv == kInvalidId) continue;
          if (on_y) {
            gy[vv] += gi_hi;
          } else {
            gx[vv] += gi_hi;
          }
        }
      }
      return local;
    };

    const double bit_pitch = design_->row_height();
    value += pitch_spring(
        slice_mean, slice_n, bit_pitch, bits_y,
        [&](std::size_t b) { return g.slice(b); });
    value += pitch_spring(
        stage_mean, stage_n, stage_pitch_[gi], !bits_y,
        [&](std::size_t s) { return g.stage(s); });
  }

  return value;
}

}  // namespace dp::core
