#pragma once

#include <vector>

#include "gp/vars.hpp"
#include "netlist/design.hpp"
#include "netlist/structure.hpp"

namespace dp::core {

/// Layout orientation of a datapath group.
enum class GroupOrientation {
  kBitsAlongY,  ///< bit slices are horizontal rows, stages are columns
  kBitsAlongX,  ///< transposed
};

/// The paper's structure-aware objective term: quadratic penalties that
/// pull every bit slice onto a common row, every stage onto a common
/// column, and keep consecutive slice/stage centerlines at least one
/// pitch apart (so the array cannot collapse onto a single line).
///
/// All sub-terms are quadratic in the coordinates, so gradients are exact
/// and cheap; the term plugs into the analytical global placer as an
/// ExtraTerm whose weight is scheduled against the density penalty.
class AlignmentPenalty final : public gp::ObjectiveTerm {
 public:
  AlignmentPenalty(const netlist::Netlist& nl,
                   const netlist::StructureAnnotation& groups,
                   const netlist::Design& design);

  /// Choose each group's orientation by its shape: wide arrays (bits >=
  /// stages) lay bits along y. Called at construction; exposed for tests.
  void orient_by_shape();

  /// Re-choose each group's orientation to whichever fits the current
  /// placement better (less misalignment). Called when the term activates
  /// mid-placement.
  void orient_by_placement(const netlist::Placement& pl);

  GroupOrientation orientation(std::size_t group) const {
    return orientation_[group];
  }
  std::size_t num_groups() const { return groups_->groups.size(); }

  double eval(const netlist::Placement& pl, const gp::VarMap& vars,
              std::span<double> gx, std::span<double> gy) const override;

 private:
  const netlist::Netlist* nl_;
  const netlist::StructureAnnotation* groups_;
  const netlist::Design* design_;
  std::vector<GroupOrientation> orientation_;
  /// Per group: mean movable-cell width (stage pitch reference).
  std::vector<double> stage_pitch_;
};

}  // namespace dp::core
