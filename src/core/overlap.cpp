#include "core/overlap.hpp"

#include <algorithm>
#include <cmath>

namespace dp::core {

using netlist::CellId;
using netlist::kInvalidId;

PlateOverlapPenalty::PlateOverlapPenalty(
    const netlist::Netlist& nl, const netlist::StructureAnnotation& groups,
    const netlist::Design& design)
    : nl_(&nl), groups_(&groups) {
  width_.reserve(groups.groups.size());
  height_.reserve(groups.groups.size());
  for (const auto& g : groups.groups) {
    double w = 0.0;
    for (std::size_t s = 0; s < g.stages; ++s) {
      double col = 0.0;
      for (std::size_t b = 0; b < g.bits; ++b) {
        const CellId c = g.at(b, s);
        if (c != kInvalidId) col = std::max(col, nl.cell_width(c));
      }
      w += col;
    }
    width_.push_back(w);
    height_.push_back(static_cast<double>(g.bits) * design.row_height());
  }
}

double PlateOverlapPenalty::eval(const netlist::Placement& pl,
                                 const gp::VarMap& vars, std::span<double> gx,
                                 std::span<double> gy) const {
  const std::size_t ng = groups_->groups.size();
  std::vector<double> cx(ng, 0.0), cy(ng, 0.0);
  std::vector<std::vector<std::pair<std::uint32_t, double>>> members(ng);
  // members[g] caches (var, 1/n) pairs so gradients on group means can be
  // distributed; duplicate vars (rigid bodies) accumulate naturally.
  for (std::size_t g = 0; g < ng; ++g) {
    std::size_t n = 0;
    for (CellId c : groups_->groups[g].cells) {
      if (c == kInvalidId || !vars.is_movable(c)) continue;
      cx[g] += pl[c].x;
      cy[g] += pl[c].y;
      ++n;
    }
    if (n == 0) continue;
    cx[g] /= static_cast<double>(n);
    cy[g] /= static_cast<double>(n);
    const double inv = 1.0 / static_cast<double>(n);
    for (CellId c : groups_->groups[g].cells) {
      if (c == kInvalidId || !vars.is_movable(c)) continue;
      members[g].emplace_back(vars.var(c), inv);
    }
  }

  double value = 0.0;
  for (std::size_t i = 0; i < ng; ++i) {
    if (members[i].empty()) continue;
    for (std::size_t j = i + 1; j < ng; ++j) {
      if (members[j].empty()) continue;
      const double dx = cx[i] - cx[j];
      const double dy = cy[i] - cy[j];
      const double ox = (width_[i] + width_[j]) / 2.0 - std::abs(dx);
      const double oy = (height_[i] + height_[j]) / 2.0 - std::abs(dy);
      if (ox <= 0.0 || oy <= 0.0) continue;
      const double area = ox * oy;
      value += area * area;
      // d f / d cx_i = 2 * area * oy * d ox/d cx_i, with
      // d ox / d cx_i = -sign(dx); symmetric for j and for y.
      const double sx = dx >= 0.0 ? 1.0 : -1.0;
      const double sy = dy >= 0.0 ? 1.0 : -1.0;
      const double gx_i = -2.0 * area * oy * sx;
      const double gy_i = -2.0 * area * ox * sy;
      for (const auto& [var, inv] : members[i]) {
        gx[var] += gx_i * inv;
        gy[var] += gy_i * inv;
      }
      for (const auto& [var, inv] : members[j]) {
        gx[var] -= gx_i * inv;
        gy[var] -= gy_i * inv;
      }
    }
  }
  return value;
}

}  // namespace dp::core
