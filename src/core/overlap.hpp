#pragma once

#include <vector>

#include "gp/vars.hpp"
#include "netlist/design.hpp"
#include "netlist/structure.hpp"

namespace dp::core {

/// Smooth plate-overlap penalty for the alignment phase of global
/// placement.
///
/// The alignment term is translation-invariant: it shapes each datapath
/// group into a rigid plate but says nothing about where plates sit, and
/// the (area-shrunk) density model separates them only slowly. This term
/// treats every group as a rectangle of its known legalized footprint
/// (stage-column widths x bit rows) centered at the mean of its member
/// positions, and penalizes pairwise rectangle overlap:
///
///   f = sum_{i<j} (ox_ij * oy_ij)^2
///
/// where ox/oy are the per-axis overlaps of the two rectangles (0 when
/// disjoint). Quadratic in the overlap area, smooth, and zero at the
/// packed solution, so it vanishes exactly when plates are separated.
class PlateOverlapPenalty final : public gp::ObjectiveTerm {
 public:
  PlateOverlapPenalty(const netlist::Netlist& nl,
                      const netlist::StructureAnnotation& groups,
                      const netlist::Design& design);

  double eval(const netlist::Placement& pl, const gp::VarMap& vars,
              std::span<double> gx, std::span<double> gy) const override;

  double plate_width(std::size_t group) const { return width_[group]; }
  double plate_height(std::size_t group) const { return height_[group]; }

 private:
  const netlist::Netlist* nl_;
  const netlist::StructureAnnotation* groups_;
  std::vector<double> width_;
  std::vector<double> height_;
};

}  // namespace dp::core
