#include "core/partition.hpp"

#include <algorithm>

namespace dp::core {

using netlist::CellId;
using netlist::kInvalidId;
using netlist::StructureGroup;

netlist::StructureAnnotation partition_groups(
    const netlist::Netlist& nl, const netlist::Design& design,
    const netlist::StructureAnnotation& annotation,
    const PartitionOptions& options) {
  netlist::StructureAnnotation out;
  const double max_width = design.core().width() * options.max_width_fraction;
  const auto max_lanes = std::max<std::size_t>(
      2, static_cast<std::size_t>(options.max_lane_fraction *
                                  static_cast<double>(design.num_rows())));

  for (const StructureGroup& g : annotation.groups) {
    // Fixed convention across the pipeline: bits are vertical lanes
    // (rows), stages horizontal columns. Cutting the stage axis severs
    // only the thin pipeline nets between adjacent columns; cutting bits
    // would sever every carry chain crossing the cut.
    const std::size_t lanes = g.bits;
    const std::size_t cols = g.stages;
    auto cell_at = [&](std::size_t lane, std::size_t col) {
      return g.at(lane, col);
    };

    std::vector<double> col_width(cols, 0.0);
    for (std::size_t col = 0; col < cols; ++col) {
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        const CellId c = cell_at(lane, col);
        if (c != kInvalidId) {
          col_width[col] = std::max(col_width[col], nl.cell_width(c));
        }
      }
    }

    // Consecutive column spans each at most max_width wide.
    std::vector<std::pair<std::size_t, std::size_t>> col_spans;
    std::size_t col = 0;
    while (col < cols) {
      std::size_t end = col;
      double width = 0.0;
      while (end < cols &&
             (end == col || width + col_width[end] <= max_width)) {
        width += col_width[end];
        ++end;
      }
      col_spans.emplace_back(col, end);
      col = end;
    }

    // Lane bands of at most max_lanes.
    std::vector<std::pair<std::size_t, std::size_t>> lane_bands;
    for (std::size_t lane = 0; lane < lanes; lane += max_lanes) {
      lane_bands.emplace_back(lane, std::min(lanes, lane + max_lanes));
    }

    if (col_spans.size() == 1 && lane_bands.size() == 1) {
      out.groups.push_back(g);
      continue;
    }

    std::size_t part = 0;
    for (const auto& [lane0, lane1] : lane_bands) {
      for (const auto& [c0, c1] : col_spans) {
        const std::size_t sub_lanes = lane1 - lane0;
        const std::size_t sub_cols = c1 - c0;
        StructureGroup sub = StructureGroup::make(
            g.name + "." + std::to_string(part), sub_lanes, sub_cols);
        sub.confidence = g.confidence;
        sub.parent = g.name;
        sub.seq = part++;
        std::size_t filled = 0;
        for (std::size_t lane = lane0; lane < lane1; ++lane) {
          for (std::size_t c2 = c0; c2 < c1; ++c2) {
            const CellId c = cell_at(lane, c2);
            if (c == kInvalidId) continue;
            sub.at(lane - lane0, c2 - c0) = c;
            ++filled;
          }
        }
        if (filled >= 4) out.groups.push_back(std::move(sub));
      }
    }
  }
  return out;
}

}  // namespace dp::core
