#pragma once

#include "netlist/design.hpp"
#include "netlist/structure.hpp"

namespace dp::core {

struct PartitionOptions {
  /// Maximum estimated group width as a fraction of the core width. A
  /// group whose aligned layout would be wider is split into consecutive
  /// stage spans (the classic "snaked" datapath floorplan). Kept below
  /// one third of the core so the block packer can fit three plates per
  /// row band -- wider plates fragment the rows they cross and quickly
  /// make the remaining windows infeasible.
  double max_width_fraction = 0.28;
  /// Maximum lanes as a fraction of the core row count; taller groups are
  /// split into lane bands.
  double max_lane_fraction = 0.8;
};

/// Split extracted groups into geometrically feasible sub-arrays.
///
/// Extraction happily merges chained units (eight cascaded ALUs become one
/// 32 x 64 array); aligning such a group is infeasible when its natural
/// width exceeds the core, which makes the global placer thrash. This pass
/// bounds every group's aligned footprint; alignment, legalization, and
/// detailed placement all operate on the partitioned annotation.
netlist::StructureAnnotation partition_groups(
    const netlist::Netlist& nl, const netlist::Design& design,
    const netlist::StructureAnnotation& annotation,
    const PartitionOptions& options = {});

}  // namespace dp::core
