#include "core/report_json.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace dp::core {

namespace {

/// Doubles with enough digits to round-trip; NaN/inf become null (JSON
/// has no literal for them).
void append_number(std::ostringstream& out, double v) {
  if (!std::isfinite(v)) {
    out << "null";
    return;
  }
  const auto old_precision = out.precision(17);
  out << v;
  out.precision(old_precision);
}

void append_timing(std::ostringstream& out, const timing::TimingReport& t,
                   const netlist::Netlist* nl) {
  out << "{\"wns\":";
  append_number(out, t.wns);
  out << ",\"tns\":";
  append_number(out, t.tns);
  out << ",\"clock_period\":";
  append_number(out, t.clock_period);
  out << ",\"max_arrival\":";
  append_number(out, t.max_arrival);
  out << ",\"endpoints\":" << t.endpoints
      << ",\"violations\":" << t.violations << ",\"levels\":" << t.levels
      << ",\"loop_pins\":" << t.loop_pins << ",\"critical_path\":[";
  for (std::size_t i = 0; i < t.critical_path.size(); ++i) {
    const timing::PathNode& node = t.critical_path[i];
    if (i > 0) out << ",";
    out << "{\"pin\":" << node.pin;
    if (nl != nullptr && node.pin < nl->num_pins()) {
      const netlist::Pin& pin = nl->pin(node.pin);
      const netlist::CellType& type = nl->cell_type(pin.cell);
      out << ",\"cell\":\"" << json_escape(nl->cell(pin.cell).name)
          << "\",\"port\":\""
          << (pin.port < type.pins.size()
                  ? json_escape(type.pins[pin.port].name)
                  : std::to_string(pin.port))
          << "\"";
    }
    out << ",\"arrival\":";
    append_number(out, node.arrival);
    out << "}";
  }
  out << "]}";
}

void append_congestion(std::ostringstream& out,
                       const route::CongestionReport& c) {
  out << "{\"bins\":" << c.bins << ",\"peak\":";
  append_number(out, c.peak);
  out << ",\"peak_h\":";
  append_number(out, c.peak_h);
  out << ",\"peak_v\":";
  append_number(out, c.peak_v);
  out << ",\"overflow_total\":";
  append_number(out, c.overflow_total);
  out << ",\"overflow_frac\":";
  append_number(out, c.overflow_frac);
  out << ",\"overflowed_bins\":" << c.overflowed_bins << ",\"ace\":{\"0.5\":";
  append_number(out, c.ace_0_5);
  out << ",\"1\":";
  append_number(out, c.ace_1);
  out << ",\"2\":";
  append_number(out, c.ace_2);
  out << ",\"5\":";
  append_number(out, c.ace_5);
  out << "}}";
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string report_to_json(const PlaceReport& report,
                           const netlist::Netlist* nl) {
  std::ostringstream out;
  out << "{\"schema_version\":" << kReportJsonSchemaVersion
      << ",\"hpwl\":{\"gp\":";
  append_number(out, report.hpwl_gp);
  out << ",\"pre_refine\":";
  append_number(out, report.hpwl_pre_refine);
  out << ",\"first_legal\":";
  append_number(out, report.hpwl_first_legal);
  out << ",\"legal\":";
  append_number(out, report.hpwl_legal);
  out << ",\"final\":";
  append_number(out, report.hpwl_final);
  out << "},\"datapath_hpwl\":{\"gp\":";
  append_number(out, report.datapath_hpwl_gp);
  out << ",\"final\":";
  append_number(out, report.datapath_hpwl_final);
  out << "},\"alignment\":{\"gp_rms\":";
  append_number(out, report.alignment_gp);
  out << ",\"final_rms\":";
  append_number(out, report.alignment.rms_misalignment);
  out << ",\"worst_group\":";
  append_number(out, report.alignment.worst_group);
  out << "},\"runtime\":{\"extract\":";
  append_number(out, report.t_extract);
  out << ",\"gp\":";
  append_number(out, report.t_gp);
  out << ",\"congestion\":";
  append_number(out, report.t_congestion);
  out << ",\"timing\":";
  append_number(out, report.t_timing);
  out << ",\"legal\":";
  append_number(out, report.t_legal);
  out << ",\"detail\":";
  append_number(out, report.t_detail);
  out << ",\"total\":";
  append_number(out, report.t_total);
  out << "},\"legality\":{\"legal\":"
      << (report.legality.legal() ? "true" : "false")
      << ",\"overlaps\":" << report.legality.overlaps
      << ",\"off_row\":" << report.legality.off_row
      << ",\"off_site\":" << report.legality.off_site
      << ",\"out_of_core\":" << report.legality.out_of_core
      << ",\"total_overlap_area\":";
  append_number(out, report.legality.total_overlap_area);
  out << ",\"overlap_truncated\":"
      << (report.legality.overlap_truncated ? "true" : "false")
      << "},\"structure\":{\"groups\":" << report.structure.groups.size()
      << ",\"cells\":" << report.structure.total_cells()
      << ",\"extraction_seeds\":" << report.extraction_seeds
      << ",\"legal_blocks\":" << report.legal_blocks
      << ",\"legal_fallback\":" << report.legal_fallback
      << "},\"gp\":{\"final_overflow\":";
  append_number(out, report.gp_result.final_overflow);
  out << ",\"outer_iterations\":" << report.gp_result.trace.size()
      << ",\"cg_iterations\":" << report.gp_result.total_cg_iterations
      << ",\"evaluations\":" << report.gp_result.total_evaluations
      << "},\"congestion\":";
  if (report.congestion_measured) {
    out << "{\"gp\":";
    append_congestion(out, report.congestion_gp);
    out << ",\"final\":";
    append_congestion(out, report.congestion);
    out << ",\"refine_iters\":" << report.congestion_refine_iters
        << ",\"inflated_cells\":" << report.congestion_inflated_cells << "}";
  } else {
    out << "null";
  }
  out << ",\"timing\":";
  if (report.timing_measured) {
    out << "{\"gp\":";
    append_timing(out, report.timing_gp, nl);
    out << ",\"final\":";
    append_timing(out, report.timing, nl);
    out << ",\"reweights\":" << report.timing_reweights << "}";
  } else {
    out << "null";
  }
  out << ",\"checks\":{\"run\":" << report.checks.size() << ",\"errors\":"
      << report.diagnostics.num_errors()
      << ",\"warnings\":" << report.diagnostics.num_warnings()
      << ",\"ok\":" << (report.checks_ok() ? "true" : "false") << "}}";
  return out.str();
}

}  // namespace dp::core
