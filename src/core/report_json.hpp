#pragma once

#include <string>

#include "core/structure_placer.hpp"

namespace dp::core {

/// Serialize a PlaceReport as a JSON object for scripted experiment
/// harvesting (`dpplace_cli --report-json`). Covers the quality numbers
/// (HPWL per stage, datapath HPWL, alignment), stage runtimes, legality
/// (including the overlap-sweep truncation flag), structure summary,
/// congestion reports, and the phase-check summaries. Numbers are emitted
/// with enough digits to round-trip doubles.
std::string report_to_json(const PlaceReport& report);

}  // namespace dp::core
