#pragma once

#include <string>

#include "core/structure_placer.hpp"

namespace dp::core {

/// Schema version of report_to_json()'s output, emitted as its first
/// key. Bump on any breaking change (renamed or retyped keys), so
/// harvesting scripts can fail fast on stale expectations.
inline constexpr int kReportJsonSchemaVersion = 1;

/// Escape a string for embedding in a JSON double-quoted literal:
/// backslash, quote, and every control character below 0x20 (the ones
/// JSON forbids raw) are encoded.
std::string json_escape(const std::string& s);

/// Serialize a PlaceReport as a JSON object for scripted experiment
/// harvesting (`dpplace_cli --report-json`). Covers the quality numbers
/// (HPWL per stage, datapath HPWL, alignment), stage runtimes, legality
/// (including the overlap-sweep truncation flag), structure summary,
/// congestion and timing reports, and the phase-check summaries. Numbers
/// are emitted with enough digits to round-trip doubles; the leading
/// `schema_version` key carries kReportJsonSchemaVersion.
/// `nl`, when given, enriches the timing critical-path trace with cell
/// and port names (escaped via json_escape); without it the trace
/// carries pin ids only.
std::string report_to_json(const PlaceReport& report,
                           const netlist::Netlist* nl = nullptr);

}  // namespace dp::core
