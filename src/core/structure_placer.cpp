#include "core/structure_placer.hpp"

#include <algorithm>
#include <limits>
#include <memory>

#include "core/overlap.hpp"
#include "core/partition.hpp"

#include "legal/repair.hpp"
#include "route/congestion.hpp"
#include "util/logger.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace dp::core {

StructurePlacer::StructurePlacer(const netlist::Netlist& nl,
                                 const netlist::Design& design,
                                 PlacerConfig config)
    : nl_(&nl), design_(&design), config_(std::move(config)) {}

PlaceReport StructurePlacer::place(netlist::Placement& pl,
                                   const netlist::StructureAnnotation* truth) {
  PlaceReport report;
  util::Timer total;
  util::Timer stage;

  // Every GpOptions copy taken below inherits the pipeline-level thread
  // count.
  config_.gp.num_threads = config_.num_threads;

  // Timing graph + analyzer, shared by the GP feedback hook, the detail
  // move guard, and the report measurements. The analyzer owns its own
  // pool: the GP outer hook runs outside the placer's fork-join regions,
  // so the two pools never nest.
  std::unique_ptr<timing::TimingGraph> timing_graph;
  std::unique_ptr<timing::TimingAnalyzer> timing_analyzer;
  if (config_.timing.enabled()) {
    util::Timer t;
    timing_graph = std::make_unique<timing::TimingGraph>(*nl_);
    timing_analyzer = std::make_unique<timing::TimingAnalyzer>(
        *timing_graph, config_.timing.model);
    timing_analyzer->set_thread_pool(
        std::make_shared<util::ThreadPool>(config_.num_threads));
    if (timing_graph->has_loops()) {
      util::Logger::warn(
          "timing: %zu pin(s) on or behind combinational loops excluded "
          "from analysis",
          timing_graph->loop_pins().size());
    }
    report.t_timing += t.seconds();
  }
  std::vector<double> timing_scale, timing_scale_ema;
  auto install_timing_hook = [&](gp::GlobalPlacer& placer,
                                 double strength_mult) {
    if (!config_.timing.driven || timing_analyzer == nullptr) return;
    placer.set_outer_hook([&, strength_mult](std::size_t outer,
                                             const netlist::Placement& cur,
                                             gp::SmoothWirelength& wl) {
      (void)outer;
      util::Timer t;
      timing_analyzer->analyze(cur);
      timing_analyzer->net_weight_scale(
          config_.timing.weight * strength_mult, config_.timing.crit_floor,
          timing_scale);
      // Smooth across outer iterations: criticalities jump around while
      // the placement is still fluid, and chasing each snapshot makes
      // the objective non-stationary (costly in HPWL for little WNS).
      constexpr double kBlend = 0.5;
      if (timing_scale_ema.size() != timing_scale.size()) {
        timing_scale_ema = timing_scale;
      } else {
        for (std::size_t n = 0; n < timing_scale.size(); ++n) {
          timing_scale_ema[n] = (1.0 - kBlend) * timing_scale_ema[n] +
                                kBlend * timing_scale[n];
        }
      }
      wl.set_net_weight_scale(timing_scale_ema);
      ++report.timing_reweights;
      report.t_timing += t.seconds();
    });
  };

  // Phase hooks: after each phase, run the rule families that phase is
  // responsible for, so corruption is caught where it was introduced. The
  // input placement is snapshotted as the fixed-cell immobility baseline.
  netlist::Placement fixed_reference;
  if (config_.check_level != check::CheckLevel::kOff) fixed_reference = pl;
  auto run_phase_checks = [&](const char* phase, unsigned categories,
                              double tolerance) {
    if (config_.check_level == check::CheckLevel::kOff) return;
    check::CheckContext ctx;
    ctx.netlist = nl_;
    ctx.design = design_;
    ctx.placement = &pl;
    ctx.structure =
        report.structure.groups.empty() ? nullptr : &report.structure;
    ctx.fixed_reference = &fixed_reference;
    ctx.tolerance = tolerance;
    const check::CheckSummary summary = check::run_checks(
        ctx, report.diagnostics, config_.check_level, categories);
    report.checks.push_back({phase, summary});
    if (summary.errors > 0) {
      util::Logger::warn("check[%s]: %zu error(s), %zu warning(s)", phase,
                         summary.errors, summary.warnings);
    }
  };

  // ---- phase 1: datapath structure ---------------------------------------
  if (config_.structure_aware) {
    if (config_.use_truth_structure && truth != nullptr) {
      report.structure = *truth;
    } else {
      auto ext = extract::extract_structures(*nl_, config_.extraction);
      report.structure = std::move(ext.annotation);
      report.extraction_seeds = ext.seeds_tried;
      report.extraction_seconds = ext.seconds;
    }
    report.structure =
        partition_groups(*nl_, *design_, report.structure, config_.partition);
    util::Logger::info("structure: %zu groups, %zu cells",
                       report.structure.groups.size(),
                       report.structure.total_cells());
  }
  report.t_extract = stage.seconds();
  run_phase_checks("extract",
                   check::kCatNetlist | check::kCatStructure |
                       check::kCatTiming,
                   1e-6);
  stage.restart();

  // ---- phase 2: global placement ------------------------------------------
  std::unique_ptr<AlignmentPenalty> alignment;
  std::vector<double> density_scale;
  const bool structured =
      config_.structure_aware && !report.structure.groups.empty();

  if (!structured) {
    gp::GlobalPlacer placer(*nl_, *design_, config_.gp);
    install_timing_hook(placer, 1.0);
    report.gp_result = placer.place(pl);
  } else {
    // Datapath cells are shrunk in the density model (they will legally
    // pack solid), so settled plates are density-neutral.
    double dp_scale = config_.datapath_density_scale;
    if (dp_scale <= 0.0) {
      dp_scale = nl_->movable_area() / design_->core().area();
    }
    density_scale.assign(nl_->num_cells(), 1.0);
    for (const auto& g : report.structure.groups) {
      for (netlist::CellId c : g.cells) {
        if (c != netlist::kInvalidId) density_scale[c] = dp_scale;
      }
    }

    // Phase A: plain spreading down to the activation overflow.
    gp::GpOptions opt_a = config_.gp;
    opt_a.stop_overflow = std::max(config_.gp.stop_overflow,
                                   config_.alignment_activation_overflow);
    gp::GlobalPlacer phase_a(*nl_, *design_, opt_a);
    phase_a.set_density_area_scale(density_scale);
    install_timing_hook(phase_a, 1.0);
    report.gp_result = phase_a.place(pl);

    // Phase B: alignment on from the start, weight normalized against the
    // wirelength force and doubled each outer iteration so the plates
    // converge to tight ordered arrays instead of stalling at a force
    // equilibrium.
    alignment = std::make_unique<AlignmentPenalty>(*nl_, report.structure,
                                                   *design_);
    gp::GpOptions opt_b = config_.gp;
    opt_b.run_quadratic_init = false;
    opt_b.max_outer = config_.align_outer;
    opt_b.plateau_stall = 0;
    opt_b.gamma_init_bins = 3.0;
    // Attenuated in phase B: the alignment/overlap schedules are
    // normalized against the wirelength force once at the start, and
    // strong reweighting under them makes the steering fight the plate
    // arrays (consistent HPWL blowups on the datapath-heavy designs).
    gp::GlobalPlacer phase_b(*nl_, *design_, opt_b);
    phase_b.set_density_area_scale(density_scale);
    install_timing_hook(phase_b, 0.3);

    // Both structure terms use the same schedule: normalized against the
    // wirelength force on first evaluation, then doubled per outer.
    auto make_schedule = [&pl](gp::GlobalPlacer& owner,
                               const gp::ObjectiveTerm& term, double w) {
      struct ScheduleState {
        bool normalized = false;
        double base = 0.0;
      };
      auto state = std::make_shared<ScheduleState>();
      auto* owner_ptr = &owner;
      auto* term_ptr = &term;
      auto* pl_ptr = &pl;
      return [state, owner_ptr, term_ptr, pl_ptr,
              w](const gp::TermContext& ctx) {
        if (!state->normalized) {
          const auto [wl_norm, term_norm] =
              owner_ptr->probe_norms(*term_ptr, *pl_ptr);
          state->base = term_norm > 0.0 ? w * wl_norm / term_norm : w;
          state->normalized = true;
        }
        const double ramp = std::min<double>(
            4096.0, std::pow(2.0, static_cast<double>(ctx.outer)));
        return state->base * ramp;
      };
    };

    PlateOverlapPenalty plate_overlap(*nl_, report.structure, *design_);
    phase_b.add_term({alignment.get(),
                      make_schedule(phase_b, *alignment,
                                    config_.alignment_weight),
                      "alignment"});
    phase_b.add_term({&plate_overlap,
                      make_schedule(phase_b, plate_overlap,
                                    config_.alignment_weight),
                      "overlap"});
    gp::GpResult res_b = phase_b.place(pl);

    const std::size_t offset = report.gp_result.trace.size();
    for (auto point : res_b.trace) {
      point.outer += offset;
      report.gp_result.trace.push_back(point);
    }
    report.gp_result.final_hpwl = res_b.final_hpwl;
    report.gp_result.final_overflow = res_b.final_overflow;
    report.gp_result.total_cg_iterations += res_b.total_cg_iterations;
    report.gp_result.total_evaluations += res_b.total_evaluations;
    report.gp_result.profile.merge(res_b.profile);
  }
  report.hpwl_gp = report.gp_result.final_hpwl;
  if (util::Logger::level() <= util::LogLevel::kDebug) {
    for (const auto& g : report.structure.groups) {
      geom::Rect box;
      for (netlist::CellId c : g.cells) {
        if (c != netlist::kInvalidId) box.expand(pl[c]);
      }
      util::Logger::debug("post-GP %s: %.1fx%.1f at (%.1f, %.1f)",
                          g.name.c_str(), box.width(), box.height(),
                          box.center().x, box.center().y);
    }
  }
  if (!report.structure.groups.empty()) {
    report.datapath_hpwl_gp = eval::datapath_hpwl(*nl_, pl, report.structure);
    report.alignment_gp =
        eval::alignment_score(*nl_, pl, report.structure).rms_misalignment;
  }
  report.t_gp = stage.seconds();
  if (timing_analyzer != nullptr) {
    util::Timer t;
    report.timing_measured = true;
    report.timing_gp = timing_analyzer->analyze(pl);
    report.t_timing += t.seconds();
    util::Logger::info(
        "timing (gp): wns=%.2f tns=%.2f period=%.2f crit_delay=%.2f "
        "endpoints=%zu",
        report.timing_gp.wns, report.timing_gp.tns,
        report.timing_gp.clock_period, report.timing_gp.max_arrival,
        report.timing_gp.endpoints);
  }
  // Cells are not yet snapped to rows and the optimizer clamps centers
  // (not edges) to the core, so tolerate up to the widest movable cell's
  // half-extent of overhang until legalization pulls everything in.
  if (config_.check_level != check::CheckLevel::kOff) {
    double max_half_extent = 0.0;
    for (netlist::CellId c = 0; c < nl_->num_cells(); ++c) {
      if (nl_->cell(c).fixed) continue;
      max_half_extent = std::max(
          max_half_extent,
          std::max(nl_->cell_width(c), nl_->cell_height(c)) / 2.0);
    }
    run_phase_checks("gp", check::kCatGeometry, max_half_extent + 1e-6);
  }
  stage.restart();

  // ---- phase 2b: congestion estimation + cell-inflation refinement ---------
  report.hpwl_pre_refine = report.hpwl_gp;
  if (config_.congestion.enabled()) {
    const route::CongestionControl& cc = config_.congestion;
    route::CongestionMap cmap(*nl_, *design_, cc.map);
    cmap.set_thread_pool(
        std::make_shared<util::ThreadPool>(config_.num_threads));
    cmap.build(pl);
    report.congestion_measured = true;
    report.congestion_gp = cmap.report();
    util::Logger::info(
        "congestion (gp): peak=%.2f overflow=%.1f%% bins>cap=%zu/%zu",
        report.congestion_gp.peak, report.congestion_gp.overflow_frac * 100.0,
        report.congestion_gp.overflowed_bins,
        report.congestion_gp.bins * report.congestion_gp.bins);

    if (cc.refine) {
      // In the structure-aware flow the datapath plates keep the alignment
      // the GP phase bought: only glue cells inflate and re-spread, the
      // plates act as density obstacles.
      std::vector<bool> eligible(nl_->num_cells(), true);
      if (structured) {
        for (const auto& g : report.structure.groups) {
          for (netlist::CellId c : g.cells) {
            if (c != netlist::kInvalidId) eligible[c] = false;
          }
        }
      }
      std::vector<double> base = density_scale;
      if (base.empty()) base.assign(nl_->num_cells(), 1.0);
      std::vector<double> scale = base;

      // Acceptance is judged on a cheap legalized proxy of each candidate
      // (Abacus on a copy), not on the raw GP placement: legalization can
      // amplify or even invert a GP-stage improvement, and the 1% final-
      // HPWL budget only holds if the guard sees that amplification.
      auto proxy_eval = [&](const netlist::Placement& cand) {
        netlist::Placement copy = cand;
        legal::AbacusLegalizer proxy_legalizer(*nl_, *design_);
        proxy_legalizer.run_all(copy);
        cmap.build(copy);
        return std::make_pair(eval::hpwl(*nl_, copy), cmap.report());
      };
      const auto [proxy_hpwl0, proxy_rep0] = proxy_eval(pl);
      double best_proxy_peak = proxy_rep0.peak;

      route::CongestionReport cur = report.congestion_gp;
      const double hpwl_before = report.hpwl_gp;
      netlist::Placement accepted = pl;
      for (std::size_t iter = 0; iter < cc.max_iters; ++iter) {
        if (cur.peak <= cc.stop_peak) break;
        cmap.build(pl);
        const std::size_t grown = route::inflate_cells(
            *nl_, cmap, pl, cc.inflation, base, eligible, scale);
        if (grown == 0) break;

        gp::GpOptions opt = config_.gp;
        opt.run_quadratic_init = false;
        opt.max_outer = cc.spread_outer;
        opt.plateau_stall = 0;
        opt.gamma_init_bins = 2.0;
        // One-sided density: only bins pushed over the target by the
        // inflated cells spread; everything else stays at its wirelength
        // optimum, which keeps the HPWL price of congestion relief small.
        opt.one_sided_max_density = cc.spread_max_density;
        std::unique_ptr<gp::GlobalPlacer> spreader;
        if (structured) {
          std::vector<bool> mask(nl_->num_cells(), false);
          for (netlist::CellId c = 0; c < nl_->num_cells(); ++c) {
            mask[c] = !nl_->cell(c).fixed && eligible[c];
          }
          spreader = std::make_unique<gp::GlobalPlacer>(
              *nl_, *design_, opt, gp::VarMap(*nl_, mask));
        } else {
          spreader =
              std::make_unique<gp::GlobalPlacer>(*nl_, *design_, opt);
        }
        spreader->set_density_area_scale(scale);
        const gp::GpResult res = spreader->place(pl);
        report.gp_result.profile.merge(res.profile);

        cmap.build(pl);
        const route::CongestionReport after = cmap.report();
        const auto [proxy_hpwl, proxy_rep] = proxy_eval(pl);
        const bool within_budget =
            proxy_hpwl <= proxy_hpwl0 * (1.0 + cc.hpwl_guard) &&
            proxy_rep.peak < best_proxy_peak;
        util::Logger::debug(
            "congestion refine %zu: %zu cells inflated, peak %.2f -> %.2f, "
            "hpwl %.1f -> %.1f, proxy peak %.2f -> %.2f, proxy hpwl "
            "%.1f -> %.1f%s",
            iter + 1, grown, cur.peak, after.peak, hpwl_before,
            res.final_hpwl, best_proxy_peak, proxy_rep.peak, proxy_hpwl0,
            proxy_hpwl, within_budget ? "" : " (over budget, revert)");
        if (after.peak < cur.peak && within_budget) {
          best_proxy_peak = proxy_rep.peak;
          cur = after;
          accepted = pl;
          report.hpwl_gp = res.final_hpwl;
          report.congestion_inflated_cells += grown;
          ++report.congestion_refine_iters;
        } else {
          pl = accepted;
          break;
        }
      }
      pl = accepted;
      if (report.congestion_refine_iters > 0) {
        util::Logger::info(
            "congestion refine: %zu iteration(s), peak %.2f -> %.2f, "
            "gp hpwl %.1f -> %.1f",
            report.congestion_refine_iters, report.congestion_gp.peak,
            cur.peak, hpwl_before, report.hpwl_gp);
      }
    }
  }
  report.t_congestion = stage.seconds();
  stage.restart();

  // ---- phase 3: legalization ------------------------------------------------
  if (config_.structure_aware && alignment != nullptr &&
      config_.legalization == LegalizationMode::kGentle) {
    legal::AbacusLegalizer legalizer(*nl_, *design_);
    legalizer.run_all(pl);
    report.hpwl_first_legal = eval::hpwl(*nl_, pl);
  } else if (config_.structure_aware && alignment != nullptr) {
    std::vector<bool> along_y(report.structure.groups.size());
    for (std::size_t g = 0; g < along_y.size(); ++g) {
      along_y[g] =
          alignment->orientation(g) == GroupOrientation::kBitsAlongY;
    }
    legal::StructureLegalizer legalizer(*nl_, *design_, report.structure,
                                        along_y);
    // Between plate commitment and glue legalization, re-place the glue
    // with a dedicated global placement around the frozen plates: the
    // plates become exact density obstacles and wirelength anchors, so
    // the glue no longer needs to be evicted from plate footprints by the
    // legalizer.
    auto glue_gp = [this, &report](netlist::Placement& pl2,
                                   const std::vector<bool>& frozen) {
      std::vector<bool> mask(nl_->num_cells(), false);
      std::size_t n = 0;
      for (netlist::CellId c = 0; c < nl_->num_cells(); ++c) {
        if (!nl_->cell(c).fixed && !frozen[c]) {
          mask[c] = true;
          ++n;
        }
      }
      if (n == 0) return;
      gp::GpOptions opt = config_.gp;
      // Fresh quadratic start: the glue arrives scrambled by the alignment
      // phase; re-anchoring it to the frozen plates and pads lets the
      // nonlinear solve find a clean arrangement.
      opt.run_quadratic_init = true;
      opt.max_outer = config_.gp.max_outer;
      // The glue starts piled against its anchors; overflow improves only
      // after lambda has ramped for a while, so the plateau stop must be
      // off or it fires immediately.
      opt.plateau_stall = 0;
      // One-sided density: let the glue cluster at its wirelength optimum
      // in the channels between plates instead of being spread uniformly
      // over every pocket of free space.
      opt.one_sided_max_density = 0.8;
      const double before = eval::hpwl(*nl_, pl2);
      gp::GlobalPlacer glue_placer(*nl_, *design_, opt,
                                   gp::VarMap(*nl_, mask));
      const auto res = glue_placer.place(pl2);
      report.gp_result.profile.merge(res.profile);
      util::Logger::debug(
          "glue gp: %zu cells, hpwl %.1f -> %.1f (%zu outers, overflow %.3f)",
          n, before, res.final_hpwl, res.trace.size(), res.final_overflow);
    };
    auto stats = legalizer.run(pl, glue_gp);
    if (stats.groups_fallback > 0) {
      util::Logger::warn("structure legalization: %zu groups fell back",
                         stats.groups_fallback);
    }
    report.hpwl_first_legal = eval::hpwl(*nl_, pl);
    report.legal_blocks = stats.groups_placed_as_blocks;
    report.legal_fallback = stats.groups_fallback;
    if (util::Logger::level() <= util::LogLevel::kDebug) {
      util::Logger::debug("legal1: hpwl=%.1f slice_disp=%.2f rest_disp=%.2f",
                          report.hpwl_first_legal,
                          stats.slices.avg_displacement(),
                          stats.rest.avg_displacement());
      for (const auto& g : report.structure.groups) {
        geom::Rect box;
        for (netlist::CellId c : g.cells) {
          if (c != netlist::kInvalidId) box.expand(pl[c]);
        }
        util::Logger::debug("post-legal1 %s: %.1fx%.1f at (%.1f, %.1f)",
                            g.name.c_str(), box.width(), box.height(),
                            box.center().x, box.center().y);
      }
    }

    if (config_.refine) {
      // ---- phase 3b: rigid-body refinement ---------------------------------
      // Each legalized plate becomes one variable; a short placement run
      // re-optimizes plate positions and glue together, then a second
      // structure legalization snaps the (barely moved) plates back onto
      // rows. This recovers the wirelength disturbed by plate compaction.
      std::vector<std::vector<netlist::CellId>> bodies;
      bodies.reserve(report.structure.groups.size());
      for (const auto& g : report.structure.groups) {
        std::vector<netlist::CellId> body;
        for (netlist::CellId c : g.cells) {
          if (c != netlist::kInvalidId) body.push_back(c);
        }
        bodies.push_back(std::move(body));
      }
      gp::GpOptions refine_opt = config_.gp;
      refine_opt.run_quadratic_init = false;
      refine_opt.max_outer = config_.refine_outer;
      refine_opt.gamma_init_bins = 2.0;
      gp::GlobalPlacer refiner(*nl_, *design_, refine_opt,
                               gp::VarMap(*nl_, pl, bodies));
      if (!density_scale.empty()) {
        refiner.set_density_area_scale(density_scale);
      }
      // Keep the rigid plates from re-overlapping while they move.
      PlateOverlapPenalty refine_overlap(*nl_, report.structure, *design_);
      struct RefState {
        bool normalized = false;
        double base = 0.0;
      };
      auto ref_state = std::make_shared<RefState>();
      auto* refiner_ptr = &refiner;
      auto* overlap_ptr = &refine_overlap;
      auto* pl_ptr = &pl;
      const double w = config_.alignment_weight;
      refiner.add_term(
          {overlap_ptr,
           [ref_state, refiner_ptr, overlap_ptr, pl_ptr,
            w](const gp::TermContext& ctx) {
             if (!ref_state->normalized) {
               const auto [wl_norm, term_norm] =
                   refiner_ptr->probe_norms(*overlap_ptr, *pl_ptr);
               ref_state->base =
                   term_norm > 0.0 ? w * wl_norm / term_norm : w;
               ref_state->normalized = true;
             }
             return ref_state->base *
                    std::min<double>(
                        4096.0,
                        std::pow(2.0, static_cast<double>(ctx.outer)));
           },
           "overlap"});
      const gp::GpResult refine_res = refiner.place(pl);
      report.gp_result.profile.merge(refine_res.profile);

      legal::StructureLegalizer legalizer2(*nl_, *design_, report.structure,
                                           along_y);
      stats = legalizer2.run(pl);
      if (stats.groups_fallback > 0) {
        util::Logger::warn("refine legalization: %zu groups fell back",
                           stats.groups_fallback);
      }
    }
  } else if (config_.baseline_legalizer == BaselineLegalizer::kAbacus) {
    legal::AbacusLegalizer legalizer(*nl_, *design_);
    legalizer.run_all(pl);
  } else {
    legal::TetrisLegalizer legalizer(*nl_, *design_);
    legalizer.run_all(pl);
  }
  // Legality guarantee: whatever mode ran, overlaps and off-grid cells
  // are ripped up and re-placed into real free space.
  legal::repair_legality(*nl_, *design_, pl);
  if (util::Logger::level() <= util::LogLevel::kDebug) {
    const auto lr = eval::check_legality(*nl_, *design_, pl);
    util::Logger::debug("post-repair legality: ov=%zu row=%zu site=%zu out=%zu",
                        lr.overlaps, lr.off_row, lr.off_site, lr.out_of_core);
  }
  report.hpwl_legal = eval::hpwl(*nl_, pl);
  report.t_legal = stage.seconds();
  run_phase_checks("legal", check::kCatGeometry | check::kCatLegality, 1e-6);
  stage.restart();

  // ---- phase 4: detailed placement -----------------------------------------
  // Timing-driven: analyze the legalized placement and veto detail moves
  // whose weighted extra wire delay on critical nets exceeds the
  // tolerance. Criticalities are frozen at the post-legal analysis (the
  // detailer moves cells less than a row on average, so re-analysis per
  // move would buy little for its cost).
  detail::DetailOptions detail_opt = config_.detail;
  if (config_.timing.driven && timing_analyzer != nullptr) {
    util::Timer t;
    timing_analyzer->analyze(pl);
    report.t_timing += t.seconds();
    const double crit_floor = config_.timing.crit_floor;
    const double tolerance = config_.timing.guard_tolerance;
    const double per_unit = config_.timing.model.wire_delay_per_unit;
    detail_opt.move_guard =
        [this, &pl, analyzer = timing_analyzer.get(), crit_floor, tolerance,
         per_unit](std::span<const netlist::CellId> cells,
                   std::span<const geom::Point> centers) {
          const std::span<const double> crit = analyzer->net_criticality();
          auto moved_index = [&](netlist::CellId c) -> std::ptrdiff_t {
            for (std::size_t k = 0; k < cells.size(); ++k) {
              if (cells[k] == c) return static_cast<std::ptrdiff_t>(k);
            }
            return -1;
          };
          // Weighted wire-delay delta over the critical nets incident to
          // the moved cells (each net scored once).
          double delta = 0.0;
          std::vector<netlist::NetId> seen;
          for (const netlist::CellId c : cells) {
            for (const netlist::PinId p : nl_->cell(c).pins) {
              const netlist::NetId n = nl_->pin(p).net;
              if (n == netlist::kInvalidId || crit[n] < crit_floor) continue;
              if (std::find(seen.begin(), seen.end(), n) != seen.end()) {
                continue;
              }
              seen.push_back(n);
              const auto& net_pins = nl_->net(n).pins;
              if (net_pins.size() < 2) continue;
              const double inf = std::numeric_limits<double>::infinity();
              double olx = inf, ohx = -inf, oly = inf, ohy = -inf;
              double nlx = inf, nhx = -inf, nly = inf, nhy = -inf;
              for (const netlist::PinId q : net_pins) {
                const auto& pin = nl_->pin(q);
                const geom::Point old{pl[pin.cell].x + pin.offset_x,
                                      pl[pin.cell].y + pin.offset_y};
                olx = std::min(olx, old.x);
                ohx = std::max(ohx, old.x);
                oly = std::min(oly, old.y);
                ohy = std::max(ohy, old.y);
                geom::Point cand = old;
                const std::ptrdiff_t k = moved_index(pin.cell);
                if (k >= 0) {
                  cand = {centers[static_cast<std::size_t>(k)].x +
                              pin.offset_x,
                          centers[static_cast<std::size_t>(k)].y +
                              pin.offset_y};
                }
                nlx = std::min(nlx, cand.x);
                nhx = std::max(nhx, cand.x);
                nly = std::min(nly, cand.y);
                nhy = std::max(nhy, cand.y);
              }
              const double d_hpwl =
                  ((nhx - nlx) + (nhy - nly)) - ((ohx - olx) + (ohy - oly));
              delta += crit[n] * per_unit * d_hpwl;
            }
          }
          return delta <= tolerance + 1e-12;
        };
  }
  detail::DetailedPlacer detailer(*nl_, *design_);
  if (config_.structure_aware && alignment != nullptr) {
    std::vector<bool> along_y(report.structure.groups.size());
    for (std::size_t g = 0; g < along_y.size(); ++g) {
      along_y[g] =
          alignment->orientation(g) == GroupOrientation::kBitsAlongY;
    }
    report.detail_stats = detailer.run_structured(pl, report.structure,
                                                  along_y, detail_opt);
  } else {
    report.detail_stats = detailer.run(pl, detail_opt);
  }
  report.t_detail = stage.seconds();
  run_phase_checks("detail", check::kCatGeometry | check::kCatLegality, 1e-6);

  // ---- reporting -------------------------------------------------------------
  report.hpwl_final = eval::hpwl(*nl_, pl);
  report.legality = eval::check_legality(*nl_, *design_, pl);
  if (timing_analyzer != nullptr) {
    util::Timer t;
    report.timing = timing_analyzer->analyze(pl);
    report.t_timing += t.seconds();
    util::Logger::info(
        "timing (final): wns=%.2f tns=%.2f period=%.2f crit_delay=%.2f "
        "violations=%zu/%zu",
        report.timing.wns, report.timing.tns, report.timing.clock_period,
        report.timing.max_arrival, report.timing.violations,
        report.timing.endpoints);
  }
  if (config_.congestion.enabled()) {
    route::CongestionMap cmap(*nl_, *design_, config_.congestion.map);
    cmap.set_thread_pool(
        std::make_shared<util::ThreadPool>(config_.num_threads));
    cmap.build(pl);
    report.congestion = cmap.report();
  }
  const netlist::StructureAnnotation* for_eval =
      !report.structure.groups.empty() ? &report.structure : truth;
  if (for_eval != nullptr) {
    report.datapath_hpwl_final = eval::datapath_hpwl(*nl_, pl, *for_eval);
    report.alignment = eval::alignment_score(*nl_, pl, *for_eval);
  }
  report.t_total = total.seconds();
  return report;
}

}  // namespace dp::core
