#pragma once

#include <optional>

#include "check/rules.hpp"
#include "core/alignment.hpp"
#include "core/partition.hpp"
#include "detail/detailed_placer.hpp"
#include "eval/metrics.hpp"
#include "extract/extractor.hpp"
#include "extract/metrics.hpp"
#include "gp/global_placer.hpp"
#include "legal/abacus.hpp"
#include "legal/structure_legal.hpp"
#include "legal/tetris.hpp"
#include "route/inflation.hpp"
#include "timing/timing_analyzer.hpp"

namespace dp::core {

enum class BaselineLegalizer { kAbacus, kTetris };

/// How the structure-aware flow legalizes.
enum class LegalizationMode {
  /// Template blocks: every group becomes a perfect rectangular array
  /// (plate packing + glue placement around frozen plates). Maximum
  /// regularity; can cost wirelength on designs dominated by long chains.
  kStructured,
  /// Gentle: plain Abacus legalization of the alignment-shaped global
  /// placement. Alignment is preserved approximately (cells move less
  /// than a row on average), wirelength stays close to the global result.
  kGentle,
};

/// Configuration of the full placement pipeline.
struct PlacerConfig {
  /// Master switch: false = structure-oblivious baseline flow
  /// (the NTUplace3-style placer alone), true = the paper's flow.
  bool structure_aware = true;

  gp::GpOptions gp;
  extract::ExtractOptions extraction;
  detail::DetailOptions detail;
  PartitionOptions partition;

  /// Worker threads for every global-placement phase's gradient kernels
  /// (0 = hardware concurrency). Copied into `gp.num_threads` at the
  /// start of place(); results are bitwise identical for any value (see
  /// gp::GpOptions::num_threads).
  std::size_t num_threads = 1;

  /// Weight of the alignment penalty once activated. Swept by the
  /// reconstructed Fig. 5 ablation.
  double alignment_weight = 0.5;
  /// Density-model area factor for datapath cells (macro-shrink): a plate
  /// packs solid, so its cells are shrunk to the core utilization so the
  /// settled plate is density-neutral. 0 = auto (movable area / core area).
  double datapath_density_scale = 0.0;
  /// The alignment term activates once density overflow first drops below
  /// this threshold (aligning before cells are spread is wasted work):
  /// phase A of the global placement spreads plainly down to this
  /// overflow, then phase B runs with the alignment term on.
  double alignment_activation_overflow = 0.5;
  /// Outer iterations of the alignment phase (phase B). The alignment
  /// weight doubles each outer, so this bounds the total ramp.
  std::size_t align_outer = 12;

  /// Use a provided ground-truth annotation instead of running extraction
  /// (extraction-oracle ablation).
  bool use_truth_structure = false;

  /// Legalization style of the structure-aware flow (see LegalizationMode).
  /// Gentle matches the paper's flow (alignment inside the analytical
  /// placer, conventional legalization); the template-block mode is this
  /// library's stricter extension, exercised by the ablation benches.
  LegalizationMode legalization = LegalizationMode::kGentle;

  /// Rigid-body refinement (ablation): after legalization, rerun a short
  /// global placement in which every datapath group is one rigid plate
  /// and glue stays free, then legalize again. The default pipeline
  /// already re-places glue around frozen plates, which supersedes this.
  bool refine = false;
  std::size_t refine_outer = 10;

  /// Legalizer for the baseline flow. Abacus (default) is the stronger
  /// baseline; Tetris matches what the structure flow uses for glue.
  BaselineLegalizer baseline_legalizer = BaselineLegalizer::kAbacus;

  /// Invariant checking between pipeline phases (see check::run_checks):
  /// kOff = no checking (default), kCheap = the linear-time rules after
  /// every phase, kFull = the whole catalog including the overlap sweep.
  /// Findings land in PlaceReport::checks / PlaceReport::diagnostics, so
  /// corruption is caught at the phase that introduced it.
  check::CheckLevel check_level = check::CheckLevel::kOff;

  /// Routing-congestion estimation and the optional post-GP cell-inflation
  /// refinement (see route::CongestionControl). Off by default; with
  /// `measure` set, PlaceReport::congestion_gp / congestion are filled;
  /// with `refine` set, overflowed bins drive cell inflation and a short
  /// density re-spread before legalization. In the structure-aware flow
  /// only glue cells are inflated/re-spread -- datapath plates keep the
  /// alignment the GP phase bought.
  route::CongestionControl congestion;

  /// Static timing analysis and the timing-driven feedback loop (see
  /// timing::TimingControl). Off by default; with `measure` set,
  /// PlaceReport::timing_gp / timing are filled; with `driven` set, net
  /// criticality re-weights the smooth wirelength each GP outer iteration
  /// and a WNS-proxy guard filters detailed-placement moves.
  timing::TimingControl timing;
};

/// Invariant-check outcome of one pipeline phase hook.
struct PhaseCheck {
  std::string phase;  ///< "extract", "gp", "legal" or "detail"
  check::CheckSummary summary;
};

/// Per-stage runtimes and quality of one placement run.
struct PlaceReport {
  // Wirelength after each stage.
  double hpwl_gp = 0.0;
  double hpwl_legal = 0.0;
  double hpwl_final = 0.0;
  /// HPWL over nets touching (annotated) datapath cells.
  double datapath_hpwl_gp = 0.0;
  double datapath_hpwl_final = 0.0;
  /// Alignment RMS after global placement (before legalization snaps it).
  double alignment_gp = 0.0;

  // Stage runtimes (seconds).
  double t_extract = 0.0;
  double t_gp = 0.0;
  double t_congestion = 0.0;  ///< estimation + refinement (0 when off)
  double t_legal = 0.0;
  double t_detail = 0.0;
  double t_timing = 0.0;  ///< all timing analyses (0 when off)
  double t_total = 0.0;

  gp::GpResult gp_result;
  detail::DetailStats detail_stats;
  /// Structure legalization outcome (structure-aware flow only).
  std::size_t legal_blocks = 0;
  std::size_t legal_fallback = 0;
  double hpwl_first_legal = 0.0;  ///< before the rigid-body refinement
  eval::LegalityReport legality;
  /// Alignment quality measured against the annotation the placer used.
  eval::AlignmentScore alignment;

  /// The structure annotation used (extracted, or truth if configured);
  /// empty in the baseline flow.
  netlist::StructureAnnotation structure;
  std::size_t extraction_seeds = 0;
  double extraction_seconds = 0.0;

  /// Routing congestion (filled when PlacerConfig::congestion is
  /// enabled): after global placement (before any congestion-aware
  /// refinement) and on the final detailed placement.
  bool congestion_measured = false;
  route::CongestionReport congestion_gp;
  route::CongestionReport congestion;
  /// Cell-inflation refinement outcome (when congestion.refine is set).
  std::size_t congestion_refine_iters = 0;
  std::size_t congestion_inflated_cells = 0;
  /// GP-stage HPWL before the refinement loop touched the placement
  /// (== hpwl_gp when refinement is off or never triggered).
  double hpwl_pre_refine = 0.0;

  /// Static timing (filled when PlacerConfig::timing is enabled): after
  /// global placement and on the final detailed placement.
  bool timing_measured = false;
  timing::TimingReport timing_gp;
  timing::TimingReport timing;
  /// Criticality reweights applied across all GP outer iterations
  /// (timing-driven mode only).
  std::size_t timing_reweights = 0;

  /// Phase-hook check results, in pipeline order (empty when
  /// PlacerConfig::check_level == kOff).
  std::vector<PhaseCheck> checks;
  /// The diagnostics all phase hooks reported into.
  check::DiagnosticSink diagnostics;

  /// True iff no phase hook reported an error.
  bool checks_ok() const { return diagnostics.ok(); }
};

/// The complete structure-aware placement pipeline of the paper:
/// extraction -> alignment-augmented analytical global placement ->
/// structure-preserving legalization -> structure-aware detailed
/// placement. With `structure_aware = false` it degrades to the plain
/// analytical flow used as the baseline in every experiment.
class StructurePlacer {
 public:
  StructurePlacer(const netlist::Netlist& nl, const netlist::Design& design,
                  PlacerConfig config = {});

  /// Run the pipeline. `pl` must hold fixed-cell positions; movable
  /// positions are produced. `truth` is consumed only when
  /// `use_truth_structure` is set (and by reports).
  PlaceReport place(netlist::Placement& pl,
                    const netlist::StructureAnnotation* truth = nullptr);

  const PlacerConfig& config() const { return config_; }

 private:
  const netlist::Netlist* nl_;
  const netlist::Design* design_;
  PlacerConfig config_;
};

}  // namespace dp::core
