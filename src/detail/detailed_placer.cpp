#include "detail/detailed_placer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "eval/incremental_hpwl.hpp"
#include "eval/metrics.hpp"
#include "util/logger.hpp"
#include "util/timer.hpp"

namespace dp::detail {

using netlist::CellId;
using netlist::kInvalidId;
using netlist::NetId;
using netlist::PinId;

namespace {

constexpr int kNoUnit = -1;

/// One occupied interval of a row: a single free cell, or a whole datapath
/// slice treated as an indivisible pseudo-cell.
struct Entry {
  double lx = 0.0;
  double width = 0.0;
  CellId cell = kInvalidId;  ///< valid iff unit == kNoUnit
  int unit = kNoUnit;

  double hx() const { return lx + width; }
};

/// A datapath row unit: member cells moving rigidly together.
struct Unit {
  std::vector<CellId> cells;
  std::size_t row = 0;
};

/// Engine shared by the plain and structured entry points.
///
/// All candidate moves are scored through eval::IncrementalHpwl: a trial
/// costs O(pins of the moved cells) instead of a full rescan of every
/// incident net, and the per-pass convergence total is the engine's
/// maintained sum (resynced in O(nets) at each pass boundary) instead of
/// a full O(pins) eval::hpwl recompute. Accept thresholds, candidate
/// ordering, and committed coordinates reproduce the historical
/// full-rescan implementation bit for bit at the default options.
class Engine {
 public:
  Engine(const netlist::Netlist& nl, const netlist::Design& design,
         netlist::Placement& pl, const std::vector<Unit>& units,
         const DetailOptions& options)
      : nl_(&nl),
        design_(&design),
        pl_(&pl),
        units_(&units),
        options_(&options),
        inc_(nl, pl),
        moving_epoch_(nl.num_cells(), 0) {
    build_rows();
  }

  DetailStats optimize() {
    DetailStats stats;
    stats.hpwl_before = inc_.resync_total();
    ++profile_.resyncs;
    double current = stats.hpwl_before;
    for (std::size_t pass = 0; pass < options_->max_passes; ++pass) {
      ++stats.passes;
      {
        util::Timer t;
        ++profile_.slide.passes;
        stats.slides += slide_pass();
        profile_.slide.seconds += t.seconds();
      }
      {
        util::Timer t;
        ++profile_.swap.passes;
        stats.swaps += swap_pass();
        profile_.swap.seconds += t.seconds();
      }
      {
        util::Timer t;
        ++profile_.unit_slide.passes;
        stats.slice_slides += unit_slide_pass();
        profile_.unit_slide.seconds += t.seconds();
      }
      const double next = inc_.resync_total();
      ++profile_.resyncs;
      const bool converged =
          current - next <= options_->rel_improvement_floor * current;
      current = next;
      if (converged) break;
    }
    stats.hpwl_after = current;
    profile_.rescans = inc_.rescans();
    stats.profile = profile_;
    return stats;
  }

 private:
  void build_rows() {
    rows_.assign(design_->num_rows(), {});
    std::vector<bool> in_unit(nl_->num_cells(), false);
    for (std::size_t u = 0; u < units_->size(); ++u) {
      const Unit& unit = (*units_)[u];
      if (unit.cells.empty()) continue;
      double lo = std::numeric_limits<double>::infinity(), hi = -lo;
      for (CellId c : unit.cells) {
        in_unit[c] = true;
        lo = std::min(lo, (*pl_)[c].x - nl_->cell_width(c) / 2.0);
        hi = std::max(hi, (*pl_)[c].x + nl_->cell_width(c) / 2.0);
      }
      const std::size_t r = design_->nearest_row((*pl_)[unit.cells[0]].y);
      rows_[r].push_back({lo, hi - lo, kInvalidId, static_cast<int>(u)});
    }
    for (CellId c = 0; c < nl_->num_cells(); ++c) {
      if (nl_->cell(c).fixed || in_unit[c]) continue;
      const double w = nl_->cell_width(c);
      const std::size_t r = design_->nearest_row((*pl_)[c].y);
      rows_[r].push_back({(*pl_)[c].x - w / 2.0, w, c, kNoUnit});
    }
    for (auto& row : rows_) {
      std::sort(row.begin(), row.end(),
                [](const Entry& a, const Entry& b) { return a.lx < b.lx; });
      // Safety net: entries that overlap a predecessor (possible when the
      // incoming placement is not perfectly legal) are removed from the
      // row model -- their cells keep their positions and are never moved,
      // so the detailer cannot make things worse.
      std::vector<Entry> clean;
      clean.reserve(row.size());
      for (const Entry& e : row) {
        if (!clean.empty() && clean.back().hx() > e.lx + 1e-9) continue;
        clean.push_back(e);
      }
      row = std::move(clean);
    }
  }

  /// Breakpoint-median optimal x for a rigid set of cells, where cell k
  /// sits at (X + rel[k]) for block coordinate X. Returns the midpoint of
  /// the optimal interval, or NaN if the set has no external nets.
  double optimal_position(const std::vector<CellId>& cells,
                          const std::vector<double>& rel) {
    // Epoch-stamp the moving set so the membership test inside the pin
    // loop is O(1) instead of a scan of the whole set per pin.
    ++moving_stamp_;
    if (moving_stamp_ == 0) {
      std::fill(moving_epoch_.begin(), moving_epoch_.end(), 0u);
      moving_stamp_ = 1;
    }
    for (CellId c : cells) moving_epoch_[c] = moving_stamp_;

    breakpoints_.clear();
    for (std::size_t k = 0; k < cells.size(); ++k) {
      for (PinId p : nl_->cell(cells[k]).pins) {
        const auto& pin = nl_->pin(p);
        const auto& net_pins = nl_->net(pin.net).pins;
        if (net_pins.size() < 2) continue;
        double lo = std::numeric_limits<double>::infinity(), hi = -lo;
        bool external = false;
        for (PinId q : net_pins) {
          // Skip pins belonging to the moving set.
          if (moving_epoch_[nl_->pin(q).cell] == moving_stamp_) continue;
          const double x = nl_->pin_position(q, *pl_).x;
          lo = std::min(lo, x);
          hi = std::max(hi, x);
          external = true;
        }
        if (!external) continue;
        const double off = rel[k] + pin.offset_x;
        breakpoints_.push_back(lo - off);
        breakpoints_.push_back(hi - off);
      }
    }
    if (breakpoints_.empty()) {
      return std::numeric_limits<double>::quiet_NaN();
    }
    std::sort(breakpoints_.begin(), breakpoints_.end());
    const std::size_t m = breakpoints_.size();
    return (breakpoints_[(m - 1) / 2] + breakpoints_[m / 2]) / 2.0;
  }

  /// Try to move the entry at rows_[r][i] so its left edge becomes new_lx;
  /// keeps order and legality, commits only on HPWL improvement.
  bool try_shift(std::size_t r, std::size_t i, double new_lx,
                 const std::vector<CellId>& moved_cells,
                 PassProfile& prof) {
    auto& row = rows_[r];
    Entry& e = row[i];
    const double lo_bound = i > 0 ? row[i - 1].hx() : design_->row(r).lx;
    const double hi_bound =
        i + 1 < row.size() ? row[i + 1].lx : design_->row(r).hx;
    new_lx = std::clamp(new_lx, lo_bound, hi_bound - e.width);
    new_lx = design_->snap_x(new_lx);
    if (new_lx < lo_bound - 1e-9 || new_lx + e.width > hi_bound + 1e-9) {
      // Snapping pushed us out of the gap; try the inward site.
      new_lx = std::clamp(new_lx, lo_bound, hi_bound - e.width);
      const double site = design_->site_width();
      new_lx = design_->core().lx +
               std::ceil((new_lx - design_->core().lx) / site - 1e-9) * site;
      if (new_lx + e.width > hi_bound + 1e-9) return false;
    }
    const double dx = new_lx - e.lx;
    if (std::abs(dx) < 1e-12) return false;

    ++prof.candidates;
    const auto t = inc_.trial_shift(moved_cells, dx, 0.0);
    if (t.after + 1e-12 < t.before) {
      if (!guard_allows_shift(moved_cells, dx)) {
        inc_.rollback();
        ++profile_.guard_vetoes;
        return false;
      }
      inc_.commit();
      e.lx = new_lx;
      ++prof.accepted;
      paranoid_check();
      return true;
    }
    inc_.rollback();
    return false;
  }

  std::size_t slide_pass() {
    std::size_t moves = 0;
    std::vector<CellId> one(1);
    std::vector<double> rel{0.0};
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      for (std::size_t i = 0; i < rows_[r].size(); ++i) {
        Entry& e = rows_[r][i];
        if (e.unit != kNoUnit) continue;
        one[0] = e.cell;
        rel[0] = nl_->cell_width(e.cell) / 2.0;  // center from left edge
        // optimal_position returns the block coordinate X with the cell
        // center at X + rel[0]; with rel[0] = w/2, X is the left edge.
        const double x_opt = optimal_position(one, rel);
        if (!std::isfinite(x_opt)) continue;
        if (try_shift(r, i, x_opt, one, profile_.slide)) ++moves;
      }
    }
    return moves;
  }

  std::size_t swap_pass() {
    std::size_t moves = 0;
    const std::size_t window =
        std::max<std::size_t>(std::size_t{1}, options_->swap_window);
    std::vector<CellId> pair(2);
    std::vector<geom::Point> centers(2);
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      auto& row = rows_[r];
      for (std::size_t i = 0; i + 1 < row.size(); ++i) {
        if (row[i].unit != kNoUnit) continue;
        // Evaluate every candidate partner in the window and remember the
        // best improving one. With window = 1 this is exactly the
        // classical adjacent-swap pass.
        std::size_t best_j = 0;
        double best_gain = 0.0;
        double best_a_lx = 0.0, best_b_lx = 0.0;
        for (std::size_t j = i + 1; j < row.size() && j <= i + window;
             ++j) {
          const Entry& a = row[i];
          const Entry& b = row[j];
          if (b.unit != kNoUnit) continue;
          double new_a_lx = 0.0, new_b_lx = 0.0;
          if (j == i + 1) {
            // Swap order, preserving the pair's outer extent and inner
            // gap.
            const double gap = b.lx - a.hx();
            new_b_lx = a.lx;
            new_a_lx = a.lx + b.width + gap;
          } else {
            // Distant swap: the entries exchange slots; both must fit the
            // other's gap (left edges are already site-aligned).
            new_b_lx = a.lx;
            new_a_lx = b.lx;
            const double a_slot_hi = row[i + 1].lx;
            const double b_slot_hi =
                j + 1 < row.size() ? row[j + 1].lx : design_->row(r).hx;
            if (new_b_lx + b.width > a_slot_hi + 1e-9) continue;
            if (new_a_lx + a.width > b_slot_hi + 1e-9) continue;
          }
          pair[0] = a.cell;
          pair[1] = b.cell;
          centers[0] = {new_a_lx + a.width / 2.0, (*pl_)[a.cell].y};
          centers[1] = {new_b_lx + b.width / 2.0, (*pl_)[b.cell].y};
          ++profile_.swap.candidates;
          const auto t = inc_.trial_place(pair, centers);
          inc_.rollback();
          if (t.after + 1e-12 < t.before) {
            const double gain = t.before - t.after;
            if (best_j == 0 || gain > best_gain) {
              best_j = j;
              best_gain = gain;
              best_a_lx = new_a_lx;
              best_b_lx = new_b_lx;
            }
          }
        }
        if (best_j != 0) {
          Entry& a = row[i];
          Entry& b = row[best_j];
          pair[0] = a.cell;
          pair[1] = b.cell;
          centers[0] = {best_a_lx + a.width / 2.0, (*pl_)[a.cell].y};
          centers[1] = {best_b_lx + b.width / 2.0, (*pl_)[b.cell].y};
          if (options_->move_guard && !options_->move_guard(pair, centers)) {
            ++profile_.guard_vetoes;
            continue;
          }
          inc_.trial_place(pair, centers);
          inc_.commit();
          a.lx = best_a_lx;
          b.lx = best_b_lx;
          std::swap(row[i], row[best_j]);
          ++moves;
          ++profile_.swap.accepted;
          paranoid_check();
        }
      }
    }
    return moves;
  }

  std::size_t unit_slide_pass() {
    std::size_t moves = 0;
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      for (std::size_t i = 0; i < rows_[r].size(); ++i) {
        Entry& e = rows_[r][i];
        if (e.unit == kNoUnit) continue;
        const Unit& unit = (*units_)[static_cast<std::size_t>(e.unit)];
        // Relative member offsets from the unit's left edge.
        std::vector<CellId> cells = unit.cells;
        std::vector<double> rel(cells.size());
        for (std::size_t k = 0; k < cells.size(); ++k) {
          rel[k] = (*pl_)[cells[k]].x - e.lx;
        }
        const double x_opt = optimal_position(cells, rel);
        if (!std::isfinite(x_opt)) continue;
        if (try_shift(r, i, x_opt, cells, profile_.unit_slide)) ++moves;
      }
    }
    return moves;
  }

  /// Consult the move guard (when set) for a rigid +dx shift of `cells`;
  /// the placement still holds the pre-move positions.
  bool guard_allows_shift(const std::vector<CellId>& cells, double dx) {
    if (!options_->move_guard) return true;
    guard_centers_.resize(cells.size());
    for (std::size_t k = 0; k < cells.size(); ++k) {
      guard_centers_[k] = {(*pl_)[cells[k]].x + dx, (*pl_)[cells[k]].y};
    }
    return options_->move_guard(cells, guard_centers_);
  }

  /// Paranoid cross-check: the maintained total must agree with a full
  /// recompute after every accepted move.
  void paranoid_check() {
    if (!options_->paranoid) return;
    ++profile_.paranoid_checks;
    const double full = eval::hpwl(*nl_, *pl_);
    const double got = inc_.total();
    if (std::abs(got - full) > 1e-9 * std::max(1.0, std::abs(full))) {
      ++profile_.paranoid_failures;
      util::Logger::warn(
          "detail paranoid: incremental total %.17g != recompute %.17g",
          got, full);
    }
  }

  const netlist::Netlist* nl_;
  const netlist::Design* design_;
  netlist::Placement* pl_;
  const std::vector<Unit>* units_;
  const DetailOptions* options_;
  eval::IncrementalHpwl inc_;
  Profile profile_;
  std::vector<std::vector<Entry>> rows_;
  std::vector<double> breakpoints_;
  std::vector<geom::Point> guard_centers_;
  std::vector<std::uint32_t> moving_epoch_;
  std::uint32_t moving_stamp_ = 0;
};

}  // namespace

DetailedPlacer::DetailedPlacer(const netlist::Netlist& nl,
                               const netlist::Design& design)
    : nl_(&nl), design_(&design) {}

DetailStats DetailedPlacer::run(netlist::Placement& pl,
                                const DetailOptions& options) {
  const std::vector<Unit> no_units;
  Engine engine(*nl_, *design_, pl, no_units, options);
  return engine.optimize();
}

DetailStats DetailedPlacer::run_structured(
    netlist::Placement& pl, const netlist::StructureAnnotation& groups,
    const std::vector<bool>& bits_along_y, const DetailOptions& options) {
  std::vector<Unit> units;
  for (std::size_t g = 0; g < groups.groups.size(); ++g) {
    const bool along_y = g < bits_along_y.size() ? bits_along_y[g] : true;
    for (auto& lane : netlist::row_lanes(groups.groups[g], along_y)) {
      if (lane.empty()) continue;
      // A lane may have been folded across several rows by legalization;
      // split it into per-row units.
      std::sort(lane.begin(), lane.end(), [&](CellId a, CellId b) {
        return pl[a].x < pl[b].x;
      });
      std::vector<std::pair<std::size_t, CellId>> by_row;
      by_row.reserve(lane.size());
      for (CellId c : lane) {
        by_row.emplace_back(design_->nearest_row(pl[c].y), c);
      }
      std::stable_sort(
          by_row.begin(), by_row.end(),
          [](const auto& a, const auto& b) { return a.first < b.first; });
      std::size_t start = 0;
      while (start < by_row.size()) {
        std::size_t end = start;
        while (end < by_row.size() &&
               by_row[end].first == by_row[start].first) {
          ++end;
        }
        Unit u;
        u.row = by_row[start].first;
        double sum_w = 0.0, lo = 1e300, hi = -1e300;
        for (std::size_t k = start; k < end; ++k) {
          const CellId c = by_row[k].second;
          u.cells.push_back(c);
          sum_w += nl_->cell_width(c);
          lo = std::min(lo, pl[c].x - nl_->cell_width(c) / 2.0);
          hi = std::max(hi, pl[c].x + nl_->cell_width(c) / 2.0);
        }
        // Only perfectly packed lanes move as rigid units: any internal
        // gap could legally contain a foreign cell, and a bounding-box
        // pseudo-entry spanning it would corrupt the row model. Lanes
        // with gaps (legalization fallbacks, gentle mode, array holes)
        // are handled as individual free cells instead.
        if (hi - lo <= sum_w + 1e-9) {
          units.push_back(std::move(u));
        }
        start = end;
      }
    }
  }
  Engine engine(*nl_, *design_, pl, units, options);
  return engine.optimize();
}

}  // namespace dp::detail
