#include "detail/detailed_placer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "eval/metrics.hpp"

namespace dp::detail {

using netlist::CellId;
using netlist::kInvalidId;
using netlist::NetId;
using netlist::PinId;

namespace {

constexpr int kNoUnit = -1;

/// One occupied interval of a row: a single free cell, or a whole datapath
/// slice treated as an indivisible pseudo-cell.
struct Entry {
  double lx = 0.0;
  double width = 0.0;
  CellId cell = kInvalidId;  ///< valid iff unit == kNoUnit
  int unit = kNoUnit;

  double hx() const { return lx + width; }
};

/// A datapath row unit: member cells moving rigidly together.
struct Unit {
  std::vector<CellId> cells;
  std::size_t row = 0;
};

/// Engine shared by the plain and structured entry points.
class Engine {
 public:
  Engine(const netlist::Netlist& nl, const netlist::Design& design,
         netlist::Placement& pl, const std::vector<Unit>& units)
      : nl_(&nl), design_(&design), pl_(&pl), units_(&units) {
    build_rows();
  }

  DetailStats optimize(const DetailOptions& options) {
    DetailStats stats;
    stats.hpwl_before = eval::hpwl(*nl_, *pl_);
    double current = stats.hpwl_before;
    for (std::size_t pass = 0; pass < options.max_passes; ++pass) {
      ++stats.passes;
      stats.slides += slide_pass();
      stats.swaps += swap_pass();
      stats.slice_slides += unit_slide_pass();
      const double next = eval::hpwl(*nl_, *pl_);
      const bool converged =
          current - next <= options.rel_improvement_floor * current;
      current = next;
      if (converged) break;
    }
    stats.hpwl_after = current;
    return stats;
  }

 private:
  void build_rows() {
    rows_.assign(design_->num_rows(), {});
    std::vector<bool> in_unit(nl_->num_cells(), false);
    for (std::size_t u = 0; u < units_->size(); ++u) {
      const Unit& unit = (*units_)[u];
      if (unit.cells.empty()) continue;
      double lo = std::numeric_limits<double>::infinity(), hi = -lo;
      for (CellId c : unit.cells) {
        in_unit[c] = true;
        lo = std::min(lo, (*pl_)[c].x - nl_->cell_width(c) / 2.0);
        hi = std::max(hi, (*pl_)[c].x + nl_->cell_width(c) / 2.0);
      }
      const std::size_t r = design_->nearest_row((*pl_)[unit.cells[0]].y);
      rows_[r].push_back({lo, hi - lo, kInvalidId, static_cast<int>(u)});
    }
    for (CellId c = 0; c < nl_->num_cells(); ++c) {
      if (nl_->cell(c).fixed || in_unit[c]) continue;
      const double w = nl_->cell_width(c);
      const std::size_t r = design_->nearest_row((*pl_)[c].y);
      rows_[r].push_back({(*pl_)[c].x - w / 2.0, w, c, kNoUnit});
    }
    for (auto& row : rows_) {
      std::sort(row.begin(), row.end(),
                [](const Entry& a, const Entry& b) { return a.lx < b.lx; });
      // Safety net: entries that overlap a predecessor (possible when the
      // incoming placement is not perfectly legal) are removed from the
      // row model -- their cells keep their positions and are never moved,
      // so the detailer cannot make things worse.
      std::vector<Entry> clean;
      clean.reserve(row.size());
      for (const Entry& e : row) {
        if (!clean.empty() && clean.back().hx() > e.lx + 1e-9) continue;
        clean.push_back(e);
      }
      row = std::move(clean);
    }
  }

  /// Exact HPWL over the union of nets incident to `cells`.
  double nets_hpwl(const std::vector<CellId>& cells) {
    scratch_nets_.clear();
    for (CellId c : cells) {
      for (PinId p : nl_->cell(c).pins) {
        scratch_nets_.push_back(nl_->pin(p).net);
      }
    }
    std::sort(scratch_nets_.begin(), scratch_nets_.end());
    scratch_nets_.erase(
        std::unique(scratch_nets_.begin(), scratch_nets_.end()),
        scratch_nets_.end());
    double total = 0.0;
    for (NetId n : scratch_nets_) {
      total += nl_->net(n).weight * eval::net_hpwl(*nl_, n, *pl_);
    }
    return total;
  }

  /// Breakpoint-median optimal x for a rigid set of cells, where cell k
  /// sits at (X + rel[k]) for block coordinate X. Returns the midpoint of
  /// the optimal interval, or NaN if the set has no external nets.
  double optimal_position(const std::vector<CellId>& cells,
                          const std::vector<double>& rel) {
    breakpoints_.clear();
    for (std::size_t k = 0; k < cells.size(); ++k) {
      for (PinId p : nl_->cell(cells[k]).pins) {
        const auto& pin = nl_->pin(p);
        const auto& net_pins = nl_->net(pin.net).pins;
        if (net_pins.size() < 2) continue;
        double lo = std::numeric_limits<double>::infinity(), hi = -lo;
        bool external = false;
        for (PinId q : net_pins) {
          const CellId oc = nl_->pin(q).cell;
          // Skip pins belonging to the moving set.
          bool moving = false;
          for (CellId mc : cells) {
            if (oc == mc) {
              moving = true;
              break;
            }
          }
          if (moving) continue;
          const double x = nl_->pin_position(q, *pl_).x;
          lo = std::min(lo, x);
          hi = std::max(hi, x);
          external = true;
        }
        if (!external) continue;
        const double off = rel[k] + pin.offset_x;
        breakpoints_.push_back(lo - off);
        breakpoints_.push_back(hi - off);
      }
    }
    if (breakpoints_.empty()) {
      return std::numeric_limits<double>::quiet_NaN();
    }
    std::sort(breakpoints_.begin(), breakpoints_.end());
    const std::size_t m = breakpoints_.size();
    return (breakpoints_[(m - 1) / 2] + breakpoints_[m / 2]) / 2.0;
  }

  /// Try to move the entry at rows_[r][i] so its left edge becomes new_lx;
  /// keeps order and legality, commits only on HPWL improvement.
  bool try_shift(std::size_t r, std::size_t i, double new_lx,
                 std::vector<CellId>& moved_cells,
                 std::vector<double>& rel) {
    auto& row = rows_[r];
    Entry& e = row[i];
    const double lo_bound = i > 0 ? row[i - 1].hx() : design_->row(r).lx;
    const double hi_bound =
        i + 1 < row.size() ? row[i + 1].lx : design_->row(r).hx;
    new_lx = std::clamp(new_lx, lo_bound, hi_bound - e.width);
    new_lx = design_->snap_x(new_lx);
    if (new_lx < lo_bound - 1e-9 || new_lx + e.width > hi_bound + 1e-9) {
      // Snapping pushed us out of the gap; try the inward site.
      new_lx = std::clamp(new_lx, lo_bound, hi_bound - e.width);
      const double site = design_->site_width();
      new_lx = design_->core().lx +
               std::ceil((new_lx - design_->core().lx) / site - 1e-9) * site;
      if (new_lx + e.width > hi_bound + 1e-9) return false;
    }
    const double dx = new_lx - e.lx;
    if (std::abs(dx) < 1e-12) return false;

    const double before = nets_hpwl(moved_cells);
    for (std::size_t k = 0; k < moved_cells.size(); ++k) {
      (*pl_)[moved_cells[k]].x += dx;
      (void)rel;
    }
    const double after = nets_hpwl(moved_cells);
    if (after + 1e-12 < before) {
      e.lx = new_lx;
      return true;
    }
    for (CellId c : moved_cells) (*pl_)[c].x -= dx;
    return false;
  }

  std::size_t slide_pass() {
    std::size_t moves = 0;
    std::vector<CellId> one(1);
    std::vector<double> rel{0.0};
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      for (std::size_t i = 0; i < rows_[r].size(); ++i) {
        Entry& e = rows_[r][i];
        if (e.unit != kNoUnit) continue;
        one[0] = e.cell;
        rel[0] = nl_->cell_width(e.cell) / 2.0;  // center from left edge
        // optimal_position returns the block coordinate X with the cell
        // center at X + rel[0]; with rel[0] = w/2, X is the left edge.
        const double x_opt = optimal_position(one, rel);
        if (!std::isfinite(x_opt)) continue;
        if (try_shift(r, i, x_opt, one, rel)) ++moves;
      }
    }
    return moves;
  }

  std::size_t swap_pass() {
    std::size_t moves = 0;
    std::vector<CellId> pair(2);
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      auto& row = rows_[r];
      for (std::size_t i = 0; i + 1 < row.size(); ++i) {
        Entry& a = row[i];
        Entry& b = row[i + 1];
        if (a.unit != kNoUnit || b.unit != kNoUnit) continue;
        // Swap order, preserving the pair's outer extent and inner gap.
        const double gap = b.lx - a.hx();
        const double new_b_lx = a.lx;
        const double new_a_lx = a.lx + b.width + gap;
        pair[0] = a.cell;
        pair[1] = b.cell;
        const double before = nets_hpwl(pair);
        const double old_a_lx = a.lx, old_b_lx = b.lx;
        (*pl_)[a.cell].x = new_a_lx + a.width / 2.0;
        (*pl_)[b.cell].x = new_b_lx + b.width / 2.0;
        const double after = nets_hpwl(pair);
        if (after + 1e-12 < before) {
          a.lx = new_a_lx;
          b.lx = new_b_lx;
          std::swap(row[i], row[i + 1]);
          ++moves;
        } else {
          (*pl_)[a.cell].x = old_a_lx + a.width / 2.0;
          (*pl_)[b.cell].x = old_b_lx + b.width / 2.0;
        }
      }
    }
    return moves;
  }

  std::size_t unit_slide_pass() {
    std::size_t moves = 0;
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      for (std::size_t i = 0; i < rows_[r].size(); ++i) {
        Entry& e = rows_[r][i];
        if (e.unit == kNoUnit) continue;
        const Unit& unit = (*units_)[static_cast<std::size_t>(e.unit)];
        // Relative member offsets from the unit's left edge.
        std::vector<CellId> cells = unit.cells;
        std::vector<double> rel(cells.size());
        for (std::size_t k = 0; k < cells.size(); ++k) {
          rel[k] = (*pl_)[cells[k]].x - e.lx;
        }
        const double x_opt = optimal_position(cells, rel);
        if (!std::isfinite(x_opt)) continue;
        if (try_shift(r, i, x_opt, cells, rel)) ++moves;
      }
    }
    return moves;
  }

  const netlist::Netlist* nl_;
  const netlist::Design* design_;
  netlist::Placement* pl_;
  const std::vector<Unit>* units_;
  std::vector<std::vector<Entry>> rows_;
  std::vector<NetId> scratch_nets_;
  std::vector<double> breakpoints_;
};

}  // namespace

DetailedPlacer::DetailedPlacer(const netlist::Netlist& nl,
                               const netlist::Design& design)
    : nl_(&nl), design_(&design) {}

DetailStats DetailedPlacer::run(netlist::Placement& pl,
                                const DetailOptions& options) {
  const std::vector<Unit> no_units;
  Engine engine(*nl_, *design_, pl, no_units);
  return engine.optimize(options);
}

DetailStats DetailedPlacer::run_structured(
    netlist::Placement& pl, const netlist::StructureAnnotation& groups,
    const std::vector<bool>& bits_along_y, const DetailOptions& options) {
  std::vector<Unit> units;
  for (std::size_t g = 0; g < groups.groups.size(); ++g) {
    const bool along_y = g < bits_along_y.size() ? bits_along_y[g] : true;
    for (auto& lane : netlist::row_lanes(groups.groups[g], along_y)) {
      if (lane.empty()) continue;
      // A lane may have been folded across several rows by legalization;
      // split it into per-row units.
      std::sort(lane.begin(), lane.end(), [&](CellId a, CellId b) {
        return pl[a].x < pl[b].x;
      });
      std::vector<std::pair<std::size_t, CellId>> by_row;
      by_row.reserve(lane.size());
      for (CellId c : lane) {
        by_row.emplace_back(design_->nearest_row(pl[c].y), c);
      }
      std::stable_sort(
          by_row.begin(), by_row.end(),
          [](const auto& a, const auto& b) { return a.first < b.first; });
      std::size_t start = 0;
      while (start < by_row.size()) {
        std::size_t end = start;
        while (end < by_row.size() &&
               by_row[end].first == by_row[start].first) {
          ++end;
        }
        Unit u;
        u.row = by_row[start].first;
        double sum_w = 0.0, lo = 1e300, hi = -1e300;
        for (std::size_t k = start; k < end; ++k) {
          const CellId c = by_row[k].second;
          u.cells.push_back(c);
          sum_w += nl_->cell_width(c);
          lo = std::min(lo, pl[c].x - nl_->cell_width(c) / 2.0);
          hi = std::max(hi, pl[c].x + nl_->cell_width(c) / 2.0);
        }
        // Only perfectly packed lanes move as rigid units: any internal
        // gap could legally contain a foreign cell, and a bounding-box
        // pseudo-entry spanning it would corrupt the row model. Lanes
        // with gaps (legalization fallbacks, gentle mode, array holes)
        // are handled as individual free cells instead.
        if (hi - lo <= sum_w + 1e-9) {
          units.push_back(std::move(u));
        }
        start = end;
      }
    }
  }
  Engine engine(*nl_, *design_, pl, units);
  return engine.optimize(options);
}

}  // namespace dp::detail
