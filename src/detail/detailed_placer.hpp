#pragma once

#include <vector>

#include "netlist/design.hpp"
#include "netlist/netlist.hpp"
#include "netlist/structure.hpp"

namespace dp::detail {

struct DetailOptions {
  std::size_t max_passes = 4;
  /// Stop a pass loop early when a full pass improves HPWL by less than
  /// this relative amount.
  double rel_improvement_floor = 1e-4;
};

struct DetailStats {
  double hpwl_before = 0.0;
  double hpwl_after = 0.0;
  std::size_t slides = 0;
  std::size_t swaps = 0;
  std::size_t slice_slides = 0;
  std::size_t passes = 0;
};

/// Row-based detailed placement: per-cell optimal-interval sliding within
/// row gaps plus adjacent-cell swapping, iterated to convergence. In
/// structure-aware mode the cells of extracted datapath groups are moved
/// only as whole row units (slices), preserving the aligned arrays the
/// structure-aware flow produced.
///
/// Precondition: `pl` is legal (row- and site-aligned, no overlaps);
/// the placer maintains legality move by move.
class DetailedPlacer {
 public:
  DetailedPlacer(const netlist::Netlist& nl, const netlist::Design& design);

  /// Plain detailed placement over all movable cells.
  DetailStats run(netlist::Placement& pl, const DetailOptions& options = {});

  /// Structure-aware: group member cells move only as whole slices
  /// (horizontal unit slides); all other cells get the plain moves.
  /// `bits_along_y[g]` selects which axis forms the row units of group g.
  DetailStats run_structured(netlist::Placement& pl,
                             const netlist::StructureAnnotation& groups,
                             const std::vector<bool>& bits_along_y,
                             const DetailOptions& options = {});

 private:
  const netlist::Netlist* nl_;
  const netlist::Design* design_;
};

}  // namespace dp::detail
