#pragma once

#include <functional>
#include <span>
#include <vector>

#include "detail/profile.hpp"
#include "geom/point.hpp"
#include "netlist/design.hpp"
#include "netlist/netlist.hpp"
#include "netlist/structure.hpp"

namespace dp::detail {

struct DetailOptions {
  std::size_t max_passes = 4;
  /// Stop a pass loop early when a full pass improves HPWL by less than
  /// this relative amount.
  double rel_improvement_floor = 1e-4;
  /// Swap-pass window: each cell considers swapping with its `swap_window`
  /// successors in the row. 1 (the default) is the classical adjacent-only
  /// pass and reproduces the historical result bit for bit; larger windows
  /// trade runtime for quality, a knob the incremental delta evaluation
  /// makes affordable.
  std::size_t swap_window = 1;
  /// Cross-check every accepted move's maintained HPWL total against a
  /// full eval::hpwl recompute (tests/debugging only: restores the
  /// quadratic cost the incremental engine removes).
  bool paranoid = false;
  /// Optional veto over HPWL-improving moves, consulted before commit
  /// with the moved cells and their candidate centers (the placement
  /// still holds the pre-move positions). Return false to reject; vetoes
  /// are counted in Profile::guard_vetoes. The timing-driven flow uses
  /// this to refuse moves that worsen the WNS proxy.
  std::function<bool(std::span<const netlist::CellId>,
                     std::span<const geom::Point>)>
      move_guard;
};

struct DetailStats {
  double hpwl_before = 0.0;
  double hpwl_after = 0.0;
  std::size_t slides = 0;
  std::size_t swaps = 0;
  std::size_t slice_slides = 0;
  std::size_t passes = 0;
  /// Per-pass candidate/accept counts, wall times, and incremental-engine
  /// bookkeeping (rescans, resyncs, paranoid checks).
  Profile profile;
};

/// Row-based detailed placement: per-cell optimal-interval sliding within
/// row gaps plus adjacent-cell swapping, iterated to convergence. In
/// structure-aware mode the cells of extracted datapath groups are moved
/// only as whole row units (slices), preserving the aligned arrays the
/// structure-aware flow produced.
///
/// Precondition: `pl` is legal (row- and site-aligned, no overlaps);
/// the placer maintains legality move by move.
class DetailedPlacer {
 public:
  DetailedPlacer(const netlist::Netlist& nl, const netlist::Design& design);

  /// Plain detailed placement over all movable cells.
  DetailStats run(netlist::Placement& pl, const DetailOptions& options = {});

  /// Structure-aware: group member cells move only as whole slices
  /// (horizontal unit slides); all other cells get the plain moves.
  /// `bits_along_y[g]` selects which axis forms the row units of group g.
  DetailStats run_structured(netlist::Placement& pl,
                             const netlist::StructureAnnotation& groups,
                             const std::vector<bool>& bits_along_y,
                             const DetailOptions& options = {});

 private:
  const netlist::Netlist* nl_;
  const netlist::Design* design_;
};

}  // namespace dp::detail
