#include "detail/profile.hpp"

#include <cstdio>

namespace dp::detail {

void Profile::merge(const Profile& other) {
  slide.merge(other.slide);
  swap.merge(other.swap);
  unit_slide.merge(other.unit_slide);
  rescans += other.rescans;
  resyncs += other.resyncs;
  paranoid_checks += other.paranoid_checks;
  paranoid_failures += other.paranoid_failures;
  guard_vetoes += other.guard_vetoes;
}

std::string Profile::to_string() const {
  char buf[160];
  auto fmt = [&buf](const char* name, const PassProfile& p) {
    std::snprintf(buf, sizeof buf, "%s %zux %zu/%zu cand %.3fs", name,
                  p.passes, p.accepted, p.candidates, p.seconds);
    return std::string(buf);
  };
  std::string out = fmt("slide", slide);
  out += " | " + fmt("swap", swap);
  out += " | " + fmt("unit", unit_slide);
  std::snprintf(buf, sizeof buf, " | rescans %zu | resyncs %zu", rescans,
                resyncs);
  out += buf;
  if (guard_vetoes > 0) {
    std::snprintf(buf, sizeof buf, " | guard vetoes %zu", guard_vetoes);
    out += buf;
  }
  if (paranoid_checks > 0) {
    std::snprintf(buf, sizeof buf, " | paranoid %zu/%zu ok",
                  paranoid_checks - paranoid_failures, paranoid_checks);
    out += buf;
  }
  return out;
}

}  // namespace dp::detail
