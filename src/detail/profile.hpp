#pragma once

#include <cstddef>
#include <string>

namespace dp::detail {

/// Cumulative cost and yield of one detailed-placement pass kind.
struct PassProfile {
  std::size_t passes = 0;      ///< times the pass ran
  std::size_t candidates = 0;  ///< candidate moves evaluated (delta trials)
  std::size_t accepted = 0;    ///< candidates committed
  double seconds = 0.0;        ///< wall time inside the pass

  void merge(const PassProfile& other) {
    passes += other.passes;
    candidates += other.candidates;
    accepted += other.accepted;
    seconds += other.seconds;
  }
};

/// Per-pass evaluation profile of a detailed-placement run, the detail
/// phase's counterpart to gp::EvalProfile: how many candidate moves each
/// pass kind evaluated, how many it committed, and what it cost in wall
/// time, plus the incremental-HPWL engine's bookkeeping counters so the
/// O(pins-touched) cost model is measured instead of assumed.
struct Profile {
  PassProfile slide;       ///< per-cell optimal-interval slides
  PassProfile swap;        ///< (windowed) pairwise swaps
  PassProfile unit_slide;  ///< whole-slice rigid slides

  /// Lazy full net rescans the incremental engine had to run because a
  /// cached extreme pin moved inward.
  std::size_t rescans = 0;
  /// Pass-boundary total resyncs (each O(nets), replacing what used to be
  /// a full O(pins) eval::hpwl recompute).
  std::size_t resyncs = 0;
  /// Paranoid-mode cross-checks run / failed (failures indicate a cache
  /// inconsistency and are also logged).
  std::size_t paranoid_checks = 0;
  std::size_t paranoid_failures = 0;
  /// HPWL-improving moves rejected by DetailOptions::move_guard (e.g. the
  /// timing-driven WNS-proxy guard).
  std::size_t guard_vetoes = 0;

  void merge(const Profile& other);

  /// Compact one-line rendering for logs and the CLI, e.g.
  ///   "slide 3x 412/1204 cand 0.002s | swap 3x 98/1188 cand 0.001s |
  ///    unit 3x 4/36 cand 0.000s | rescans 17 | resyncs 3"
  std::string to_string() const;
};

}  // namespace dp::detail
