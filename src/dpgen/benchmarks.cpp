#include "dpgen/benchmarks.hpp"

#include <algorithm>
#include <stdexcept>

namespace dp::dpgen {

using netlist::NetId;

namespace {

/// Glue sized so that datapath cells make up `fraction` of movables.
std::size_t glue_for_fraction(std::size_t datapath_cells, double fraction) {
  if (fraction >= 1.0) return 0;
  if (fraction <= 0.0) return datapath_cells;  // caller handles pure glue
  const double glue = static_cast<double>(datapath_cells) *
                      (1.0 - fraction) / fraction;
  return static_cast<std::size_t>(glue);
}

Benchmark make_dp_add(std::size_t bits, std::size_t depth, std::size_t units,
                      std::uint64_t seed, const std::string& name) {
  Generator gen(name, seed);
  gen.add_control_block("ctl0", 8 * bits / 4);
  std::vector<NetId> taps;
  Bus a = gen.input_bus("a", bits);
  Bus b = gen.input_bus("b", bits);
  // Chain units with local operands: unit u adds its predecessor's result
  // to the value before that (no operand bus is broadcast across units).
  Bus x = a, y = b;
  for (std::size_t u = 0; u < units; ++u) {
    Bus nx = gen.add_pipelined_adder("add" + std::to_string(u), x, y, depth);
    y = x;
    x = std::move(nx);
  }
  taps.insert(taps.end(), x.begin(), x.end());
  const std::size_t dp_cells = gen.num_cells();
  auto outs = gen.add_glue("ctl", glue_for_fraction(dp_cells, 0.75), taps);
  gen.output_bus("sum", x);
  gen.output_bus("flags", Bus(outs.begin(), outs.end()));
  return gen.finish();
}

Benchmark make_dp_alu(std::size_t bits, std::size_t units, std::uint64_t seed,
                      const std::string& name) {
  Generator gen(name, seed);
  gen.add_control_block("ctl0", 8 * bits / 4);
  Bus a = gen.input_bus("a", bits);
  Bus b = gen.input_bus("b", bits);
  Bus x = a, y = b;
  for (std::size_t u = 0; u < units; ++u) {
    Bus nx = gen.add_alu("alu" + std::to_string(u), x, y);
    y = x;
    x = std::move(nx);
  }
  const std::size_t dp_cells = gen.num_cells();
  auto outs = gen.add_glue("ctl", glue_for_fraction(dp_cells, 0.70),
                           std::vector<NetId>(x.begin(), x.end()));
  gen.output_bus("r", x);
  gen.output_bus("flags", Bus(outs.begin(), outs.end()));
  return gen.finish();
}

}  // namespace

std::vector<std::string> standard_benchmarks() {
  return {"dp_add32", "dp_add64",   "dp_mul16", "dp_alu32", "dp_shift32",
          "dp_rf16x32", "mix25",    "mix50",    "mix75",    "glue"};
}

Benchmark make_benchmark(const std::string& name, std::uint64_t seed) {
  if (name == "dp_add32") return make_dp_add(32, 3, 2, seed, name);
  if (name == "dp_add64") return make_dp_add(64, 4, 2, seed, name);
  if (name == "dp_alu32") return make_dp_alu(32, 8, seed, name);

  if (name == "dp_mul16") {
    Generator gen(name, seed);
    gen.add_control_block("ctl0", 40);
    Bus a = gen.input_bus("a", 16);
    Bus b = gen.input_bus("b", 16);
    Bus p0 = gen.add_multiplier("mul0", a, b);
    // Second multiplier takes p0 and p0 rotated by one bit: operand nets
    // stay local between the two arrays.
    Bus p0r = p0;
    std::rotate(p0r.begin(), p0r.begin() + 1, p0r.end());
    Bus p1 = gen.add_multiplier("mul1", p0, p0r);
    const std::size_t dp_cells = gen.num_cells();
    auto outs = gen.add_glue("ctl", glue_for_fraction(dp_cells, 0.78),
                             std::vector<NetId>(p1.begin(), p1.end()));
    gen.output_bus("p", p1);
    gen.output_bus("flags", Bus(outs.begin(), outs.end()));
    return gen.finish();
  }

  if (name == "dp_shift32") {
    Generator gen(name, seed);
    gen.add_control_block("ctl0", 64);
    Bus x = gen.input_bus("a", 32);
    for (int u = 0; u < 6; ++u) {
      x = gen.add_shifter("sh" + std::to_string(u), x);
    }
    const std::size_t dp_cells = gen.num_cells();
    auto outs = gen.add_glue("ctl", glue_for_fraction(dp_cells, 0.70),
                             std::vector<NetId>(x.begin(), x.end()));
    gen.output_bus("y", x);
    gen.output_bus("flags", Bus(outs.begin(), outs.end()));
    return gen.finish();
  }

  if (name == "dp_rf16x32") {
    Generator gen(name, seed);
    gen.add_control_block("ctl0", 64);
    Bus d = gen.input_bus("d", 32);
    Bus q = gen.add_register_file("rf", d, 16);
    const std::size_t dp_cells = gen.num_cells();
    auto outs = gen.add_glue("ctl", glue_for_fraction(dp_cells, 0.80),
                             std::vector<NetId>(q.begin(), q.end()));
    gen.output_bus("q", q);
    gen.output_bus("flags", Bus(outs.begin(), outs.end()));
    return gen.finish();
  }

  if (name == "mix25") return make_mix(0.25, 3000, seed);
  if (name == "mix50") return make_mix(0.50, 3000, seed);
  if (name == "mix75") return make_mix(0.75, 3000, seed);

  if (name == "glue") {
    Generator gen(name, seed);
    auto outs = gen.add_glue("ctl", 2500, {});
    gen.output_bus("o", Bus(outs.begin(), outs.end()));
    return gen.finish();
  }

  throw std::invalid_argument("make_benchmark: unknown benchmark " + name);
}

Benchmark make_mix(double datapath_fraction, std::size_t approx_cells,
                   std::uint64_t seed) {
  const int pct = static_cast<int>(datapath_fraction * 100.0 + 0.5);
  Generator gen("mix" + std::to_string(pct), seed);
  if (datapath_fraction <= 0.0) {
    auto outs = gen.add_glue("ctl", approx_cells, {});
    gen.output_bus("o", Bus(outs.begin(), outs.end()));
    return gen.finish();
  }

  const auto dp_target = static_cast<std::size_t>(
      static_cast<double>(approx_cells) * datapath_fraction);
  gen.add_control_block("ctl0", 64);
  Bus a = gen.input_bus("a", 32);
  Bus b = gen.input_bus("b", 32);
  Bus x = a, y = b;
  std::size_t unit = 0;
  std::vector<NetId> taps;
  // Alternate ALU and adder units until the datapath budget is spent;
  // operands chain locally between consecutive units.
  while (gen.num_cells() < dp_target) {
    const std::string uname = "u" + std::to_string(unit);
    Bus nx = (unit % 2 == 0) ? gen.add_alu(uname, x, y)
                             : gen.add_pipelined_adder(uname, x, y, 2);
    y = x;
    x = std::move(nx);
    taps.insert(taps.end(), x.begin(), x.end());
    ++unit;
  }
  const std::size_t dp_cells = gen.num_cells();
  const std::size_t glue =
      approx_cells > dp_cells ? approx_cells - dp_cells : 0;
  auto outs = gen.add_glue("ctl", glue, taps);
  gen.output_bus("r", x);
  gen.output_bus("flags", Bus(outs.begin(), outs.end()));
  return gen.finish();
}

Benchmark make_scaled(std::size_t approx_cells, std::uint64_t seed) {
  Generator gen("scale" + std::to_string(approx_cells), seed);
  const auto dp_target = static_cast<std::size_t>(
      static_cast<double>(approx_cells) * 0.6);
  gen.add_control_block("ctl0", 64);
  Bus a = gen.input_bus("a", 32);
  Bus b = gen.input_bus("b", 32);
  Bus x = a, y = b;
  std::size_t unit = 0;
  std::vector<NetId> taps;
  while (gen.num_cells() < dp_target) {
    Bus nx = gen.add_alu("alu" + std::to_string(unit++), x, y);
    y = x;
    x = std::move(nx);
    taps.insert(taps.end(), x.begin(), x.end());
  }
  const std::size_t glue =
      approx_cells > gen.num_cells() ? approx_cells - gen.num_cells() : 0;
  auto outs = gen.add_glue("ctl", glue, taps);
  gen.output_bus("r", x);
  gen.output_bus("flags", Bus(outs.begin(), outs.end()));
  return gen.finish();
}

}  // namespace dp::dpgen
