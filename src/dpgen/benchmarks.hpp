#pragma once

#include <string>
#include <vector>

#include "dpgen/generator.hpp"

namespace dp::dpgen {

/// Names of the standard benchmark suite (reconstructed Table 1 rows).
std::vector<std::string> standard_benchmarks();

/// Build one of the standard benchmarks by name; throws on unknown names.
/// The same name + seed always produces the identical netlist.
Benchmark make_benchmark(const std::string& name, std::uint64_t seed = 1);

/// A design whose movable cells are `datapath_fraction` datapath (ALU +
/// adder slices) and the rest random glue, with roughly `approx_cells`
/// movable cells in total. Used for the datapath-fraction sweep (Fig. 4).
Benchmark make_mix(double datapath_fraction, std::size_t approx_cells,
                   std::uint64_t seed = 7);

/// A scaling-family design of roughly `approx_cells` movable cells built
/// from replicated 32-bit ALUs plus 40% glue (Fig. 7).
Benchmark make_scaled(std::size_t approx_cells, std::uint64_t seed = 11);

}  // namespace dp::dpgen
