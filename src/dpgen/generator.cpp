#include "dpgen/generator.hpp"

#include <cmath>
#include <stdexcept>

namespace dp::dpgen {

using netlist::CellFunc;
using netlist::CellId;
using netlist::kInvalidId;
using netlist::NetId;
using netlist::PinDir;
using netlist::StructureGroup;

Generator::Generator(std::string name, std::uint64_t seed)
    : name_(std::move(name)),
      builder_(netlist::standard_library()),
      rng_(seed) {}

NetId Generator::fresh_net(const std::string& name) {
  return builder_.add_net(name);
}

CellId Generator::add_pad(const std::string& name) {
  return builder_.add_cell(name, CellFunc::kPad, /*fixed=*/true);
}

Bus Generator::input_bus(const std::string& prefix, std::size_t width) {
  Bus bus;
  bus.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    bus.push_back(input(prefix + "[" + std::to_string(i) + "]"));
  }
  return bus;
}

netlist::NetId Generator::input(const std::string& name) {
  const NetId net = fresh_net(name);
  const CellId pad = add_pad("pi_" + name);
  builder_.connect_dir(pad, 0, net, PinDir::kOutput);
  input_pads_.push_back(pad);
  return net;
}

void Generator::output_bus(const std::string& prefix, const Bus& bus) {
  for (std::size_t i = 0; i < bus.size(); ++i) {
    output(prefix + "[" + std::to_string(i) + "]", bus[i]);
  }
}

void Generator::add_control_block(const std::string& prefix,
                                  std::size_t num_cells) {
  const netlist::CellId first = static_cast<netlist::CellId>(num_cells ? builder_.num_cells() : 0);
  add_glue(prefix, num_cells, {});
  // Pool: the output nets of a deterministic sample of the block's cells.
  const auto last = static_cast<netlist::CellId>(builder_.num_cells());
  for (netlist::CellId c = first; c < last; ++c) {
    if (control_pool_.size() >= 64) break;
    if ((c - first) % 7 != 0) continue;  // spread the sample
    for (netlist::PinId p : builder_.peek().cell(c).pins) {
      if (builder_.peek().pin(p).dir == netlist::PinDir::kOutput) {
        control_pool_.push_back(builder_.peek().pin(p).net);
        break;
      }
    }
  }
}

netlist::NetId Generator::control(const std::string& name) {
  if (control_pool_.empty()) return input(name);
  return control_pool_[control_next_++ % control_pool_.size()];
}

void Generator::output(const std::string& name, netlist::NetId net) {
  const CellId pad = add_pad("po_" + name);
  builder_.connect_dir(pad, 0, net, PinDir::kInput);
  output_pads_.push_back(pad);
}

Bus Generator::add_pipelined_adder(const std::string& prefix, const Bus& a,
                                   const Bus& b, std::size_t depth) {
  if (a.size() != b.size() || a.empty() || depth == 0) {
    throw std::invalid_argument("add_pipelined_adder: bad operands");
  }
  const std::size_t bits = a.size();
  auto g = StructureGroup::make(prefix, bits, 3 * depth);

  Bus x = a;
  Bus y = b;  // second operand is registered forward stage by stage, as in
              // a real fully pipelined datapath (no cross-stage broadcast)
  for (std::size_t p = 0; p < depth; ++p) {
    const std::string sp = prefix + "_p" + std::to_string(p);
    NetId carry = control(sp + "_cin");
    Bus next(bits), next_y(bits);
    for (std::size_t bit = 0; bit < bits; ++bit) {
      const std::string sb = sp + "_b" + std::to_string(bit);
      const CellId fa = builder_.add_cell(sb + "_fa", CellFunc::kFullAdder);
      const NetId sum = fresh_net(sb + "_s");
      const NetId cout = fresh_net(sb + "_c");
      builder_.connect(fa, "A", x[bit]);
      builder_.connect(fa, "B", y[bit]);
      builder_.connect(fa, "CI", carry);
      builder_.connect(fa, "S", sum);
      builder_.connect(fa, "CO", cout);
      carry = cout;

      const CellId reg = builder_.add_cell(sb + "_ff", CellFunc::kDff);
      const NetId q = fresh_net(sb + "_q");
      builder_.connect(reg, "D", sum);
      builder_.connect(reg, "Q", q);
      next[bit] = q;

      const CellId breg = builder_.add_cell(sb + "_fb", CellFunc::kDff);
      const NetId qb = fresh_net(sb + "_qb");
      builder_.connect(breg, "D", y[bit]);
      builder_.connect(breg, "Q", qb);
      next_y[bit] = qb;

      g.at(bit, 3 * p) = fa;
      g.at(bit, 3 * p + 1) = reg;
      g.at(bit, 3 * p + 2) = breg;
    }
    x = std::move(next);
    y = std::move(next_y);
  }
  truth_.groups.push_back(std::move(g));
  return x;
}

Bus Generator::add_alu(const std::string& prefix, const Bus& a, const Bus& b) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument("add_alu: bad operands");
  }
  const std::size_t bits = a.size();
  auto g = StructureGroup::make(prefix, bits, 8);

  const NetId op0 = control(prefix + "_op0");
  const NetId op1 = control(prefix + "_op1");
  const NetId op2 = control(prefix + "_op2");
  NetId carry = control(prefix + "_cin");

  Bus out(bits);
  for (std::size_t bit = 0; bit < bits; ++bit) {
    const std::string sb = prefix + "_b" + std::to_string(bit);
    auto gate2 = [&](CellFunc func, const char* tag, NetId in0, NetId in1) {
      const CellId c = builder_.add_cell(sb + tag, func);
      const NetId y = fresh_net(sb + tag + "_y");
      builder_.connect(c, "A", in0);
      builder_.connect(c, "B", in1);
      builder_.connect(c, "Y", y);
      return std::pair{c, y};
    };
    auto mux = [&](const char* tag, NetId in0, NetId in1, NetId sel) {
      const CellId c = builder_.add_cell(sb + tag, CellFunc::kMux2);
      const NetId y = fresh_net(sb + tag + "_y");
      builder_.connect(c, "A", in0);
      builder_.connect(c, "B", in1);
      builder_.connect(c, "S", sel);
      builder_.connect(c, "Y", y);
      return std::pair{c, y};
    };

    const auto [xg, xnet] = gate2(CellFunc::kXor2, "_xor", a[bit], b[bit]);
    const auto [ag, anet] = gate2(CellFunc::kAnd2, "_and", a[bit], b[bit]);
    const auto [og, onet] = gate2(CellFunc::kOr2, "_or", a[bit], b[bit]);

    const CellId fa = builder_.add_cell(sb + "_fa", CellFunc::kFullAdder);
    const NetId sum = fresh_net(sb + "_s");
    const NetId cout = fresh_net(sb + "_c");
    builder_.connect(fa, "A", a[bit]);
    builder_.connect(fa, "B", b[bit]);
    builder_.connect(fa, "CI", carry);
    builder_.connect(fa, "S", sum);
    builder_.connect(fa, "CO", cout);
    carry = cout;

    const auto [m1, m1net] = mux("_m1", anet, onet, op0);
    const auto [m2, m2net] = mux("_m2", xnet, m1net, op1);
    const auto [m3, m3net] = mux("_m3", sum, m2net, op2);

    const CellId reg = builder_.add_cell(sb + "_ff", CellFunc::kDff);
    const NetId q = fresh_net(sb + "_q");
    builder_.connect(reg, "D", m3net);
    builder_.connect(reg, "Q", q);
    out[bit] = q;

    g.at(bit, 0) = xg;
    g.at(bit, 1) = ag;
    g.at(bit, 2) = og;
    g.at(bit, 3) = fa;
    g.at(bit, 4) = m1;
    g.at(bit, 5) = m2;
    g.at(bit, 6) = m3;
    g.at(bit, 7) = reg;
  }
  truth_.groups.push_back(std::move(g));
  return out;
}

Bus Generator::add_multiplier(const std::string& prefix, const Bus& a,
                              const Bus& b) {
  if (a.size() != b.size() || a.size() < 2) {
    throw std::invalid_argument("add_multiplier: bad operands");
  }
  const std::size_t bits = a.size();
  auto g = StructureGroup::make(prefix, bits, 2 * bits);

  // Shared constant-zero rail for array edges (driven by an input pad;
  // the generator never simulates, only the structure matters).
  const NetId zero = control(prefix + "_zero");

  std::vector<Bus> sum(bits, Bus(bits)), carry(bits, Bus(bits));
  for (std::size_t i = 0; i < bits; ++i) {
    const std::string sr = prefix + "_r" + std::to_string(i);
    for (std::size_t j = 0; j < bits; ++j) {
      const std::string sc = sr + "_c" + std::to_string(j);
      // Partial product.
      const CellId pp = builder_.add_cell(sc + "_pp", CellFunc::kAnd2);
      const NetId ppn = fresh_net(sc + "_ppn");
      builder_.connect(pp, "A", a[j]);
      builder_.connect(pp, "B", b[i]);
      builder_.connect(pp, "Y", ppn);
      g.at(i, 2 * j) = pp;

      if (i == 0) {
        sum[i][j] = ppn;
        carry[i][j] = zero;
        continue;
      }
      // Carry-save adder cell: pp + sum from the row above (shifted) +
      // carry from the row above.
      const CellId fa = builder_.add_cell(sc + "_fa", CellFunc::kFullAdder);
      const NetId s = fresh_net(sc + "_s");
      const NetId co = fresh_net(sc + "_co");
      builder_.connect(fa, "A", ppn);
      builder_.connect(fa, "B", j + 1 < bits ? sum[i - 1][j + 1] : zero);
      builder_.connect(fa, "CI", carry[i - 1][j]);
      builder_.connect(fa, "S", s);
      builder_.connect(fa, "CO", co);
      sum[i][j] = s;
      carry[i][j] = co;
      g.at(i, 2 * j + 1) = fa;
    }
  }
  truth_.groups.push_back(std::move(g));
  return sum[bits - 1];
}

Bus Generator::add_shifter(const std::string& prefix, const Bus& a) {
  const std::size_t bits = a.size();
  if (bits < 2 || (bits & (bits - 1)) != 0) {
    throw std::invalid_argument("add_shifter: width must be a power of two");
  }
  std::size_t levels = 0;
  while ((1u << levels) < bits) ++levels;
  auto g = StructureGroup::make(prefix, bits, levels);

  Bus x = a;
  for (std::size_t k = 0; k < levels; ++k) {
    const NetId sel = control(prefix + "_sel" + std::to_string(k));
    const std::size_t shift = 1u << k;
    Bus next(bits);
    for (std::size_t bit = 0; bit < bits; ++bit) {
      const std::string sb =
          prefix + "_l" + std::to_string(k) + "_b" + std::to_string(bit);
      const CellId m = builder_.add_cell(sb, CellFunc::kMux2);
      const NetId y = fresh_net(sb + "_y");
      builder_.connect(m, "A", x[bit]);
      builder_.connect(m, "B", x[(bit + bits - shift) % bits]);
      builder_.connect(m, "S", sel);
      builder_.connect(m, "Y", y);
      next[bit] = y;
      g.at(bit, k) = m;
    }
    x = std::move(next);
  }
  truth_.groups.push_back(std::move(g));
  return x;
}

Bus Generator::add_register_file(const std::string& prefix, const Bus& data,
                                 std::size_t words) {
  const std::size_t bits = data.size();
  if (bits == 0 || words < 2) {
    throw std::invalid_argument("add_register_file: bad shape");
  }
  // Write slices: one group per word, bits x 2 (write mux + flop).
  std::vector<Bus> q(words, Bus(bits));
  for (std::size_t w = 0; w < words; ++w) {
    const std::string sw = prefix + "_w" + std::to_string(w);
    const NetId we = control(sw + "_we");
    auto g = StructureGroup::make(sw, bits, 2);
    for (std::size_t bit = 0; bit < bits; ++bit) {
      const std::string sb = sw + "_b" + std::to_string(bit);
      const CellId m = builder_.add_cell(sb + "_wm", CellFunc::kMux2);
      const CellId reg = builder_.add_cell(sb + "_ff", CellFunc::kDff);
      const NetId mout = fresh_net(sb + "_wm_y");
      const NetId qn = fresh_net(sb + "_q");
      builder_.connect(reg, "D", mout);
      builder_.connect(reg, "Q", qn);
      builder_.connect(m, "A", qn);       // hold path
      builder_.connect(m, "B", data[bit]);  // write path
      builder_.connect(m, "S", we);
      builder_.connect(m, "Y", mout);
      q[w][bit] = qn;
      g.at(bit, 0) = m;
      g.at(bit, 1) = reg;
    }
    truth_.groups.push_back(std::move(g));
  }

  // Read port: a binary mux tree per bit; one group bits x (words - 1).
  auto g = StructureGroup::make(prefix + "_rd", bits, words - 1);
  Bus out(bits);
  // Select nets shared across bits, one per tree level.
  std::vector<NetId> sels;
  for (std::size_t lvl = 1; lvl < words; lvl <<= 1) {
    sels.push_back(
        control(prefix + "_rsel" + std::to_string(sels.size())));
  }
  for (std::size_t bit = 0; bit < bits; ++bit) {
    Bus level(words);
    for (std::size_t w = 0; w < words; ++w) level[w] = q[w][bit];
    std::size_t stage = 0, lvl_idx = 0;
    while (level.size() > 1) {
      Bus next;
      for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
        const std::string sb = prefix + "_rd_b" + std::to_string(bit) + "_n" +
                               std::to_string(stage);
        const CellId m = builder_.add_cell(sb, CellFunc::kMux2);
        const NetId y = fresh_net(sb + "_y");
        builder_.connect(m, "A", level[i]);
        builder_.connect(m, "B", level[i + 1]);
        builder_.connect(m, "S", sels[lvl_idx]);
        builder_.connect(m, "Y", y);
        g.at(bit, stage) = m;
        next.push_back(y);
        ++stage;
      }
      if (level.size() % 2 == 1) next.push_back(level.back());
      level = std::move(next);
      ++lvl_idx;
    }
    out[bit] = level[0];
  }
  truth_.groups.push_back(std::move(g));
  return out;
}

std::vector<netlist::NetId> Generator::add_glue(
    const std::string& prefix, std::size_t num_cells,
    std::vector<netlist::NetId> seeds) {
  if (seeds.empty()) {
    seeds.push_back(input(prefix + "_seed0"));
    seeds.push_back(input(prefix + "_seed1"));
  }
  std::vector<NetId> live = std::move(seeds);
  std::vector<std::size_t> fanout(live.size(), 0);

  struct FuncPick {
    CellFunc func;
    int weight;
  };
  static constexpr FuncPick kMix[] = {
      {CellFunc::kInv, 10},   {CellFunc::kBuf, 4},   {CellFunc::kNand2, 15},
      {CellFunc::kNor2, 10},  {CellFunc::kAnd2, 10}, {CellFunc::kOr2, 8},
      {CellFunc::kXor2, 5},   {CellFunc::kAoi21, 9}, {CellFunc::kOai21, 6},
      {CellFunc::kNand3, 6},  {CellFunc::kNor3, 5},  {CellFunc::kMux2, 4},
      {CellFunc::kDff, 8},
  };
  int total_weight = 0;
  for (const auto& p : kMix) total_weight += p.weight;

  const auto& lib = netlist::standard_library();
  for (std::size_t i = 0; i < num_cells; ++i) {
    int roll = static_cast<int>(rng_.below(static_cast<std::uint64_t>(total_weight)));
    CellFunc func = kMix[0].func;
    for (const auto& p : kMix) {
      roll -= p.weight;
      if (roll < 0) {
        func = p.func;
        break;
      }
    }
    const std::string cname = prefix + "_g" + std::to_string(i);
    const CellId c = builder_.add_cell(cname, func);
    const auto& type = lib.type(lib.by_func(func));
    // Inputs: locality-biased picks from the live set.
    for (std::size_t port = 0; port < type.pins.size(); ++port) {
      if (type.pins[port].dir != PinDir::kInput) continue;
      std::size_t idx;
      if (live.size() > 50 && rng_.chance(0.7)) {
        idx = live.size() - 1 - rng_.index(50);  // recent nets
      } else {
        idx = rng_.index(live.size());
      }
      builder_.connect(c, static_cast<std::uint16_t>(port), live[idx]);
      ++fanout[idx];
    }
    const NetId y = fresh_net(cname + "_y");
    builder_.connect(c, static_cast<std::uint16_t>(type.output_pin), y);
    live.push_back(y);
    fanout.push_back(0);
  }

  // Expose a handful of driven-but-unused nets as module outputs.
  std::vector<NetId> outs;
  for (std::size_t i = live.size(); i-- > 0 && outs.size() < 8;) {
    if (fanout[i] == 0) outs.push_back(live[i]);
  }
  return outs;
}

Benchmark Generator::finish(double utilization) {
  netlist::Netlist nl = builder_.take();
  netlist::Design design = netlist::Design::for_netlist(nl, utilization);
  const geom::Rect& core = design.core();

  netlist::Placement pl(nl.num_cells());
  // Movable cells: parked at the core center with a deterministic jitter so
  // downstream optimizers have a symmetric but non-degenerate start.
  util::Rng jitter(0xD1CEBEEFULL);
  for (netlist::CellId c = 0; c < nl.num_cells(); ++c) {
    if (!nl.cell(c).fixed) {
      pl[c] = {core.center().x + jitter.uniform(-0.5, 0.5),
               core.center().y + jitter.uniform(-0.5, 0.5)};
    }
  }

  // Pads: evenly spaced around the periphery, just outside the core so the
  // whole row area stays free for movable cells. Order: inputs on the
  // left/top, outputs on the right/bottom, preserving creation order (which
  // keeps bus bits adjacent).
  const double perim = 2.0 * (core.width() + core.height());
  std::vector<netlist::CellId> pads = input_pads_;
  pads.insert(pads.end(), output_pads_.begin(), output_pads_.end());
  const double step = perim / static_cast<double>(std::max<std::size_t>(pads.size(), 1));
  for (std::size_t i = 0; i < pads.size(); ++i) {
    const double t = step * static_cast<double>(i);
    geom::Point p;
    const double w = core.width(), h = core.height();
    const double pad_off = nl.cell_height(pads[i]) / 2.0;
    if (t < w) {
      p = {core.lx + t, core.ly - pad_off};  // bottom edge
    } else if (t < w + h) {
      p = {core.hx + pad_off, core.ly + (t - w)};  // right edge
    } else if (t < 2 * w + h) {
      p = {core.hx - (t - w - h), core.hy + pad_off};  // top edge
    } else {
      p = {core.lx - pad_off, core.hy - (t - 2 * w - h)};  // left edge
    }
    pl[pads[i]] = p;
  }

  return Benchmark{name_, std::move(nl), std::move(design), std::move(pl),
                   std::move(truth_)};
}

}  // namespace dp::dpgen
