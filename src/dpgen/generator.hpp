#pragma once

#include <string>
#include <vector>

#include "netlist/design.hpp"
#include "netlist/netlist.hpp"
#include "netlist/structure.hpp"
#include "util/prng.hpp"

namespace dp::dpgen {

/// A bundle of nets carrying a multi-bit signal, LSB first.
using Bus = std::vector<netlist::NetId>;

/// A complete generated placement problem: netlist + floorplan + initial
/// placement (fixed pads positioned, movables at the core center) + the
/// ground-truth datapath structure.
struct Benchmark {
  std::string name;
  netlist::Netlist netlist;
  netlist::Design design;
  netlist::Placement placement;
  netlist::StructureAnnotation truth;
};

/// Composable generator of datapath-intensive netlists.
///
/// Each `add_*` datapath builder instantiates one regular unit, records its
/// ground-truth StructureGroup, and returns its output bus so units can be
/// chained. `add_glue` grows random (structure-free) control logic. All
/// randomness comes from the seed, so a given recipe is fully deterministic.
class Generator {
 public:
  Generator(std::string name, std::uint64_t seed);

  // ---- primary I/O -------------------------------------------------------

  /// A bus of `width` nets, each driven by a fixed input pad.
  Bus input_bus(const std::string& prefix, std::size_t width);
  netlist::NetId input(const std::string& name);

  /// Generate a block of random control logic and register its nets as
  /// the source pool for datapath control signals (carry-ins, mux
  /// selects, write enables, opcode bits). Without a pool, each control
  /// signal falls back to its own input pad -- unrealistic for anything
  /// but tiny test cases.
  void add_control_block(const std::string& prefix, std::size_t num_cells);

  /// A control signal: drawn round-robin from the control pool, or a
  /// fresh input pad when no pool exists.
  netlist::NetId control(const std::string& name);

  /// Sink every net of `bus` into a fixed output pad.
  void output_bus(const std::string& prefix, const Bus& bus);
  void output(const std::string& name, netlist::NetId net);

  // ---- datapath units (each records one StructureGroup) ------------------

  /// Ripple-carry adder pipelined `depth` times: per bit and pipe stage,
  /// one FA (carry chained across bits), a sum register, and an operand
  /// register carrying `b` forward (fully registered pipeline, so no net
  /// spans more than one stage). Group shape: bits x (3 * depth).
  Bus add_pipelined_adder(const std::string& prefix, const Bus& a,
                          const Bus& b, std::size_t depth = 2);

  /// Single-bit-slice ALU: XOR/AND/OR logic unit, ripple-carry add,
  /// two result muxes and an output register per bit, controlled by a
  /// shared 2-bit opcode. Group shape: bits x 7.
  Bus add_alu(const std::string& prefix, const Bus& a, const Bus& b);

  /// Carry-save array multiplier. Group shape: bits x (2 * bits) with
  /// holes (row 0 has no adders). Returns the `bits` sum outputs of the
  /// last row (a full multiplier would add a final CPA).
  Bus add_multiplier(const std::string& prefix, const Bus& a, const Bus& b);

  /// Logarithmic barrel shifter (rotate-left). Group: bits x log2(bits).
  /// `a.size()` must be a power of two.
  Bus add_shifter(const std::string& prefix, const Bus& a);

  /// Register file: per word a (MUX2 + DFF) write slice, plus a read-port
  /// mux tree. One group per word (bits x 2) and one group for the read
  /// tree (bits x (words - 1)).
  Bus add_register_file(const std::string& prefix, const Bus& data,
                        std::size_t words);

  // ---- irregular logic ----------------------------------------------------

  /// Grow `num_cells` of random combinational/sequential control logic.
  /// Inputs are drawn from `seeds` plus its own freshly created nets with a
  /// locality bias. Returns a handful of output nets.
  std::vector<netlist::NetId> add_glue(const std::string& prefix,
                                       std::size_t num_cells,
                                       std::vector<netlist::NetId> seeds);

  // ---- finalize ------------------------------------------------------------

  std::size_t num_cells() const { return builder_.num_cells(); }

  /// Build the floorplan at `utilization`, place pads around the periphery,
  /// park movables at the core center, and return everything.
  Benchmark finish(double utilization = 0.7);

 private:
  netlist::NetId fresh_net(const std::string& name);
  netlist::CellId add_pad(const std::string& name);

  std::string name_;
  netlist::NetlistBuilder builder_;
  netlist::StructureAnnotation truth_;
  util::Rng rng_;
  std::vector<netlist::CellId> input_pads_;
  std::vector<netlist::CellId> output_pads_;
  std::vector<netlist::NetId> control_pool_;
  std::size_t control_next_ = 0;
  std::size_t unit_count_ = 0;
};

}  // namespace dp::dpgen
