#include "eval/incremental_hpwl.hpp"

#include <algorithm>
#include <limits>

namespace dp::eval {

using netlist::CellId;
using netlist::NetId;
using netlist::PinId;

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

IncrementalHpwl::IncrementalHpwl(const netlist::Netlist& nl,
                                 netlist::Placement& pl)
    : nl_(&nl), pl_(&pl) {
  pin_x_.resize(nl.num_pins());
  pin_y_.resize(nl.num_pins());
  boxes_.resize(nl.num_nets());
  cell_epoch_.assign(nl.num_cells(), 0);
  net_stamp_.assign(nl.num_nets(), NetStamp{});
  rebuild();
}

void IncrementalHpwl::rebuild() {
  for (PinId p = 0; p < nl_->num_pins(); ++p) {
    const geom::Point pos = nl_->pin_position(p, *pl_);
    pin_x_[p] = pos.x;
    pin_y_[p] = pos.y;
  }
  for (NetId n = 0; n < nl_->num_nets(); ++n) {
    NetBox& b = boxes_[n];
    b = NetBox{};
    const auto& pins = nl_->net(n).pins;
    if (pins.empty()) continue;
    double lo_x = kInf, hi_x = -kInf, lo_y = kInf, hi_y = -kInf;
    for (PinId p : pins) {
      lo_x = std::min(lo_x, pin_x_[p]);
      hi_x = std::max(hi_x, pin_x_[p]);
      lo_y = std::min(lo_y, pin_y_[p]);
      hi_y = std::max(hi_y, pin_y_[p]);
    }
    b.min_x = lo_x;
    b.max_x = hi_x;
    b.min_y = lo_y;
    b.max_y = hi_y;
    for (PinId p : pins) {
      if (pin_x_[p] == lo_x) ++b.n_min_x;
      if (pin_x_[p] == hi_x) ++b.n_max_x;
      if (pin_y_[p] == lo_y) ++b.n_min_y;
      if (pin_y_[p] == hi_y) ++b.n_max_y;
    }
  }
  resync_total();
}

double IncrementalHpwl::resync_total() {
  double total = 0.0;
  for (NetId n = 0; n < nl_->num_nets(); ++n) {
    total += nl_->net(n).weight * net_hpwl(n);
  }
  total_ = total;
  return total;
}

double IncrementalHpwl::incident_hpwl(std::span<const CellId> cells) {
  scratch_nets_.clear();
  for (CellId c : cells) {
    for (PinId p : nl_->cell(c).pins) {
      scratch_nets_.push_back(nl_->pin(p).net);
    }
  }
  std::sort(scratch_nets_.begin(), scratch_nets_.end());
  scratch_nets_.erase(
      std::unique(scratch_nets_.begin(), scratch_nets_.end()),
      scratch_nets_.end());
  double total = 0.0;
  for (NetId n : scratch_nets_) {
    total += nl_->net(n).weight * net_hpwl(n);
  }
  return total;
}

IncrementalHpwl::Trial IncrementalHpwl::trial_shift(
    std::span<const CellId> cells, double dx, double dy) {
  return stage(cells, Mode::kShift, dx, dy, {});
}

IncrementalHpwl::Trial IncrementalHpwl::trial_place(
    std::span<const CellId> cells, std::span<const geom::Point> centers) {
  return stage(cells, Mode::kPlace, 0.0, 0.0, centers);
}

void IncrementalHpwl::refresh(std::span<const CellId> cells) {
  stage(cells, Mode::kRefresh, 0.0, 0.0, {});
  commit();
}

IncrementalHpwl::Trial IncrementalHpwl::stage(
    std::span<const CellId> cells, Mode mode, double dx, double dy,
    std::span<const geom::Point> centers) {
  staged_ = false;
  mode_ = mode;
  dx_ = dx;
  dy_ = dy;
  staged_cells_.assign(cells.begin(), cells.end());
  staged_centers_.assign(centers.begin(), centers.end());

  ++epoch_;
  if (epoch_ == 0) {  // wrap-around: invalidate every stale stamp
    std::fill(cell_epoch_.begin(), cell_epoch_.end(), 0u);
    std::fill(net_stamp_.begin(), net_stamp_.end(), NetStamp{});
    epoch_ = 1;
  }
  staged_pins_.clear();
  trial_nets_.clear();
  for (std::size_t k = 0; k < cells.size(); ++k) {
    const CellId c = cells[k];
    cell_epoch_[c] = epoch_;
    // Candidate cell center. The shift form mirrors `pl[c] += d` followed
    // by a position read, so committed coordinates round identically to a
    // mutate-and-rescan implementation.
    double cx = 0.0, cy = 0.0;
    switch (mode) {
      case Mode::kShift:
        cx = (*pl_)[c].x + dx;
        cy = (*pl_)[c].y + dy;
        break;
      case Mode::kPlace:
        cx = centers[k].x;
        cy = centers[k].y;
        break;
      case Mode::kRefresh:
        cx = (*pl_)[c].x;
        cy = (*pl_)[c].y;
        break;
    }
    for (PinId p : nl_->cell(c).pins) {
      const netlist::Pin& pin = nl_->pin(p);
      const NetId n = pin.net;
      const double nx = cx + pin.offset_x;
      const double ny = cy + pin.offset_y;
      staged_pins_.push_back({n, p, nx, ny});

      const NetBox& cached = boxes_[n];
      const double ox = pin_x_[p], oy = pin_y_[p];
      NetStamp& stamp = net_stamp_[n];
      if (stamp.epoch != epoch_) {
        // First staged pin of this net in this trial: open an accumulator
        // slot. The open is fused with this pin's fold -- rest counts are
        // the cached extreme multiplicities minus this pin, the add
        // extents are just its candidate coordinate -- so nets with a
        // single staged pin (the bulk of detailed-placement candidates)
        // never take the general merge path below.
        stamp.epoch = epoch_;
        const std::size_t slot = trial_nets_.size();
        stamp.slot = static_cast<std::uint32_t>(slot);
        trial_nets_.push_back(n);
        if (accs_.size() <= slot) accs_.resize(slot + 1);
        NetAcc& a = accs_[slot];
        a.rest_min_x = cached.n_min_x - (ox == cached.min_x ? 1u : 0u);
        a.rest_max_x = cached.n_max_x - (ox == cached.max_x ? 1u : 0u);
        a.rest_min_y = cached.n_min_y - (oy == cached.min_y ? 1u : 0u);
        a.rest_max_y = cached.n_max_y - (oy == cached.max_y ? 1u : 0u);
        a.add_min_x = a.add_max_x = nx;
        a.add_min_y = a.add_max_y = ny;
        a.an_min_x = a.an_max_x = 1;
        a.an_min_y = a.an_max_y = 1;
        a.moved = 1;
        continue;
      }
      NetAcc& a = accs_[stamp.slot];
      // Remove the pin's old coordinate from the cached extremes...
      if (ox == cached.min_x) --a.rest_min_x;
      if (ox == cached.max_x) --a.rest_max_x;
      if (oy == cached.min_y) --a.rest_min_y;
      if (oy == cached.max_y) --a.rest_max_y;
      // ...and fold its candidate coordinate into the add extents.
      if (nx < a.add_min_x) {
        a.add_min_x = nx;
        a.an_min_x = 1;
      } else if (nx == a.add_min_x) {
        ++a.an_min_x;
      }
      if (nx > a.add_max_x) {
        a.add_max_x = nx;
        a.an_max_x = 1;
      } else if (nx == a.add_max_x) {
        ++a.an_max_x;
      }
      if (ny < a.add_min_y) {
        a.add_min_y = ny;
        a.an_min_y = 1;
      } else if (ny == a.add_min_y) {
        ++a.an_min_y;
      }
      if (ny > a.add_max_y) {
        a.add_max_y = ny;
        a.an_max_y = 1;
      } else if (ny == a.add_max_y) {
        ++a.an_max_y;
      }
      ++a.moved;
    }
  }
  // Ascending net order keeps the before/after sums bitwise identical to
  // the historical sorted-unique-nets rescan. The list is a handful of
  // entries for single-cell candidates, so insertion sort beats the
  // introsort dispatch there.
  if (trial_nets_.size() <= 16) {
    for (std::size_t i = 1; i < trial_nets_.size(); ++i) {
      const NetId v = trial_nets_[i];
      std::size_t j = i;
      for (; j > 0 && trial_nets_[j - 1] > v; --j) {
        trial_nets_[j] = trial_nets_[j - 1];
      }
      trial_nets_[j] = v;
    }
  } else {
    std::sort(trial_nets_.begin(), trial_nets_.end());
  }

  Trial t;
  staged_nets_.clear();
  for (const NetId n : trial_nets_) {
    const netlist::Net& net = nl_->net(n);
    const NetBox nb = resolve_net(n, net, accs_[net_stamp_[n].slot]);
    if (net.pins.size() >= 2) {
      const NetBox& ob = boxes_[n];
      t.before += net.weight * ((ob.max_x - ob.min_x) + (ob.max_y - ob.min_y));
      t.after += net.weight * ((nb.max_x - nb.min_x) + (nb.max_y - nb.min_y));
    }
    staged_nets_.push_back({n, nb});
  }
  stage_before_ = t.before;
  stage_after_ = t.after;
  staged_ = true;
  return t;
}

IncrementalHpwl::NetBox IncrementalHpwl::resolve_net(NetId n,
                                                     const netlist::Net& net,
                                                     const NetAcc& a) {
  const NetBox& cached = boxes_[n];
  const std::uint32_t rest_min_x = a.rest_min_x, rest_max_x = a.rest_max_x;
  const std::uint32_t rest_min_y = a.rest_min_y, rest_max_y = a.rest_max_y;
  const double add_min_x = a.add_min_x, add_max_x = a.add_max_x;
  const double add_min_y = a.add_min_y, add_max_y = a.add_max_y;
  const std::uint32_t an_min_x = a.an_min_x, an_max_x = a.an_max_x;
  const std::uint32_t an_min_y = a.an_min_y, an_max_y = a.an_max_y;

  // A net whose every pin is staged (internal to the moved set) needs no
  // merging at all: its new box is exactly the staged pins' extents. This
  // keeps rigid slice and chunk moves O(moved pins) even though they
  // deplete all four cached extremes.
  if (a.moved == net.pins.size()) {
    return NetBox{add_min_x, add_max_x, add_min_y, add_max_y,
                  an_min_x,  an_max_x,  an_min_y,  an_max_y};
  }

  // Two-pin net with one staged pin: the single unmoved pin is the whole
  // "rest" of the net, so each side is a two-value merge with no cached
  // state consulted and never a rescan. Two-pin nets are the bulk of a
  // datapath netlist, and a driver pin sits on an extreme of every one of
  // its nets, so this path removes most inward-move rescans.
  if (a.moved == 1 && net.pins.size() == 2) {
    const PinId p0 = net.pins[0];
    const PinId rest =
        cell_epoch_[nl_->pin(p0).cell] == epoch_ ? net.pins[1] : p0;
    const double rx = pin_x_[rest], ry = pin_y_[rest];
    NetBox out;
    if (rx < add_min_x) {
      out.min_x = rx;
      out.n_min_x = 1;
    } else if (rx > add_min_x) {
      out.min_x = add_min_x;
      out.n_min_x = 1;
    } else {
      out.min_x = rx;
      out.n_min_x = 2;
    }
    if (rx > add_max_x) {
      out.max_x = rx;
      out.n_max_x = 1;
    } else if (rx < add_max_x) {
      out.max_x = add_max_x;
      out.n_max_x = 1;
    } else {
      out.max_x = rx;
      out.n_max_x = 2;
    }
    if (ry < add_min_y) {
      out.min_y = ry;
      out.n_min_y = 1;
    } else if (ry > add_min_y) {
      out.min_y = add_min_y;
      out.n_min_y = 1;
    } else {
      out.min_y = ry;
      out.n_min_y = 2;
    }
    if (ry > add_max_y) {
      out.max_y = ry;
      out.n_max_y = 1;
    } else if (ry < add_max_y) {
      out.max_y = add_max_y;
      out.n_max_y = 1;
    } else {
      out.max_y = ry;
      out.n_max_y = 2;
    }
    return out;
  }

  // Resolve one "lo" side without a rescan when possible. `rest_n > 0`
  // means the cached extreme still holds for the unmoved pins; otherwise
  // every pin at the extreme moved, and the side resolves cheaply only if
  // a candidate coordinate lands at or beyond it (all unmoved pins are
  // strictly inside). The leftover case -- the extreme pin moved inward --
  // is the lazy rescan.
  auto resolve_lo = [](double rest_v, std::uint32_t rest_n, double add_v,
                       std::uint32_t add_n, double& out_v,
                       std::uint32_t& out_n, bool& need_scan) {
    if (rest_n > 0) {
      if (add_n == 0 || rest_v < add_v) {
        out_v = rest_v;
        out_n = rest_n;
      } else if (add_v < rest_v) {
        out_v = add_v;
        out_n = add_n;
      } else {
        out_v = rest_v;
        out_n = rest_n + add_n;
      }
    } else if (add_n > 0 && add_v <= rest_v) {
      out_v = add_v;
      out_n = add_n;
    } else {
      need_scan = true;
    }
  };
  auto resolve_hi = [](double rest_v, std::uint32_t rest_n, double add_v,
                       std::uint32_t add_n, double& out_v,
                       std::uint32_t& out_n, bool& need_scan) {
    if (rest_n > 0) {
      if (add_n == 0 || rest_v > add_v) {
        out_v = rest_v;
        out_n = rest_n;
      } else if (add_v > rest_v) {
        out_v = add_v;
        out_n = add_n;
      } else {
        out_v = rest_v;
        out_n = rest_n + add_n;
      }
    } else if (add_n > 0 && add_v >= rest_v) {
      out_v = add_v;
      out_n = add_n;
    } else {
      need_scan = true;
    }
  };

  NetBox out;
  bool scan_min_x = false, scan_max_x = false;
  bool scan_min_y = false, scan_max_y = false;
  resolve_lo(cached.min_x, rest_min_x, add_min_x, an_min_x, out.min_x,
             out.n_min_x, scan_min_x);
  resolve_hi(cached.max_x, rest_max_x, add_max_x, an_max_x, out.max_x,
             out.n_max_x, scan_max_x);
  resolve_lo(cached.min_y, rest_min_y, add_min_y, an_min_y, out.min_y,
             out.n_min_y, scan_min_y);
  resolve_hi(cached.max_y, rest_max_y, add_max_y, an_max_y, out.max_y,
             out.n_max_y, scan_max_y);

  if (scan_min_x || scan_max_x || scan_min_y || scan_max_y) {
    // One pass over the unmoved pins recovers every depleted side.
    ++rescans_;
    double s_min_x = kInf, s_max_x = -kInf, s_min_y = kInf, s_max_y = -kInf;
    std::uint32_t sn_min_x = 0, sn_max_x = 0, sn_min_y = 0, sn_max_y = 0;
    for (PinId p : net.pins) {
      if (cell_epoch_[nl_->pin(p).cell] == epoch_) continue;  // moved
      const double x = pin_x_[p], y = pin_y_[p];
      if (x < s_min_x) {
        s_min_x = x;
        sn_min_x = 1;
      } else if (x == s_min_x) {
        ++sn_min_x;
      }
      if (x > s_max_x) {
        s_max_x = x;
        sn_max_x = 1;
      } else if (x == s_max_x) {
        ++sn_max_x;
      }
      if (y < s_min_y) {
        s_min_y = y;
        sn_min_y = 1;
      } else if (y == s_min_y) {
        ++sn_min_y;
      }
      if (y > s_max_y) {
        s_max_y = y;
        sn_max_y = 1;
      } else if (y == s_max_y) {
        ++sn_max_y;
      }
    }
    auto merge_lo = [](double av, std::uint32_t an, double bv,
                       std::uint32_t bn, double& ov, std::uint32_t& on) {
      if (an == 0 || (bn > 0 && bv < av)) {
        ov = bv;
        on = bn;
      } else if (bn == 0 || av < bv) {
        ov = av;
        on = an;
      } else {
        ov = av;
        on = an + bn;
      }
    };
    auto merge_hi = [](double av, std::uint32_t an, double bv,
                       std::uint32_t bn, double& ov, std::uint32_t& on) {
      if (an == 0 || (bn > 0 && bv > av)) {
        ov = bv;
        on = bn;
      } else if (bn == 0 || av > bv) {
        ov = av;
        on = an;
      } else {
        ov = av;
        on = an + bn;
      }
    };
    if (scan_min_x) {
      merge_lo(s_min_x, sn_min_x, add_min_x, an_min_x, out.min_x,
               out.n_min_x);
    }
    if (scan_max_x) {
      merge_hi(s_max_x, sn_max_x, add_max_x, an_max_x, out.max_x,
               out.n_max_x);
    }
    if (scan_min_y) {
      merge_lo(s_min_y, sn_min_y, add_min_y, an_min_y, out.min_y,
               out.n_min_y);
    }
    if (scan_max_y) {
      merge_hi(s_max_y, sn_max_y, add_max_y, an_max_y, out.max_y,
               out.n_max_y);
    }
  }
  return out;
}

void IncrementalHpwl::commit() {
  if (!staged_) return;
  switch (mode_) {
    case Mode::kShift:
      for (const CellId c : staged_cells_) {
        (*pl_)[c].x += dx_;
        (*pl_)[c].y += dy_;
      }
      break;
    case Mode::kPlace:
      for (std::size_t k = 0; k < staged_cells_.size(); ++k) {
        (*pl_)[staged_cells_[k]] = staged_centers_[k];
      }
      break;
    case Mode::kRefresh:
      break;
  }
  for (const StagedPin& sp : staged_pins_) {
    pin_x_[sp.pin] = sp.new_x;
    pin_y_[sp.pin] = sp.new_y;
  }
  for (const StagedNet& sn : staged_nets_) boxes_[sn.net] = sn.box;
  total_ += stage_after_ - stage_before_;
  staged_ = false;
}

}  // namespace dp::eval
