#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "geom/point.hpp"
#include "netlist/netlist.hpp"

namespace dp::eval {

/// Incremental HPWL engine: a per-net bounding-box cache over a Placement
/// that makes candidate-move evaluation O(pins of the moved cells) instead
/// of O(pins of every incident net).
///
/// Each net caches its x/y extents plus the multiplicity of pins sitting
/// exactly on each extreme. A trial move then updates extents per axis in
/// O(1) per moved pin: removing a pin from an extreme just decrements its
/// count, and only when the count of an extreme drops to zero *and* the
/// moved pins do not re-establish it (a cached extreme pin moved inward)
/// is the net's pin list rescanned. For row-based detailed placement the
/// extreme pin of a net almost never moves inward past the second-extreme
/// pin, so rescans amortize to a small constant fraction of trials (the
/// `rescans()` counter makes the amortization observable).
///
/// Exactness contract: cached extents are min/max over exactly the same
/// pin coordinates (`pl[cell] + offset`) that `eval::net_hpwl` scans, so
/// every cached per-net HPWL is bitwise identical to a fresh
/// `eval::net_hpwl` call, and `resync_total()` -- which re-sums the cached
/// values in net-id order, the same order `eval::hpwl` uses -- is bitwise
/// identical to a full `eval::hpwl` recompute. The running `total()` is
/// maintained by per-commit deltas, deterministic for identical move
/// sequences, and drifts from the full recompute only by accumulated
/// rounding of the deltas; callers resync at natural barriers (e.g. once
/// per detailed-placement pass) to clamp the drift to zero.
///
/// The engine holds a non-const reference to the placement: `commit()`
/// applies the staged trial to it, and `refresh()` re-reads it after an
/// external mutation. Cells passed to any call must be distinct.
class IncrementalHpwl {
 public:
  IncrementalHpwl(const netlist::Netlist& nl, netlist::Placement& pl);

  /// Running weighted total, maintained across commits.
  double total() const { return total_; }

  /// Recompute the running total from the cached per-net extents, summing
  /// in ascending net order. Bitwise identical to `eval::hpwl` on the
  /// current placement; O(nets), no pin scan.
  double resync_total();

  /// Cached weighted-unweighted HPWL of one net; bitwise identical to
  /// `eval::net_hpwl`.
  double net_hpwl(netlist::NetId n) const {
    const NetBox& b = boxes_[n];
    if (nl_->net(n).pins.size() < 2) return 0.0;
    return (b.max_x - b.min_x) + (b.max_y - b.min_y);
  }

  /// Weighted HPWL over the union of nets incident to `cells`, summed in
  /// ascending net-id order: bitwise identical to the detailed placer's
  /// historical full `nets_hpwl` rescan, at O(1) per net instead of
  /// O(net degree).
  double incident_hpwl(std::span<const netlist::CellId> cells);

  /// Result of a staged trial: the weighted HPWL of the incident nets
  /// before and after the candidate move, summed in ascending net order.
  struct Trial {
    double before = 0.0;
    double after = 0.0;
    double delta() const { return after - before; }
  };

  /// Stage a rigid translation of `cells` by (dx, dy). Nothing is written
  /// to the placement; follow with commit() or rollback(). Candidate pin
  /// coordinates are computed as `(pl[c] + d) + offset`, matching what a
  /// plain `pl[c] += d` mutation followed by a rescan would see.
  Trial trial_shift(std::span<const netlist::CellId> cells, double dx,
                    double dy);

  /// Stage an absolute repositioning: cell `cells[k]`'s center moves to
  /// `centers[k]`.
  Trial trial_place(std::span<const netlist::CellId> cells,
                    std::span<const geom::Point> centers);

  /// Apply the staged trial: mutate the placement (`+= d` for shifts,
  /// assignment for placements), update the cached extents, and advance
  /// the running total by the staged delta.
  void commit();

  /// Discard the staged trial. The placement was never touched.
  void rollback() { staged_ = false; }

  /// Re-synchronize `cells` after their placement entries were mutated
  /// externally (e.g. a legalizer wrote absolute positions). O(pins of
  /// `cells`) plus any rescans.
  void refresh(std::span<const netlist::CellId> cells);

  /// Full net rescans triggered by extreme pins moving inward.
  std::size_t rescans() const { return rescans_; }

 private:
  /// Cached extents of one net with extreme-pin multiplicities.
  struct NetBox {
    double min_x = 0.0, max_x = 0.0;
    double min_y = 0.0, max_y = 0.0;
    std::uint32_t n_min_x = 0, n_max_x = 0;
    std::uint32_t n_min_y = 0, n_max_y = 0;
  };

  struct StagedPin {
    netlist::NetId net = 0;
    netlist::PinId pin = 0;
    double new_x = 0.0, new_y = 0.0;
  };

  struct StagedNet {
    netlist::NetId net = 0;
    NetBox box;
  };

  enum class Mode { kShift, kPlace, kRefresh };

  /// Per-net accumulator filled in one pass over the staged pins: how many
  /// pins survive on each cached extreme once the moved pins' old
  /// coordinates are removed, and the extents (with multiplicities) of the
  /// moved pins' candidate coordinates.
  struct NetAcc {
    std::uint32_t rest_min_x = 0, rest_max_x = 0;
    std::uint32_t rest_min_y = 0, rest_max_y = 0;
    double add_min_x = 0.0, add_max_x = 0.0;
    double add_min_y = 0.0, add_max_y = 0.0;
    std::uint32_t an_min_x = 0, an_max_x = 0;
    std::uint32_t an_min_y = 0, an_max_y = 0;
    std::uint32_t moved = 0;
  };

  void rebuild();
  Trial stage(std::span<const netlist::CellId> cells, Mode mode, double dx,
              double dy, std::span<const geom::Point> centers);
  NetBox resolve_net(netlist::NetId n, const netlist::Net& net,
                     const NetAcc& a);
  double box_hpwl(netlist::NetId n, const NetBox& b) const {
    if (nl_->net(n).pins.size() < 2) return 0.0;
    return (b.max_x - b.min_x) + (b.max_y - b.min_y);
  }

  const netlist::Netlist* nl_;
  netlist::Placement* pl_;

  /// Cached absolute pin coordinates; invariant: bitwise equal to
  /// `nl.pin_position(p, pl)` at all times outside a staged trial.
  std::vector<double> pin_x_, pin_y_;
  std::vector<NetBox> boxes_;
  double total_ = 0.0;

  /// Epoch + accumulator-slot stamp of one net, packed so a trial's
  /// slot lookup touches a single cache line per net.
  struct NetStamp {
    std::uint32_t epoch = 0;
    std::uint32_t slot = 0;
  };

  /// Epoch-stamped moving-set membership and per-net accumulator slots
  /// (no per-trial clearing).
  std::vector<std::uint32_t> cell_epoch_;
  std::vector<NetStamp> net_stamp_;
  std::uint32_t epoch_ = 0;
  std::vector<NetAcc> accs_;
  std::vector<netlist::NetId> trial_nets_;

  // Staged trial state.
  bool staged_ = false;
  Mode mode_ = Mode::kShift;
  double dx_ = 0.0, dy_ = 0.0;
  std::vector<netlist::CellId> staged_cells_;
  std::vector<geom::Point> staged_centers_;
  std::vector<StagedPin> staged_pins_;
  std::vector<StagedNet> staged_nets_;
  double stage_before_ = 0.0, stage_after_ = 0.0;

  std::vector<netlist::NetId> scratch_nets_;
  std::size_t rescans_ = 0;
};

}  // namespace dp::eval
