#include "eval/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "geom/rect.hpp"

namespace dp::eval {

using netlist::CellId;
using netlist::NetId;
using netlist::PinId;

double net_hpwl(const netlist::Netlist& nl, NetId net,
                const netlist::Placement& pl) {
  const auto& pins = nl.net(net).pins;
  if (pins.size() < 2) return 0.0;
  geom::Rect box;
  for (PinId p : pins) box.expand(nl.pin_position(p, pl));
  return box.half_perimeter();
}

double hpwl(const netlist::Netlist& nl, const netlist::Placement& pl) {
  double total = 0.0;
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    total += nl.net(n).weight * net_hpwl(nl, n, pl);
  }
  return total;
}

double datapath_hpwl(const netlist::Netlist& nl, const netlist::Placement& pl,
                     const netlist::StructureAnnotation& groups) {
  const auto member = groups.membership(nl.num_cells());
  double total = 0.0;
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    bool touches = false;
    for (PinId p : nl.net(n).pins) {
      if (member[nl.pin(p).cell]) {
        touches = true;
        break;
      }
    }
    if (touches) total += nl.net(n).weight * net_hpwl(nl, n, pl);
  }
  return total;
}

namespace {

struct Placed {
  double lx, hx;
  CellId cell;
};

/// Movable cells bucketed by the row nearest their center, sorted by left
/// edge. Shared by check_legality and overlap_pairs.
std::vector<std::vector<Placed>> bucket_by_row(const netlist::Netlist& nl,
                                               const netlist::Design& design,
                                               const netlist::Placement& pl) {
  std::vector<std::vector<Placed>> rows(design.num_rows());
  for (CellId c = 0; c < nl.num_cells(); ++c) {
    if (nl.cell(c).fixed) continue;
    const double w = nl.cell_width(c);
    const double lx = pl[c].x - w / 2.0;
    const std::size_t r = design.nearest_row(pl[c].y);
    rows[r].push_back({lx, lx + w, c});
  }
  for (auto& row : rows) {
    std::sort(row.begin(), row.end(),
              [](const Placed& a, const Placed& b) { return a.lx < b.lx; });
  }
  return rows;
}

}  // namespace

std::vector<OverlapPair> overlap_pairs(const netlist::Netlist& nl,
                                       const netlist::Design& design,
                                       const netlist::Placement& pl,
                                       double tolerance,
                                       std::size_t max_pairs,
                                       bool* truncated) {
  std::vector<OverlapPair> pairs;
  if (truncated != nullptr) *truncated = false;
  const auto rows = bucket_by_row(nl, design, pl);
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      for (std::size_t j = i + 1; j < row.size(); ++j) {
        const double ov = row[i].hx - row[j].lx;
        if (ov <= tolerance) break;  // sorted by lx: nothing further overlaps
        const double width = std::min(ov, row[j].hx - row[j].lx);
        pairs.push_back(
            {row[i].cell, row[j].cell, width * design.row_height()});
        if (pairs.size() >= max_pairs) {
          if (truncated != nullptr) *truncated = true;
          return pairs;
        }
      }
    }
  }
  return pairs;
}

LegalityReport check_legality(const netlist::Netlist& nl,
                              const netlist::Design& design,
                              const netlist::Placement& pl, double tolerance) {
  LegalityReport rep;
  const geom::Rect& core = design.core();

  for (CellId c = 0; c < nl.num_cells(); ++c) {
    if (nl.cell(c).fixed) continue;
    const double w = nl.cell_width(c);
    const double h = nl.cell_height(c);
    const double lx = pl[c].x - w / 2.0;
    const double ly = pl[c].y - h / 2.0;

    if (lx < core.lx - tolerance || lx + w > core.hx + tolerance ||
        ly < core.ly - tolerance || ly + h > core.hy + tolerance) {
      ++rep.out_of_core;
    }
    const double row_rel = (ly - core.ly) / design.row_height();
    if (std::abs(row_rel - std::round(row_rel)) > tolerance) {
      ++rep.off_row;
    }
    const double site_rel = (lx - core.lx) / design.site_width();
    if (std::abs(site_rel - std::round(site_rel)) > tolerance) {
      ++rep.off_site;
    }
  }

  for (const OverlapPair& p : overlap_pairs(nl, design, pl, tolerance,
                                            /*max_pairs=*/100000,
                                            &rep.overlap_truncated)) {
    ++rep.overlaps;
    rep.total_overlap_area += p.area;
  }
  return rep;
}

namespace {

/// RMS of deviations from the mean, for one coordinate of a cell set.
double rms_spread(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double acc = 0.0;
  for (double x : xs) acc += (x - mean) * (x - mean);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

/// Mean RMS misalignment of a group for one orientation.
/// `bits_along_y`: slices share y and stages share x (the usual layout).
double group_misalignment(const netlist::StructureGroup& g,
                          const netlist::Placement& pl, bool bits_along_y) {
  double acc = 0.0;
  std::size_t terms = 0;
  for (std::size_t b = 0; b < g.bits; ++b) {
    std::vector<double> coord;
    for (std::size_t s = 0; s < g.stages; ++s) {
      const CellId c = g.at(b, s);
      if (c != netlist::kInvalidId) {
        coord.push_back(bits_along_y ? pl[c].y : pl[c].x);
      }
    }
    if (coord.size() >= 2) {
      acc += rms_spread(coord);
      ++terms;
    }
  }
  for (std::size_t s = 0; s < g.stages; ++s) {
    std::vector<double> coord;
    for (std::size_t b = 0; b < g.bits; ++b) {
      const CellId c = g.at(b, s);
      if (c != netlist::kInvalidId) {
        coord.push_back(bits_along_y ? pl[c].x : pl[c].y);
      }
    }
    if (coord.size() >= 2) {
      acc += rms_spread(coord);
      ++terms;
    }
  }
  return terms == 0 ? 0.0 : acc / static_cast<double>(terms);
}

}  // namespace

AlignmentScore alignment_score(const netlist::Netlist& nl,
                               const netlist::Placement& pl,
                               const netlist::StructureAnnotation& groups) {
  AlignmentScore score;
  if (groups.groups.empty()) return score;
  double acc = 0.0;
  for (const auto& g : groups.groups) {
    const double m = std::min(group_misalignment(g, pl, true),
                              group_misalignment(g, pl, false)) /
                     netlist::kRowHeight;
    acc += m;
    score.worst_group = std::max(score.worst_group, m);
  }
  score.rms_misalignment = acc / static_cast<double>(groups.groups.size());
  (void)nl;
  return score;
}

double density_overflow(const netlist::Netlist& nl,
                        const netlist::Design& design,
                        const netlist::Placement& pl, double target_density,
                        std::size_t bins_per_side) {
  const geom::Rect& core = design.core();
  const std::size_t nb = bins_per_side;
  const double bw = core.width() / static_cast<double>(nb);
  const double bh = core.height() / static_cast<double>(nb);
  std::vector<double> usage(nb * nb, 0.0);

  for (CellId c = 0; c < nl.num_cells(); ++c) {
    if (nl.cell(c).fixed) continue;
    const geom::Rect r = geom::Rect::from_center(pl[c], nl.cell_width(c),
                                                 nl.cell_height(c));
    const auto bx0 = static_cast<long long>(std::floor((r.lx - core.lx) / bw));
    const auto bx1 = static_cast<long long>(std::floor((r.hx - core.lx) / bw));
    const auto by0 = static_cast<long long>(std::floor((r.ly - core.ly) / bh));
    const auto by1 = static_cast<long long>(std::floor((r.hy - core.ly) / bh));
    for (long long by = std::max(0LL, by0);
         by <= std::min<long long>(static_cast<long long>(nb) - 1, by1); ++by) {
      for (long long bx = std::max(0LL, bx0);
           bx <= std::min<long long>(static_cast<long long>(nb) - 1, bx1);
           ++bx) {
        const geom::Rect bin{core.lx + static_cast<double>(bx) * bw,
                             core.ly + static_cast<double>(by) * bh,
                             core.lx + static_cast<double>(bx + 1) * bw,
                             core.ly + static_cast<double>(by + 1) * bh};
        usage[static_cast<std::size_t>(by) * nb +
              static_cast<std::size_t>(bx)] += r.overlap_area(bin);
      }
    }
  }

  const double bin_cap = bw * bh * target_density;
  double overflow = 0.0;
  for (double u : usage) overflow += std::max(0.0, u - bin_cap);
  const double movable = nl.movable_area();
  return movable > 0.0 ? overflow / movable : 0.0;
}

}  // namespace dp::eval
