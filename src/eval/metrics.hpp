#pragma once

#include <cstddef>
#include <vector>

#include "netlist/design.hpp"
#include "netlist/netlist.hpp"
#include "netlist/structure.hpp"

namespace dp::eval {

/// Total half-perimeter wirelength over all nets (weighted).
double hpwl(const netlist::Netlist& netlist, const netlist::Placement& pl);

/// HPWL of a single net.
double net_hpwl(const netlist::Netlist& netlist, netlist::NetId net,
                const netlist::Placement& pl);

/// HPWL restricted to nets with at least one pin on a datapath cell
/// (the "datapath wirelength" column of the headline table).
double datapath_hpwl(const netlist::Netlist& netlist,
                     const netlist::Placement& pl,
                     const netlist::StructureAnnotation& groups);

/// Legality violations of a row-based placement.
struct LegalityReport {
  std::size_t overlaps = 0;        ///< pairs of overlapping movable cells
  std::size_t off_row = 0;         ///< cells not aligned to a row
  std::size_t off_site = 0;        ///< cells not aligned to the site grid
  std::size_t out_of_core = 0;     ///< cells sticking out of the core
  double total_overlap_area = 0.0;
  /// True when the overlap sweep stopped at its pair cap: `overlaps` and
  /// `total_overlap_area` are then lower bounds, not complete counts.
  bool overlap_truncated = false;

  bool legal() const {
    return overlaps == 0 && off_row == 0 && off_site == 0 && out_of_core == 0;
  }
};

LegalityReport check_legality(const netlist::Netlist& netlist,
                              const netlist::Design& design,
                              const netlist::Placement& pl,
                              double tolerance = 1e-6);

/// One pair of overlapping movable cells found by the row sweep.
struct OverlapPair {
  netlist::CellId a = netlist::kInvalidId;
  netlist::CellId b = netlist::kInvalidId;
  double area = 0.0;
};

/// All pairs of overlapping movable cells, via a row-bucketed sweep
/// (cells are assigned to the row nearest their center; off-row cells are
/// the row-alignment check's problem). Collection stops after `max_pairs`
/// so a fully collapsed placement cannot produce a quadratic result list;
/// when that cap fires, `*truncated` (if non-null) is set so a capped
/// sweep can't read as a complete one.
std::vector<OverlapPair> overlap_pairs(const netlist::Netlist& netlist,
                                       const netlist::Design& design,
                                       const netlist::Placement& pl,
                                       double tolerance = 1e-6,
                                       std::size_t max_pairs = 100000,
                                       bool* truncated = nullptr);

/// Structure alignment quality of a placement, for one annotation.
///
/// For each group the score measures how tightly each bit slice hugs a
/// common row (y spread) and each stage hugs a common column (x spread),
/// normalized by row height; 0 = perfectly aligned arrays. Reported as the
/// mean RMS deviation in row-height units over all slices/stages. The
/// group's orientation (bits-as-rows vs bits-as-columns) is chosen to the
/// better of the two, matching what the placer may choose.
struct AlignmentScore {
  double rms_misalignment = 0.0;  ///< mean RMS deviation, row heights
  double worst_group = 0.0;
};

AlignmentScore alignment_score(const netlist::Netlist& netlist,
                               const netlist::Placement& pl,
                               const netlist::StructureAnnotation& groups);

/// Bin-based density overflow: fraction of movable area exceeding the
/// target density, evaluated on a uniform grid with `bins_per_side` bins.
double density_overflow(const netlist::Netlist& netlist,
                        const netlist::Design& design,
                        const netlist::Placement& pl, double target_density,
                        std::size_t bins_per_side = 32);

}  // namespace dp::eval
