#include "eval/svg.hpp"

#include <fstream>

#include "geom/rect.hpp"

namespace dp::eval {

using netlist::CellId;
using netlist::kInvalidId;

void write_svg(const std::string& path, const netlist::Netlist& nl,
               const netlist::Design& design, const netlist::Placement& pl,
               const netlist::StructureAnnotation* groups) {
  std::ofstream out(path);
  if (!out) return;
  const geom::Rect& core = design.core();
  const double scale = 900.0 / std::max(core.width(), core.height());
  const double margin = 20.0;
  auto X = [&](double x) { return margin + (x - core.lx) * scale; };
  // SVG y grows downward; flip so row 0 is at the bottom.
  auto Y = [&](double y) { return margin + (core.hy - y) * scale; };

  out << "<svg xmlns='http://www.w3.org/2000/svg' width='"
      << core.width() * scale + 2 * margin << "' height='"
      << core.height() * scale + 2 * margin << "'>\n";
  out << "<rect x='" << X(core.lx) << "' y='" << Y(core.hy) << "' width='"
      << core.width() * scale << "' height='" << core.height() * scale
      << "' fill='white' stroke='black'/>\n";

  std::vector<int> group_of(nl.num_cells(), -1);
  if (groups != nullptr) {
    for (std::size_t g = 0; g < groups->groups.size(); ++g) {
      for (CellId c : groups->groups[g].cells) {
        if (c != kInvalidId) group_of[c] = static_cast<int>(g);
      }
    }
  }
  static const char* kColors[] = {"#e41a1c", "#377eb8", "#4daf4a", "#984ea3",
                                  "#ff7f00", "#a65628", "#f781bf", "#17becf",
                                  "#66c2a5", "#fc8d62", "#8da0cb", "#e78ac3"};
  constexpr std::size_t kNumColors = sizeof(kColors) / sizeof(kColors[0]);

  for (CellId c = 0; c < nl.num_cells(); ++c) {
    if (nl.cell(c).fixed) continue;
    const double w = nl.cell_width(c) * scale;
    const double h = nl.cell_height(c) * scale;
    const char* fill =
        group_of[c] >= 0
            ? kColors[static_cast<std::size_t>(group_of[c]) % kNumColors]
            : "#cccccc";
    out << "<rect x='" << X(pl[c].x - nl.cell_width(c) / 2.0) << "' y='"
        << Y(pl[c].y + nl.cell_height(c) / 2.0) << "' width='" << w
        << "' height='" << h << "' fill='" << fill
        << "' fill-opacity='0.8' stroke='black' stroke-width='0.3'/>\n";
  }
  out << "</svg>\n";
}

}  // namespace dp::eval
