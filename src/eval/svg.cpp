#include "eval/svg.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "geom/rect.hpp"

namespace dp::eval {

using netlist::CellId;
using netlist::kInvalidId;

namespace {

/// Green -> yellow -> red ramp for congestion ratios; full red at 2x
/// capacity. Returns "#rrggbb".
std::string heat_color(double ratio) {
  const double t = std::clamp(ratio / 2.0, 0.0, 1.0);
  const int r = t < 0.5 ? static_cast<int>(255 * 2 * t) : 255;
  const int g = t < 0.5 ? 255 : static_cast<int>(255 * 2 * (1.0 - t));
  char buf[8];
  std::snprintf(buf, sizeof(buf), "#%02x%02x00", r, g);
  return buf;
}

}  // namespace

void write_svg(const std::string& path, const netlist::Netlist& nl,
               const netlist::Design& design, const netlist::Placement& pl,
               const SvgOptions& options) {
  std::ofstream out(path);
  if (!out) return;
  const geom::Rect& core = design.core();
  const double scale = 900.0 / std::max(core.width(), core.height());
  const double margin = 20.0;
  auto X = [&](double x) { return margin + (x - core.lx) * scale; };
  // SVG y grows downward; flip so row 0 is at the bottom.
  auto Y = [&](double y) { return margin + (core.hy - y) * scale; };

  out << "<svg xmlns='http://www.w3.org/2000/svg' width='"
      << core.width() * scale + 2 * margin << "' height='"
      << core.height() * scale + 2 * margin << "'>\n";
  out << "<rect class='core' x='" << X(core.lx) << "' y='" << Y(core.hy)
      << "' width='" << core.width() * scale << "' height='"
      << core.height() * scale << "' fill='white' stroke='black'/>\n";

  // Congestion heatmap layer: one translucent rect per bin, below the
  // cells so hotspots read through the placement.
  if (options.heatmap_bins > 0 &&
      options.heatmap.size() >= options.heatmap_bins * options.heatmap_bins) {
    const std::size_t nb = options.heatmap_bins;
    const double bw = core.width() / static_cast<double>(nb);
    const double bh = core.height() / static_cast<double>(nb);
    for (std::size_t by = 0; by < nb; ++by) {
      for (std::size_t bx = 0; bx < nb; ++bx) {
        const double ratio = options.heatmap[by * nb + bx];
        out << "<rect class='heat' x='"
            << X(core.lx + static_cast<double>(bx) * bw) << "' y='"
            << Y(core.ly + static_cast<double>(by + 1) * bh) << "' width='"
            << bw * scale << "' height='" << bh * scale << "' fill='"
            << heat_color(ratio) << "' fill-opacity='"
            << std::clamp(0.35 * ratio, 0.0, 0.6) << "'/>\n";
      }
    }
  }

  std::vector<int> group_of(nl.num_cells(), -1);
  if (options.groups != nullptr) {
    for (std::size_t g = 0; g < options.groups->groups.size(); ++g) {
      for (CellId c : options.groups->groups[g].cells) {
        if (c != kInvalidId) group_of[c] = static_cast<int>(g);
      }
    }
  }
  static const char* kColors[] = {"#e41a1c", "#377eb8", "#4daf4a", "#984ea3",
                                  "#ff7f00", "#a65628", "#f781bf", "#17becf",
                                  "#66c2a5", "#fc8d62", "#8da0cb", "#e78ac3"};
  constexpr std::size_t kNumColors = sizeof(kColors) / sizeof(kColors[0]);

  for (CellId c = 0; c < nl.num_cells(); ++c) {
    if (nl.cell(c).fixed) continue;
    const double w = nl.cell_width(c) * scale;
    const double h = nl.cell_height(c) * scale;
    const bool dp = group_of[c] >= 0;
    const char* fill =
        dp ? kColors[static_cast<std::size_t>(group_of[c]) % kNumColors]
           : "#cccccc";
    out << "<rect class='" << (dp ? "cell dp" : "cell") << "' x='"
        << X(pl[c].x - nl.cell_width(c) / 2.0) << "' y='"
        << Y(pl[c].y + nl.cell_height(c) / 2.0) << "' width='" << w
        << "' height='" << h << "' fill='" << fill
        << "' fill-opacity='0.8' stroke='black' stroke-width='0.3'/>\n";
  }

  // Critical-path layer: one polyline over the cells, pin to pin, with
  // dots at the endpoints so short paths stay visible.
  if (options.critical_path.size() >= 2) {
    out << "<polyline class='critpath' points='";
    for (std::size_t i = 0; i < options.critical_path.size(); ++i) {
      const geom::Point& p = options.critical_path[i];
      if (i > 0) out << " ";
      out << X(p.x) << "," << Y(p.y);
    }
    out << "' fill='none' stroke='#d40000' stroke-width='2' "
           "stroke-opacity='0.85'/>\n";
    const geom::Point& a = options.critical_path.front();
    const geom::Point& b = options.critical_path.back();
    out << "<circle class='critpath' cx='" << X(a.x) << "' cy='" << Y(a.y)
        << "' r='4' fill='#d40000'/>\n";
    out << "<circle class='critpath' cx='" << X(b.x) << "' cy='" << Y(b.y)
        << "' r='4' fill='#d40000'/>\n";
  }
  out << "</svg>\n";
}

void write_svg(const std::string& path, const netlist::Netlist& nl,
               const netlist::Design& design, const netlist::Placement& pl,
               const netlist::StructureAnnotation* groups) {
  SvgOptions options;
  options.groups = groups;
  write_svg(path, nl, design, pl, options);
}

}  // namespace dp::eval
