#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "geom/point.hpp"
#include "netlist/design.hpp"
#include "netlist/netlist.hpp"
#include "netlist/structure.hpp"

namespace dp::eval {

/// Optional layers of an SVG rendering.
struct SvgOptions {
  /// Color datapath groups (one color per group); null = all cells grey.
  const netlist::StructureAnnotation* groups = nullptr;
  /// Congestion heatmap overlay: a `heatmap_bins` x `heatmap_bins`
  /// row-major grid of congestion ratios (route::CongestionMap::ratios()),
  /// rendered as translucent bins between the core outline and the cells.
  /// 0 bins = no heatmap layer.
  std::size_t heatmap_bins = 0;
  std::vector<double> heatmap;
  /// Timing critical-path overlay: pin positions along the worst path
  /// (startpoint first), rendered as one polyline above the cells. Fewer
  /// than 2 points = no layer.
  std::vector<geom::Point> critical_path;
};

/// Writes an SVG rendering of a placement: core outline (class 'core'),
/// optional congestion heatmap bins (class 'heat'), movable cells (class
/// 'cell', or 'cell dp' with a per-group color for datapath cells), and
/// an optional critical-path polyline (class 'critpath'). Debugging and
/// documentation aid.
void write_svg(const std::string& path, const netlist::Netlist& nl,
               const netlist::Design& design, const netlist::Placement& pl,
               const SvgOptions& options);

/// Convenience overload: groups layer only.
void write_svg(const std::string& path, const netlist::Netlist& nl,
               const netlist::Design& design, const netlist::Placement& pl,
               const netlist::StructureAnnotation* groups = nullptr);

}  // namespace dp::eval
