#pragma once

#include <string>

#include "netlist/design.hpp"
#include "netlist/netlist.hpp"
#include "netlist/structure.hpp"

namespace dp::eval {

/// Writes an SVG rendering of a placement: core outline, rows, movable
/// cells (grey), and datapath groups (one color per group). Debugging and
/// documentation aid.
void write_svg(const std::string& path, const netlist::Netlist& nl,
               const netlist::Design& design, const netlist::Placement& pl,
               const netlist::StructureAnnotation* groups = nullptr);

}  // namespace dp::eval
