#include "extract/extractor.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "util/timer.hpp"

namespace dp::extract {

using netlist::CellId;
using netlist::kInvalidId;
using netlist::NetId;
using netlist::PinDir;
using netlist::PinId;
using netlist::StructureGroup;

namespace {

std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  a ^= b + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2);
  return a;
}

/// A labeled adjacency edge: following `label` from the owning cell leads
/// uniquely to `to`. Labels encode (own port, far port, far signature) and
/// whether the edge advances toward outputs.
struct Edge {
  std::uint64_t label = 0;
  CellId to = kInvalidId;
  bool forward = false;  ///< own pin is an output (successor direction)
};

/// A candidate/accepted stage column: cells lane-by-lane (holes allowed).
struct Column {
  std::vector<CellId> cells;
  int offset = 0;

  std::size_t filled() const {
    std::size_t n = 0;
    for (CellId c : cells) {
      if (c != kInvalidId) ++n;
    }
    return n;
  }
};

}  // namespace

ExtractResult extract_structures(const netlist::Netlist& nl,
                                 const ExtractOptions& options) {
  util::Timer timer;
  ExtractResult result;
  const std::size_t n = nl.num_cells();
  const auto sig = cell_signatures(nl, options.signature);

  // ---- labeled adjacency with per-cell unique labels --------------------
  std::vector<std::vector<Edge>> adj(n);
  for (NetId net = 0; net < nl.num_nets(); ++net) {
    const auto& pins = nl.net(net).pins;
    if (pins.size() < 2 || pins.size() > options.max_net_degree) continue;
    for (PinId p : pins) {
      const auto& pin = nl.pin(p);
      if (nl.cell(pin.cell).fixed) continue;
      for (PinId q : pins) {
        if (q == p) continue;
        const auto& other = nl.pin(q);
        if (nl.cell(other.cell).fixed) continue;
        // Labels carry the far cell's *function*, not its full signature:
        // signatures fragment at array boundaries (glue taps, pads), and a
        // fragmented target class would stall lockstep growth. Seeds stay
        // signature-strict; growth tolerates the noise.
        const std::uint64_t label =
            mix(mix(pin.port, std::uint64_t{other.port} * 2 + 1),
                static_cast<std::uint64_t>(nl.cell_type(other.cell).func));
        adj[pin.cell].push_back(
            {label, other.cell, pin.dir == PinDir::kOutput});
      }
    }
  }
  // Keep only labels that resolve to exactly one neighbor per cell.
  for (auto& edges : adj) {
    std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
      return a.label != b.label ? a.label < b.label : a.to < b.to;
    });
    std::vector<Edge> unique_edges;
    for (std::size_t i = 0; i < edges.size();) {
      std::size_t j = i;
      while (j < edges.size() && edges[j].label == edges[i].label) ++j;
      bool all_same = true;
      for (std::size_t k = i + 1; k < j; ++k) {
        if (edges[k].to != edges[i].to) {
          all_same = false;
          break;
        }
      }
      if (all_same) unique_edges.push_back(edges[i]);
      i = j;
    }
    edges = std::move(unique_edges);
  }
  // ---- seed discovery -----------------------------------------------------
  std::vector<Column> seeds;
  std::unordered_set<std::uint64_t> seen_seed_sets;
  auto register_seed = [&](std::vector<CellId> cells) {
    std::vector<CellId> sorted = cells;
    std::sort(sorted.begin(), sorted.end());
    std::uint64_t h = 0x5EEDC01ULL;
    for (CellId c : sorted) h = mix(h, c);
    if (!seen_seed_sets.insert(h).second) return;
    seeds.push_back({std::move(cells), 0});
  };

  // (a) Chain paths: same-signature unique-label successor maps.
  {
    // chain key = (sig of both endpoints, label); value: u -> v.
    std::map<std::pair<std::uint64_t, std::uint64_t>,
             std::unordered_map<CellId, CellId>>
        chains;
    for (CellId c = 0; c < n; ++c) {
      for (const Edge& e : adj[c]) {
        if (sig[e.to] == sig[c] && e.to != c) {
          chains[{sig[c], e.label}].emplace(c, e.to);
        }
      }
    }
    for (auto& [key, succ] : chains) {
      if (succ.size() + 1 < options.min_bits) continue;
      std::unordered_map<CellId, int> indeg;
      for (auto& [u, v] : succ) ++indeg[v];
      for (auto& [u, v] : succ) {
        if (indeg.contains(u)) continue;  // not a path start
        std::vector<CellId> path{u};
        std::unordered_set<CellId> on_path{u};
        CellId cur = u;
        while (true) {
          auto it = succ.find(cur);
          if (it == succ.end()) break;
          cur = it->second;
          if (!on_path.insert(cur).second) break;  // cycle guard
          path.push_back(cur);
        }
        if (path.size() >= options.min_bits) register_seed(std::move(path));
      }
    }
  }

  // (b) Bus columns: same-port same-signature sinks of one shared net.
  for (NetId net = 0; net < nl.num_nets(); ++net) {
    const auto& pins = nl.net(net).pins;
    if (pins.size() < options.min_bits ||
        pins.size() > options.max_bus_degree) {
      continue;
    }
    std::map<std::pair<std::uint64_t, std::uint64_t>, std::vector<CellId>>
        by_role;
    for (PinId p : pins) {
      const auto& pin = nl.pin(p);
      if (nl.cell(pin.cell).fixed || pin.dir == PinDir::kOutput) continue;
      by_role[{pin.port, sig[pin.cell]}].push_back(pin.cell);
    }
    for (auto& [role, cells] : by_role) {
      if (cells.size() < options.min_bits) continue;
      std::unordered_set<CellId> distinct(cells.begin(), cells.end());
      if (distinct.size() != cells.size()) continue;
      register_seed(cells);
    }
  }
  result.seeds_tried = seeds.size();

  // Longer seeds first: the strongest regularity claims its cells first.
  std::sort(seeds.begin(), seeds.end(), [](const Column& a, const Column& b) {
    return a.cells.size() > b.cells.size();
  });

  // ---- lockstep growth ----------------------------------------------------
  std::vector<bool> claimed(n, false);

  for (const Column& seed : seeds) {
    std::size_t free_cells = 0;
    for (CellId c : seed.cells) free_cells += claimed[c] ? 0u : 1u;
    if (free_cells < options.min_bits) continue;

    const std::size_t lanes = seed.cells.size();
    std::vector<Column> columns;
    std::unordered_set<CellId> in_group;

    Column first = seed;
    for (CellId& c : first.cells) {
      if (claimed[c]) c = kInvalidId;  // hole where another group owns it
    }
    for (CellId c : first.cells) {
      if (c != kInvalidId) in_group.insert(c);
    }
    columns.push_back(std::move(first));

    std::vector<std::size_t> frontier{0};
    while (!frontier.empty() && columns.size() < options.max_stages) {
      std::vector<std::size_t> next_frontier;
      for (std::size_t ci : frontier) {
        // Tally label -> lane extensions from every lane of this column.
        std::map<std::uint64_t, std::vector<std::pair<std::size_t, CellId>>>
            tally;
        std::map<std::uint64_t, bool> tally_forward;
        const Column col = columns[ci];  // copy: columns grows below
        for (std::size_t lane = 0; lane < lanes; ++lane) {
          const CellId c = col.cells[lane];
          if (c == kInvalidId) continue;
          for (const Edge& e : adj[c]) {
            if (claimed[e.to] || in_group.contains(e.to)) continue;
            tally[e.label].emplace_back(lane, e.to);
            tally_forward[e.label] = e.forward;
          }
        }
        const std::size_t active = col.filled();
        for (auto& [label, hits] : tally) {
          // A label accepted earlier in this wave may have claimed some of
          // these targets already; re-filter or cells would appear twice.
          std::erase_if(hits, [&](const std::pair<std::size_t, CellId>& h) {
            return claimed[h.second] || in_group.contains(h.second);
          });
          if (static_cast<double>(hits.size()) <
              options.growth_tau * static_cast<double>(active)) {
            continue;
          }
          if (hits.size() < options.min_bits) continue;
          // Distinct targets, one per lane.
          std::unordered_set<CellId> targets;
          bool ok = true;
          for (auto& [lane, w] : hits) {
            if (!targets.insert(w).second) {
              ok = false;
              break;
            }
          }
          if (!ok) continue;
          Column grown;
          grown.cells.assign(lanes, kInvalidId);
          for (auto& [lane, w] : hits) grown.cells[lane] = w;
          grown.offset = col.offset + (tally_forward[label] ? 1 : -1);
          for (CellId w : grown.cells) {
            if (w != kInvalidId) in_group.insert(w);
          }
          columns.push_back(std::move(grown));
          next_frontier.push_back(columns.size() - 1);
          ++result.columns_grown;
          if (columns.size() >= options.max_stages) break;
        }
        if (columns.size() >= options.max_stages) break;
      }
      frontier = std::move(next_frontier);
    }

    if (columns.size() < options.min_stages) continue;

    // Assemble: stable-sort columns by offset, stages in that order.
    std::stable_sort(
        columns.begin(), columns.end(),
        [](const Column& a, const Column& b) { return a.offset < b.offset; });
    StructureGroup g = StructureGroup::make(
        "xg" + std::to_string(result.annotation.groups.size()), lanes,
        columns.size());
    std::size_t filled = 0;
    std::unordered_set<CellId> seen;
    for (std::size_t s = 0; s < columns.size(); ++s) {
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        const CellId c = columns[s].cells[lane];
        // A cell must appear at most once per group (rigid-body movers
        // and the alignment gradients rely on it).
        if (c != kInvalidId && !seen.insert(c).second) {
          g.at(lane, s) = kInvalidId;
          continue;
        }
        g.at(lane, s) = c;
        if (c != kInvalidId) ++filled;
      }
    }
    if (filled < options.min_bits * options.min_stages) continue;
    g.confidence = static_cast<double>(filled) /
                   static_cast<double>(lanes * columns.size());
    for (CellId c : g.cells) {
      if (c != kInvalidId) claimed[c] = true;
    }
    result.annotation.groups.push_back(std::move(g));
  }

  result.seconds = timer.seconds();
  return result;
}

}  // namespace dp::extract
