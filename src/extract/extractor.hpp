#pragma once

#include <cstdint>
#include <vector>

#include "extract/signature.hpp"
#include "netlist/structure.hpp"

namespace dp::extract {

struct ExtractOptions {
  SignatureOptions signature;
  /// Minimum lanes (bit count) of a seed column / reported group.
  std::size_t min_bits = 4;
  /// Minimum stage columns of a reported group.
  std::size_t min_stages = 2;
  /// Adjacency edges (for chains and growth) only through nets with at
  /// most this many pins; larger nets are control/bus rails.
  std::size_t max_net_degree = 8;
  /// Bus seeding considers shared nets with up to this many pins.
  std::size_t max_bus_degree = 256;
  /// A growth step is accepted when at least this fraction of lanes find
  /// a matching next-stage cell (tolerates boundary irregularity).
  double growth_tau = 0.7;
  /// Cap on stage columns per group (runaway guard).
  std::size_t max_stages = 512;
};

struct ExtractResult {
  netlist::StructureAnnotation annotation;
  std::size_t seeds_tried = 0;
  std::size_t columns_grown = 0;
  double seconds = 0.0;
};

/// Datapath regularity extraction (the paper's first phase).
///
/// Pipeline: (1) WL-refined structural signatures fingerprint each cell's
/// local role; (2) seed columns are discovered as signature-homogeneous
/// chain paths (carry chains, mux cascades) and as same-port sink groups
/// of shared bus nets (write enables, broadcast data); (3) each seed is
/// grown sideways in lockstep -- a stage column extends to a neighbor
/// column when >= tau of its lanes reach a signature-identical cell
/// through the same (port, port, signature) edge label; (4) grown column
/// sets are assembled into bits x stages groups, pruned, and cells are
/// claimed first-come so groups never overlap.
ExtractResult extract_structures(const netlist::Netlist& nl,
                                 const ExtractOptions& options = {});

}  // namespace dp::extract
