#include "extract/metrics.hpp"

namespace dp::extract {

using netlist::CellId;
using netlist::kInvalidId;

ExtractionQuality compare_extraction(
    const netlist::Netlist& nl, const netlist::StructureAnnotation& extracted,
    const netlist::StructureAnnotation& truth) {
  ExtractionQuality q;
  q.groups_found = extracted.groups.size();

  const std::size_t n = nl.num_cells();
  struct TruthPos {
    int group = -1;
    std::size_t bit = 0;
    std::size_t stage = 0;
  };
  std::vector<TruthPos> pos(n);
  for (std::size_t g = 0; g < truth.groups.size(); ++g) {
    const auto& grp = truth.groups[g];
    for (std::size_t b = 0; b < grp.bits; ++b) {
      for (std::size_t s = 0; s < grp.stages; ++s) {
        const CellId c = grp.at(b, s);
        if (c != kInvalidId) {
          pos[c] = {static_cast<int>(g), b, s};
        }
      }
    }
  }

  const auto truth_member = truth.membership(n);
  const auto ext_member = extracted.membership(n);
  std::size_t hits = 0;
  for (CellId c = 0; c < n; ++c) {
    q.cells_truth += truth_member[c] ? 1u : 0u;
    q.cells_extracted += ext_member[c] ? 1u : 0u;
    hits += (truth_member[c] && ext_member[c]) ? 1u : 0u;
  }
  if (q.cells_extracted > 0) {
    q.precision =
        static_cast<double>(hits) / static_cast<double>(q.cells_extracted);
  }
  if (q.cells_truth > 0) {
    q.recall = static_cast<double>(hits) / static_cast<double>(q.cells_truth);
  }

  // Same-lane pair consistency, over both lane directions of each
  // extracted group (bit slices and stage columns both claim alignment).
  std::size_t pairs = 0, good = 0;
  auto check_line = [&](const std::vector<CellId>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      for (std::size_t j = i + 1; j < cells.size(); ++j) {
        const TruthPos& a = pos[cells[i]];
        const TruthPos& b = pos[cells[j]];
        ++pairs;
        if (a.group < 0 || b.group < 0) continue;
        // Within one truth group: aligned iff same bit or same stage.
        // Across truth groups (chained units merged by extraction): the
        // same bit index is the correct datapath alignment.
        if (a.group == b.group
                ? (a.bit == b.bit || a.stage == b.stage)
                : a.bit == b.bit) {
          ++good;
        }
      }
    }
  };
  for (const auto& g : extracted.groups) {
    for (std::size_t b = 0; b < g.bits; ++b) check_line(g.slice(b));
    for (std::size_t s = 0; s < g.stages; ++s) check_line(g.stage(s));
  }
  if (pairs > 0) {
    q.lane_accuracy = static_cast<double>(good) / static_cast<double>(pairs);
  }
  return q;
}

}  // namespace dp::extract
