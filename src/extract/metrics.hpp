#pragma once

#include "netlist/structure.hpp"

namespace dp::extract {

/// Extraction quality versus a ground-truth annotation (Table 2).
struct ExtractionQuality {
  std::size_t groups_found = 0;
  std::size_t cells_extracted = 0;
  std::size_t cells_truth = 0;
  /// Fraction of extracted datapath cells that are true datapath cells.
  double precision = 0.0;
  /// Fraction of true datapath cells that were extracted.
  double recall = 0.0;
  /// Fraction of same-lane cell pairs (within extracted groups) that are
  /// also structurally related in the truth (same slice or same stage of
  /// one truth group); transposition-insensitive by construction.
  double lane_accuracy = 0.0;
};

ExtractionQuality compare_extraction(
    const netlist::Netlist& nl, const netlist::StructureAnnotation& extracted,
    const netlist::StructureAnnotation& truth);

}  // namespace dp::extract
