#include "extract/signature.hpp"

#include <algorithm>

namespace dp::extract {

using netlist::CellId;
using netlist::PinId;

namespace {

std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) {
  // 64-bit mix (splitmix-style) folded into the running hash.
  v += 0x9E3779B97F4A7C15ULL;
  v = (v ^ (v >> 30)) * 0xBF58476D1CE4E5B9ULL;
  v = (v ^ (v >> 27)) * 0x94D049BB133111EBULL;
  v ^= v >> 31;
  return h * 0x100000001B3ULL ^ v;
}

}  // namespace

std::vector<std::uint64_t> cell_signatures(const netlist::Netlist& nl,
                                           const SignatureOptions& options) {
  const std::size_t n = nl.num_cells();
  std::vector<std::uint64_t> sig(n), next(n);

  // Round 0: function only. Fixed cells (pads) hash to a distinct family
  // so boundary cells see "pad" rather than a random neighbor.
  for (CellId c = 0; c < n; ++c) {
    sig[c] = hash_combine(0x5EEDULL,
                          static_cast<std::uint64_t>(nl.cell_type(c).func));
    if (nl.cell(c).fixed) sig[c] = hash_combine(sig[c], 0xF1D0ULL);
  }

  std::vector<std::uint64_t> neigh;
  for (std::size_t round = 0; round < options.rounds; ++round) {
    for (CellId c = 0; c < n; ++c) {
      std::uint64_t h = hash_combine(sig[c], 0xC0DEULL + round);
      for (PinId p : nl.cell(c).pins) {
        const auto& pin = nl.pin(p);
        const auto& net_pins = nl.net(pin.net).pins;
        std::uint64_t ph = hash_combine(0xBEEFULL, pin.port);
        if (net_pins.size() > options.fanout_limit) {
          // Control rail: only a coarse degree bucket.
          ph = hash_combine(ph, 0xFA40ULL + net_pins.size() / 8);
        } else {
          neigh.clear();
          for (PinId q : net_pins) {
            if (q == p) continue;
            const auto& other = nl.pin(q);
            neigh.push_back(
                hash_combine(sig[other.cell], other.port * 2 +
                                                  (other.dir ==
                                                           netlist::PinDir::
                                                               kOutput
                                                       ? 1u
                                                       : 0u)));
          }
          std::sort(neigh.begin(), neigh.end());
          for (std::uint64_t v : neigh) ph = hash_combine(ph, v);
        }
        // Pins are unordered within the cell hash? No: the port id is in
        // ph, and ports are a fixed set per type, so XOR keeps the hash
        // independent of pin creation order while staying port-sensitive.
        h ^= ph;
      }
      next[c] = h;
    }
    sig.swap(next);
  }
  return sig;
}

}  // namespace dp::extract
