#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace dp::extract {

struct SignatureOptions {
  /// Weisfeiler-Lehman-style refinement rounds. Round 0 hashes only the
  /// cell function; each further round folds in the neighbor signatures
  /// reachable through each pin. Small values keep array-boundary effects
  /// (bit 0 / bit N-1 see pads instead of neighbors) from contaminating
  /// interior bits.
  std::size_t rounds = 2;
  /// Nets with more pins than this are treated as control/bus rails: they
  /// contribute only their degree bucket, not their pin multiset, so a
  /// shared select/clock net cannot distinguish (or blow up) bit slices.
  std::size_t fanout_limit = 12;
};

/// Per-cell structural signature: cells with equal signatures are
/// candidates for being the same logic role in different bit slices.
std::vector<std::uint64_t> cell_signatures(const netlist::Netlist& nl,
                                           const SignatureOptions& options = {});

}  // namespace dp::extract
