#pragma once

#include <cmath>

namespace dp::geom {

/// 2-D point / vector in placement coordinates (database units are plain
/// doubles throughout; one site = `Design::site_width` units).
struct Point {
  double x = 0.0;
  double y = 0.0;

  Point() = default;
  Point(double x_, double y_) : x(x_), y(y_) {}

  Point& operator+=(const Point& o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  Point& operator-=(const Point& o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  Point& operator*=(double s) {
    x *= s;
    y *= s;
    return *this;
  }

  friend Point operator+(Point a, const Point& b) { return a += b; }
  friend Point operator-(Point a, const Point& b) { return a -= b; }
  friend Point operator*(Point a, double s) { return a *= s; }
  friend Point operator*(double s, Point a) { return a *= s; }
  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }

  double norm2() const { return x * x + y * y; }
  double norm() const { return std::sqrt(norm2()); }
};

/// Manhattan distance, the natural metric for wirelength.
inline double manhattan(const Point& a, const Point& b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

}  // namespace dp::geom
