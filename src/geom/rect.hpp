#pragma once

#include <algorithm>
#include <limits>

#include "geom/point.hpp"

namespace dp::geom {

/// Axis-aligned rectangle, closed on the lower-left edge. An "empty" Rect
/// (default-constructed) acts as the identity for expand()/bounding boxes.
struct Rect {
  double lx = std::numeric_limits<double>::infinity();
  double ly = std::numeric_limits<double>::infinity();
  double hx = -std::numeric_limits<double>::infinity();
  double hy = -std::numeric_limits<double>::infinity();

  Rect() = default;
  Rect(double lx_, double ly_, double hx_, double hy_)
      : lx(lx_), ly(ly_), hx(hx_), hy(hy_) {}

  static Rect from_center(const Point& center, double width, double height) {
    return {center.x - width / 2.0, center.y - height / 2.0,
            center.x + width / 2.0, center.y + height / 2.0};
  }

  bool empty() const { return lx > hx || ly > hy; }
  double width() const { return empty() ? 0.0 : hx - lx; }
  double height() const { return empty() ? 0.0 : hy - ly; }
  double area() const { return width() * height(); }
  Point center() const { return {(lx + hx) / 2.0, (ly + hy) / 2.0}; }

  /// Half-perimeter; the per-net HPWL contribution.
  double half_perimeter() const { return width() + height(); }

  void expand(const Point& p) {
    lx = std::min(lx, p.x);
    ly = std::min(ly, p.y);
    hx = std::max(hx, p.x);
    hy = std::max(hy, p.y);
  }

  void expand(const Rect& r) {
    if (r.empty()) return;
    lx = std::min(lx, r.lx);
    ly = std::min(ly, r.ly);
    hx = std::max(hx, r.hx);
    hy = std::max(hy, r.hy);
  }

  bool contains(const Point& p) const {
    return p.x >= lx && p.x <= hx && p.y >= ly && p.y <= hy;
  }

  /// True iff `o` lies fully inside this rectangle, grown by `tol` on
  /// every side.
  bool contains(const Rect& o, double tol = 0.0) const {
    return o.lx >= lx - tol && o.hx <= hx + tol && o.ly >= ly - tol &&
           o.hy <= hy + tol;
  }

  bool intersects(const Rect& o) const {
    return !empty() && !o.empty() && lx < o.hx && o.lx < hx && ly < o.hy &&
           o.ly < hy;
  }

  /// Area of the intersection with `o`; 0 when disjoint.
  double overlap_area(const Rect& o) const {
    const double w = std::min(hx, o.hx) - std::max(lx, o.lx);
    const double h = std::min(hy, o.hy) - std::max(ly, o.ly);
    return (w > 0.0 && h > 0.0) ? w * h : 0.0;
  }

  /// Nearest point inside the rectangle to `p` (p itself if contained).
  Point clamp(const Point& p) const {
    return {std::clamp(p.x, lx, hx), std::clamp(p.y, ly, hy)};
  }

  friend bool operator==(const Rect& a, const Rect& b) {
    return a.lx == b.lx && a.ly == b.ly && a.hx == b.hx && a.hy == b.hy;
  }
};

}  // namespace dp::geom
