#include "gp/density.hpp"

#include <algorithm>
#include <cmath>

#include "geom/rect.hpp"
#include "util/thread_pool.hpp"

namespace dp::gp {

using netlist::CellId;

namespace {

/// Chunk/block counts are fixed (independent of the thread count), so
/// every pass produces the same floating-point result for any pool size.
constexpr std::size_t kMaxParts = 64;
constexpr std::size_t kMinCellsPerChunk = 512;

/// Smallest power of two >= x (x >= 1).
std::size_t pow2_at_least(double x) {
  std::size_t p = 1;
  while (static_cast<double>(p) < x) p <<= 1;
  return p;
}

/// One axis of the bell-shaped potential and its signed derivative.
/// `d` is the signed distance cell-center minus bin-center; `wc` the cell
/// extent on this axis, `wb` the bin extent.
struct Bell {
  double p = 0.0;   ///< potential in [0, 1]
  double dp = 0.0;  ///< d(potential)/d(cell coordinate)
};

Bell bell(double d, double wc, double wb) {
  const double ad = std::abs(d);
  const double r1 = wc / 2.0 + wb;
  const double r2 = wc / 2.0 + 2.0 * wb;
  Bell out;
  if (ad <= r1) {
    const double a = 4.0 / ((wc + 2.0 * wb) * (wc + 4.0 * wb));
    out.p = 1.0 - a * ad * ad;
    out.dp = -2.0 * a * d;  // sign(d) * (-2 a |d|)
  } else if (ad <= r2) {
    const double b = 2.0 / (wb * (wc + 4.0 * wb));
    const double t = ad - r2;
    out.p = b * t * t;
    out.dp = 2.0 * b * t * (d >= 0.0 ? 1.0 : -1.0);
  }
  return out;
}

}  // namespace

DensityPenalty::DensityPenalty(const netlist::Netlist& nl,
                               const netlist::Design& design,
                               std::size_t bins_per_side)
    : nl_(&nl), design_(&design) {
  const std::size_t n_mov = nl.num_movable();
  nb_ = bins_per_side != 0
            ? bins_per_side
            : std::clamp<std::size_t>(
                  pow2_at_least(std::sqrt(static_cast<double>(n_mov))), 16,
                  512);
  const geom::Rect& core = design.core();
  bw_ = core.width() / static_cast<double>(nb_);
  bh_ = core.height() / static_cast<double>(nb_);
  target_per_bin_ = nl.movable_area() / static_cast<double>(nb_ * nb_);

  // Preload exact overlap of fixed cells that intrude into the core.
  preload_.assign(nb_ * nb_, 0.0);
  density_.assign(nb_ * nb_, 0.0);
  area_scale_.assign(nl.num_cells(), 1.0);
}

void DensityPenalty::preload_obstacles(const netlist::Placement& pl,
                                       const VarMap& vars) {
  preload_.assign(nb_ * nb_, 0.0);
  const geom::Rect& core = design_->core();
  const auto nbi = static_cast<long long>(nb_);
  for (CellId c = 0; c < nl_->num_cells(); ++c) {
    if (vars.var(c) != netlist::kInvalidId) continue;
    const geom::Rect r = geom::Rect::from_center(pl[c], nl_->cell_width(c),
                                                 nl_->cell_height(c));
    const auto bx0 = std::max<long long>(
        0, static_cast<long long>(std::floor((r.lx - core.lx) / bw_)));
    const auto bx1 = std::min<long long>(
        nbi - 1, static_cast<long long>(std::floor((r.hx - core.lx) / bw_)));
    const auto by0 = std::max<long long>(
        0, static_cast<long long>(std::floor((r.ly - core.ly) / bh_)));
    const auto by1 = std::min<long long>(
        nbi - 1, static_cast<long long>(std::floor((r.hy - core.ly) / bh_)));
    for (long long by = by0; by <= by1; ++by) {
      for (long long bx = bx0; bx <= bx1; ++bx) {
        const geom::Rect bin{core.lx + static_cast<double>(bx) * bw_,
                             core.ly + static_cast<double>(by) * bh_,
                             core.lx + static_cast<double>(bx + 1) * bw_,
                             core.ly + static_cast<double>(by + 1) * bh_};
        preload_[static_cast<std::size_t>(by) * nb_ +
                 static_cast<std::size_t>(bx)] += r.overlap_area(bin);
      }
    }
  }
}

void DensityPenalty::set_area_scale(std::vector<double> scale) {
  area_scale_ = std::move(scale);
  area_scale_.resize(nl_->num_cells(), 1.0);
  double scaled_total = 0.0;
  for (CellId c = 0; c < nl_->num_cells(); ++c) {
    if (!nl_->cell(c).fixed) {
      scaled_total += nl_->cell_area(c) * area_scale_[c];
    }
  }
  target_per_bin_ = scaled_total / static_cast<double>(nb_ * nb_);
  overflow_vars_ = nullptr;  // invalidate the cached overflow denominator
}

double DensityPenalty::eval(const netlist::Placement& pl, const VarMap& vars,
                            std::span<double> gx,
                            std::span<double> gy) const {
  const auto& nl = *nl_;
  const geom::Rect& core = design_->core();
  const auto nbi = static_cast<long long>(nb_);
  density_ = preload_;

  const auto movable = vars.movable_cells();
  const std::size_t n_mov = movable.size();
  foot_.resize(n_mov);

  // Fixed cell chunking shared by the footprint and gradient passes.
  const std::size_t cell_chunks =
      std::clamp<std::size_t>(n_mov / kMinCellsPerChunk, 1, kMaxParts);
  const std::size_t cells_per_chunk =
      n_mov > 0 ? (n_mov + cell_chunks - 1) / cell_chunks : 0;
  auto for_cells = [&](auto&& body) {
    if (n_mov == 0) return;
    auto task = [&](std::size_t k) {
      const std::size_t v1 =
          std::min(n_mov, (k + 1) * cells_per_chunk);
      for (std::size_t v = k * cells_per_chunk; v < v1; ++v) body(v);
    };
    if (pool_ != nullptr) {
      pool_->run(cell_chunks, task);
    } else {
      for (std::size_t k = 0; k < cell_chunks; ++k) task(k);
    }
  };

  // Pass 0: footprints and per-cell normalization (independent per cell).
  for_cells([&](std::size_t v) {
    const CellId c = movable[v];
    const double wc = nl.cell_width(c);
    const double hc = nl.cell_height(c);
    const double cx = pl[c].x;
    const double cy = pl[c].y;
    const double rx = wc / 2.0 + 2.0 * bw_;
    const double ry = hc / 2.0 + 2.0 * bh_;

    Footprint f;
    f.bx0 = std::max<long long>(
        0, static_cast<long long>(std::floor((cx - rx - core.lx) / bw_)));
    f.bx1 = std::min<long long>(
        nbi - 1, static_cast<long long>(std::floor((cx + rx - core.lx) / bw_)));
    f.by0 = std::max<long long>(
        0, static_cast<long long>(std::floor((cy - ry - core.ly) / bh_)));
    f.by1 = std::min<long long>(
        nbi - 1, static_cast<long long>(std::floor((cy + ry - core.ly) / bh_)));

    double norm = 0.0;
    for (long long by = f.by0; by <= f.by1; ++by) {
      const double bcy = core.ly + (static_cast<double>(by) + 0.5) * bh_;
      const Bell py = bell(cy - bcy, hc, bh_);
      if (py.p == 0.0) continue;
      for (long long bx = f.bx0; bx <= f.bx1; ++bx) {
        const double bcx = core.lx + (static_cast<double>(bx) + 0.5) * bw_;
        const Bell px = bell(cx - bcx, wc, bw_);
        norm += px.p * py.p;
      }
    }
    f.inv_norm = norm > 0.0 ? nl.cell_area(c) * area_scale_[c] / norm : 0.0;
    foot_[v] = f;
  });

  // Pass 1: accumulate smoothed density, partitioned by bin-row blocks.
  // Every bin row has exactly one owning block, which adds contributions
  // in ascending cell order -- the same order as a serial sweep, so the
  // grid is bitwise identical for any thread count, with no reduction.
  const std::size_t num_blocks = std::min(nb_, kMaxParts);
  const std::size_t rows_per_block = (nb_ + num_blocks - 1) / num_blocks;
  block_cells_.resize(num_blocks);
  for (auto& b : block_cells_) b.clear();
  for (std::size_t v = 0; v < n_mov; ++v) {
    if (foot_[v].inv_norm == 0.0) continue;
    const auto b0 = static_cast<std::size_t>(foot_[v].by0) / rows_per_block;
    const auto b1 = static_cast<std::size_t>(foot_[v].by1) / rows_per_block;
    for (std::size_t b = b0; b <= b1; ++b) {
      block_cells_[b].push_back(static_cast<std::uint32_t>(v));
    }
  }

  const bool one_sided = one_sided_cap_ >= 0.0;
  const double target = one_sided ? one_sided_cap_ : target_per_bin_;
  block_value_.assign(num_blocks, 0.0);

  auto block_task = [&](std::size_t b) {
    const auto r0 = static_cast<long long>(b * rows_per_block);
    const auto r1 = std::min<long long>(
        nbi, static_cast<long long>((b + 1) * rows_per_block));
    for (const std::uint32_t v : block_cells_[b]) {
      const Footprint& f = foot_[v];
      const CellId c = movable[v];
      const double wc = nl.cell_width(c);
      const double hc = nl.cell_height(c);
      const double cx = pl[c].x;
      const double cy = pl[c].y;
      const long long by_lo = std::max(f.by0, r0);
      const long long by_hi = std::min(f.by1, r1 - 1);
      for (long long by = by_lo; by <= by_hi; ++by) {
        const double bcy = core.ly + (static_cast<double>(by) + 0.5) * bh_;
        const Bell py = bell(cy - bcy, hc, bh_);
        if (py.p == 0.0) continue;
        for (long long bx = f.bx0; bx <= f.bx1; ++bx) {
          const double bcx = core.lx + (static_cast<double>(bx) + 0.5) * bw_;
          const Bell px = bell(cx - bcx, wc, bw_);
          density_[static_cast<std::size_t>(by) * nb_ +
                   static_cast<std::size_t>(bx)] += f.inv_norm * px.p * py.p;
        }
      }
    }
    // The block's rows are final now; fold its share of the penalty
    // value. In one-sided mode, under-full bins are free.
    double value = 0.0;
    const std::size_t i0 = static_cast<std::size_t>(r0) * nb_;
    const std::size_t i1 = static_cast<std::size_t>(r1) * nb_;
    for (std::size_t i = i0; i < i1; ++i) {
      double e = density_[i] - target;
      if (one_sided && e < 0.0) e = 0.0;
      value += e * e;
    }
    block_value_[b] = value;
  };
  if (pool_ != nullptr) {
    pool_->run(num_blocks, block_task);
  } else {
    for (std::size_t b = 0; b < num_blocks; ++b) block_task(b);
  }
  double value = 0.0;
  for (const double v : block_value_) value += v;

  // Pass 2: gradient via chain rule (normalization treated as constant,
  // the standard NTUplace approximation). Embarrassingly parallel over
  // cells into per-cell slots.
  cell_gx_.resize(n_mov);
  cell_gy_.resize(n_mov);
  for_cells([&](std::size_t v) {
    const Footprint& f = foot_[v];
    cell_gx_[v] = 0.0;
    cell_gy_[v] = 0.0;
    if (f.inv_norm == 0.0) return;
    const CellId c = movable[v];
    const double wc = nl.cell_width(c);
    const double hc = nl.cell_height(c);
    const double cx = pl[c].x;
    const double cy = pl[c].y;
    double gx_acc = 0.0, gy_acc = 0.0;
    for (long long by = f.by0; by <= f.by1; ++by) {
      const double bcy = core.ly + (static_cast<double>(by) + 0.5) * bh_;
      const Bell py = bell(cy - bcy, hc, bh_);
      for (long long bx = f.bx0; bx <= f.bx1; ++bx) {
        const double bcx = core.lx + (static_cast<double>(bx) + 0.5) * bw_;
        const Bell px = bell(cx - bcx, wc, bw_);
        double err = density_[static_cast<std::size_t>(by) * nb_ +
                              static_cast<std::size_t>(bx)] -
                     target;
        if (one_sided && err < 0.0) err = 0.0;
        gx_acc += 2.0 * err * f.inv_norm * px.dp * py.p;
        gy_acc += 2.0 * err * f.inv_norm * px.p * py.dp;
      }
    }
    cell_gx_[v] = gx_acc;
    cell_gy_[v] = gy_acc;
  });

  // Ordered reduction into the variables (several cells may share one
  // variable in rigid-body mode, so this stays serial and in cell order).
  for (std::size_t v = 0; v < n_mov; ++v) {
    const std::uint32_t var = vars.var(movable[v]);
    gx[var] += cell_gx_[v];
    gy[var] += cell_gy_[v];
  }
  return value;
}

double DensityPenalty::overflow(const netlist::Placement& pl,
                                const VarMap& vars,
                                double target_density) const {
  const auto& nl = *nl_;
  const geom::Rect& core = design_->core();
  std::vector<double> usage = preload_;
  const auto nbi = static_cast<long long>(nb_);

  for (const CellId c : vars.movable_cells()) {
    const geom::Rect r = geom::Rect::from_center(pl[c], nl.cell_width(c),
                                                 nl.cell_height(c));
    const auto bx0 = std::max<long long>(
        0, static_cast<long long>(std::floor((r.lx - core.lx) / bw_)));
    const auto bx1 = std::min<long long>(
        nbi - 1, static_cast<long long>(std::floor((r.hx - core.lx) / bw_)));
    const auto by0 = std::max<long long>(
        0, static_cast<long long>(std::floor((r.ly - core.ly) / bh_)));
    const auto by1 = std::min<long long>(
        nbi - 1, static_cast<long long>(std::floor((r.hy - core.ly) / bh_)));
    for (long long by = by0; by <= by1; ++by) {
      for (long long bx = bx0; bx <= bx1; ++bx) {
        const geom::Rect bin{core.lx + static_cast<double>(bx) * bw_,
                             core.ly + static_cast<double>(by) * bh_,
                             core.lx + static_cast<double>(bx + 1) * bw_,
                             core.ly + static_cast<double>(by + 1) * bh_};
        usage[static_cast<std::size_t>(by) * nb_ +
              static_cast<std::size_t>(bx)] +=
            r.overlap_area(bin) * area_scale_[c];
      }
    }
  }

  const double cap = bw_ * bh_ * target_density;
  double over = 0.0;
  for (double u : usage) over += std::max(0.0, u - cap);
  // The scaled movable-area denominator only changes with the VarMap or
  // the area scale; cache it instead of rescanning every call.
  if (overflow_vars_ != &vars || overflow_num_vars_ != vars.num_vars()) {
    double scaled_total = 0.0;
    for (const CellId c : vars.movable_cells()) {
      scaled_total += nl.cell_area(c) * area_scale_[c];
    }
    overflow_vars_ = &vars;
    overflow_num_vars_ = vars.num_vars();
    overflow_scaled_total_ = scaled_total;
  }
  return overflow_scaled_total_ > 0.0 ? over / overflow_scaled_total_ : 0.0;
}

}  // namespace dp::gp
