#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "gp/vars.hpp"
#include "netlist/design.hpp"

namespace dp::util {
class ThreadPool;
}

namespace dp::gp {

/// Bell-shaped (NTUplace3/APlace-style) smooth density penalty.
///
/// The core is covered by a uniform bin grid. Each movable cell spreads a
/// smooth, differentiable potential over nearby bins, normalized so its
/// total contribution equals its area. The penalty is
///   N(x, y) = sum_b (D_b - M_b)^2
/// where D_b is the smoothed area in bin b and M_b the per-bin target
/// (movable area spread uniformly). Fixed cells inside the core contribute
/// their exact rectangle overlap to D_b as a constant preload.
///
/// Evaluation parallelizes in three deterministic passes: footprints and
/// normalizations per cell chunk, accumulation partitioned by bin-row
/// blocks (each bin has exactly one owner, which adds contributions in
/// fixed cell order -- no reduction races, bitwise identical to the serial
/// loop), and the gradient embarrassingly parallel over cells with an
/// ordered per-variable reduction.
class DensityPenalty final : public ObjectiveTerm {
 public:
  DensityPenalty(const netlist::Netlist& nl, const netlist::Design& design,
                 std::size_t bins_per_side = 0 /* 0 = auto */);

  /// Switch to a one-sided penalty: only bins denser than `max_density`
  /// are penalized, under-full bins are free. The default (two-sided
  /// equality to the uniform target) spreads cells evenly over all free
  /// space; one-sided lets a sparse subset (e.g. glue placed around
  /// frozen plates) cluster at its wirelength optimum instead.
  void set_one_sided(double max_density) {
    one_sided_cap_ = bw_ * bh_ * max_density;
  }

  /// Attach a worker pool for parallel evaluation; null (the default)
  /// runs the same passes serially with identical results.
  void set_thread_pool(std::shared_ptr<util::ThreadPool> pool) {
    pool_ = std::move(pool);
  }

  /// Rebuild the fixed-area preload: every cell WITHOUT a variable in
  /// `vars` (netlist-fixed cells and cells frozen by a subset VarMap, e.g.
  /// committed datapath plates) contributes its exact rectangle overlap to
  /// the bins. Called by GlobalPlacer::place() before optimization.
  void preload_obstacles(const netlist::Placement& pl, const VarMap& vars);

  /// Per-cell area scaling for the density model (macro-shrink trick from
  /// mixed-size placement): cells that will legally pack solid -- datapath
  /// plate members -- contribute a reduced area, so a settled plate reads
  /// as exactly-at-target and the density force inside it vanishes instead
  /// of endlessly pushing the plate apart. The per-bin target is adjusted
  /// to the scaled total. `scale` is indexed by CellId; missing entries
  /// default to 1.
  void set_area_scale(std::vector<double> scale);

  double eval(const netlist::Placement& pl, const VarMap& vars,
              std::span<double> gx, std::span<double> gy) const override;

  /// Hard-overflow metric from the most recent eval(): the fraction of
  /// movable area in bins above `target` density (computed on the same
  /// grid but with the *exact* cell rectangles, not the smoothed bells).
  double overflow(const netlist::Placement& pl, const VarMap& vars,
                  double target_density) const;

  std::size_t bins_per_side() const { return nb_; }
  double bin_width() const { return bw_; }
  double bin_height() const { return bh_; }

 private:
  const netlist::Netlist* nl_;
  const netlist::Design* design_;
  std::size_t nb_ = 0;
  double bw_ = 0.0, bh_ = 0.0;
  double target_per_bin_ = 0.0;
  double one_sided_cap_ = -1.0;  ///< <0: two-sided equality mode
  std::vector<double> preload_;         ///< fixed-cell area per bin
  std::vector<double> area_scale_;      ///< per-cell density area factor
  mutable std::vector<double> density_;  ///< scratch: smoothed D_b

  std::shared_ptr<util::ThreadPool> pool_;

  // Scaled movable-area total cache (satellite: was a full cell scan per
  // overflow() call). The all-movable total feeds the per-bin target; the
  // per-VarMap total (a subset in glue-only mode) is the overflow
  // denominator, keyed by VarMap address and invalidated whenever the
  // area scale changes.
  mutable const VarMap* overflow_vars_ = nullptr;
  mutable std::size_t overflow_num_vars_ = 0;
  mutable double overflow_scaled_total_ = 0.0;

  // Per-evaluation scratch, persistent to keep allocation out of the hot
  // path (one evaluation in flight at a time).
  struct Footprint {
    long long bx0, bx1, by0, by1;
    double inv_norm;
  };
  mutable std::vector<Footprint> foot_;
  mutable std::vector<double> cell_gx_, cell_gy_;  ///< per movable index
  mutable std::vector<double> block_value_;        ///< per row-block sums
  mutable std::vector<std::vector<std::uint32_t>> block_cells_;
};

}  // namespace dp::gp
