#include "gp/global_placer.hpp"

#include <algorithm>
#include <cmath>

#include "eval/metrics.hpp"
#include "util/logger.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace dp::gp {

namespace {

/// Combines wirelength + lambda*density + extra terms into the flat
/// Objective interface consumed by the CG solver. Also clamps variables to
/// the core region before every evaluation (projected descent).
class CompositeObjective final : public Objective {
 public:
  CompositeObjective(const netlist::Netlist& nl,
                     const netlist::Design& design, const VarMap& vars,
                     const SmoothWirelength& wl, const DensityPenalty& den,
                     netlist::Placement& pl)
      : nl_(&nl), design_(&design), vars_(&vars), wl_(&wl), den_(&den),
        pl_(&pl) {}

  void set_lambda(double lambda) { lambda_ = lambda; }
  void set_extras(const std::vector<ExtraTerm>* extras,
                  const std::vector<double>* weights) {
    extras_ = extras;
    extra_weights_ = weights;
  }
  void set_profile(EvalProfile* profile) { profile_ = profile; }

  double eval(std::span<const double> v, std::span<double> grad) override {
    const std::size_t n = vars_->num_vars();
    // Project into the core (keeps the bell-shaped density well-defined).
    clamped_.assign(v.begin(), v.end());
    const geom::Rect& core = design_->core();
    for (std::size_t i = 0; i < n; ++i) {
      clamped_[i] = std::clamp(clamped_[i], core.lx, core.hx);
      clamped_[n + i] = std::clamp(clamped_[n + i], core.ly, core.hy);
    }
    vars_->scatter(clamped_, *pl_);

    util::Timer timer;
    gx_.assign(n, 0.0);
    gy_.assign(n, 0.0);
    double f = wl_->eval(*pl_, *vars_, gx_, gy_);
    if (profile_ != nullptr) profile_->wirelength.add(timer.seconds());

    timer.restart();
    dgx_.assign(n, 0.0);
    dgy_.assign(n, 0.0);
    f += lambda_ * den_->eval(*pl_, *vars_, dgx_, dgy_);
    for (std::size_t i = 0; i < n; ++i) {
      gx_[i] += lambda_ * dgx_[i];
      gy_[i] += lambda_ * dgy_[i];
    }
    if (profile_ != nullptr) profile_->density.add(timer.seconds());

    if (extras_ != nullptr) {
      for (std::size_t t = 0; t < extras_->size(); ++t) {
        const double w = (*extra_weights_)[t];
        if (w == 0.0) continue;
        timer.restart();
        dgx_.assign(n, 0.0);
        dgy_.assign(n, 0.0);
        f += w * (*extras_)[t].term->eval(*pl_, *vars_, dgx_, dgy_);
        for (std::size_t i = 0; i < n; ++i) {
          gx_[i] += w * dgx_[i];
          gy_[i] += w * dgy_[i];
        }
        if (profile_ != nullptr) {
          profile_->extra((*extras_)[t].name).add(timer.seconds());
        }
      }
    }

    for (std::size_t i = 0; i < n; ++i) {
      grad[i] = gx_[i];
      grad[n + i] = gy_[i];
    }
    return f;
  }

  /// Gradient L1 norms of the individual terms at the current placement,
  /// used for the lambda normalization.
  std::pair<double, double> gradient_norms(std::span<const double> v) {
    const std::size_t n = vars_->num_vars();
    clamped_.assign(v.begin(), v.end());
    vars_->scatter(clamped_, *pl_);
    gx_.assign(n, 0.0);
    gy_.assign(n, 0.0);
    wl_->eval(*pl_, *vars_, gx_, gy_);
    double wl_norm = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      wl_norm += std::abs(gx_[i]) + std::abs(gy_[i]);
    }
    gx_.assign(n, 0.0);
    gy_.assign(n, 0.0);
    den_->eval(*pl_, *vars_, gx_, gy_);
    double den_norm = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      den_norm += std::abs(gx_[i]) + std::abs(gy_[i]);
    }
    return {wl_norm, den_norm};
  }

 private:
  const netlist::Netlist* nl_;
  const netlist::Design* design_;
  const VarMap* vars_;
  const SmoothWirelength* wl_;
  const DensityPenalty* den_;
  netlist::Placement* pl_;
  double lambda_ = 0.0;
  const std::vector<ExtraTerm>* extras_ = nullptr;
  const std::vector<double>* extra_weights_ = nullptr;
  EvalProfile* profile_ = nullptr;
  std::vector<double> clamped_, gx_, gy_, dgx_, dgy_;
};

}  // namespace

GlobalPlacer::GlobalPlacer(const netlist::Netlist& nl,
                           const netlist::Design& design, GpOptions options)
    : GlobalPlacer(nl, design, options, VarMap(nl)) {}

GlobalPlacer::GlobalPlacer(const netlist::Netlist& nl,
                           const netlist::Design& design, GpOptions options,
                           VarMap vars)
    : nl_(&nl), design_(&design), options_(options), vars_(std::move(vars)) {
  pool_ = std::make_shared<util::ThreadPool>(options_.num_threads);
  density_ = std::make_unique<DensityPenalty>(nl, design,
                                              options_.bins_per_side);
  if (options_.one_sided_max_density >= 0.0) {
    density_->set_one_sided(options_.one_sided_max_density);
  }
  density_->set_thread_pool(pool_);
  const double gamma0 = options_.gamma_init_bins * density_->bin_width();
  wirelength_ =
      std::make_unique<SmoothWirelength>(nl, options_.wl_model, gamma0);
  wirelength_->set_thread_pool(pool_);
}

std::pair<double, double> GlobalPlacer::probe_norms(
    const ObjectiveTerm& term, const netlist::Placement& pl) const {
  const std::size_t n = vars_.num_vars();
  std::vector<double> gx(n, 0.0), gy(n, 0.0);
  wirelength_->eval(pl, vars_, gx, gy);
  double wl_norm = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    wl_norm += std::abs(gx[i]) + std::abs(gy[i]);
  }
  gx.assign(n, 0.0);
  gy.assign(n, 0.0);
  term.eval(pl, vars_, gx, gy);
  double term_norm = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    term_norm += std::abs(gx[i]) + std::abs(gy[i]);
  }
  return {wl_norm, term_norm};
}

GpResult GlobalPlacer::place(netlist::Placement& pl) {
  GpResult result;
  if (vars_.num_vars() == 0) {
    result.final_hpwl = eval::hpwl(*nl_, pl);
    return result;
  }

  density_->preload_obstacles(pl, vars_);

  if (options_.run_quadratic_init) {
    quadratic_initial_placement(*nl_, *design_, vars_, pl,
                                options_.quadratic);
  }

  CompositeObjective objective(*nl_, *design_, vars_, *wirelength_,
                               *density_, pl);
  std::vector<double> extra_weights(extras_.size(), 0.0);
  objective.set_extras(&extras_, &extra_weights);
  objective.set_profile(&result.profile);

  std::vector<double> v = vars_.gather(pl);

  // Lambda normalization from the initial gradient ratio.
  const auto [wl_norm, den_norm] = objective.gradient_norms(v);
  double lambda = den_norm > 0.0
                      ? options_.lambda_init_factor * wl_norm / den_norm
                      : 1.0;

  const double gamma0 = options_.gamma_init_bins * density_->bin_width();
  const double gamma1 = options_.gamma_final_bins * density_->bin_width();

  CgOptions cg;
  cg.max_iters = options_.inner_iters;
  cg.step_ref = density_->bin_width();

  double overflow =
      density_->overflow(pl, vars_, options_.target_density);
  double best_overflow = overflow;
  std::size_t stall = 0;

  for (std::size_t outer = 0; outer < options_.max_outer; ++outer) {
    if (outer_hook_) outer_hook_(outer, pl, *wirelength_);
    const double frac =
        options_.max_outer > 1
            ? static_cast<double>(outer) /
                  static_cast<double>(options_.max_outer - 1)
            : 1.0;
    const double gamma = gamma0 * std::pow(gamma1 / gamma0, frac);
    wirelength_->set_gamma(gamma);
    objective.set_lambda(lambda);
    const TermContext ctx{outer, overflow, lambda};
    for (std::size_t t = 0; t < extras_.size(); ++t) {
      extra_weights[t] = extras_[t].weight ? extras_[t].weight(ctx) : 0.0;
    }

    const CgResult inner = minimize_cg(objective, v, cg);
    result.total_cg_iterations += inner.iterations;
    result.total_evaluations += inner.evaluations;
    result.profile.line_search.calls += inner.line_search_evals;
    result.profile.line_search.seconds += inner.line_search_seconds;

    // The objective evaluates a core-clamped copy of the variables; fold
    // that projection back into the iterate so positions (and the next
    // outer iteration's starting point) stay inside the core.
    {
      const std::size_t n = vars_.num_vars();
      const geom::Rect& core = design_->core();
      for (std::size_t i = 0; i < n; ++i) {
        v[i] = std::clamp(v[i], core.lx, core.hx);
        v[n + i] = std::clamp(v[n + i], core.ly, core.hy);
      }
    }

    vars_.scatter(v, pl);
    overflow = density_->overflow(pl, vars_, options_.target_density);
    const double hp = eval::hpwl(*nl_, pl);
    result.trace.push_back(
        {outer, hp, wirelength_->value(pl), overflow, lambda, gamma});
    util::Logger::debug("gp outer %zu: hpwl=%.1f overflow=%.4f lambda=%.3g",
                        outer, hp, overflow, lambda);

    if (overflow <= options_.stop_overflow) break;
    // Plateau stop: highly regular designs with alignment active cannot
    // reach uniform density; once overflow stops improving, further
    // lambda ramping only degrades wirelength.
    if (overflow < best_overflow - 0.005) {
      best_overflow = overflow;
      stall = 0;
    } else if (options_.plateau_stall > 0 &&
               ++stall >= options_.plateau_stall) {
      break;
    }
    lambda *= options_.lambda_multiplier;
  }

  vars_.scatter(v, pl);
  result.final_hpwl = eval::hpwl(*nl_, pl);
  result.final_overflow = overflow;
  return result;
}

}  // namespace dp::gp
