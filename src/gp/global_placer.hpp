#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "gp/density.hpp"
#include "gp/optimizer.hpp"
#include "gp/profile.hpp"
#include "gp/quadratic.hpp"
#include "gp/vars.hpp"
#include "gp/wirelength.hpp"
#include "netlist/design.hpp"

namespace dp::util {
class ThreadPool;
}

namespace dp::gp {

struct GpOptions {
  WirelengthModel wl_model = WirelengthModel::kWa;
  /// Density threshold used by the overflow stop criterion.
  double target_density = 1.0;
  /// Stop when the hard density overflow drops below this fraction.
  double stop_overflow = 0.08;
  std::size_t max_outer = 40;
  std::size_t inner_iters = 50;
  /// Stop after this many outer iterations without overflow improvement
  /// (0 disables the plateau stop).
  std::size_t plateau_stall = 4;
  /// One-sided density: only bins above `one_sided_max_density` are
  /// penalized (see DensityPenalty::set_one_sided). < 0 keeps the default
  /// two-sided equality spreading.
  double one_sided_max_density = -1.0;
  /// Density penalty weight multiplier per outer iteration.
  double lambda_multiplier = 2.0;
  /// Initial density weight relative to the gradient-ratio normalization.
  double lambda_init_factor = 0.1;
  /// Wirelength smoothing: gamma in units of bin width, annealed
  /// geometrically from init to final across the outer iterations.
  double gamma_init_bins = 6.0;
  double gamma_final_bins = 0.8;
  std::size_t bins_per_side = 0;  ///< 0 = auto from design size
  bool run_quadratic_init = true;
  QuadraticOptions quadratic;
  /// Worker threads for the wirelength/density gradient kernels
  /// (0 = hardware concurrency). Results are bitwise identical for every
  /// thread count: the kernels use fixed chunk boundaries and ordered
  /// reductions.
  std::size_t num_threads = 1;
};

/// One sample of the convergence trace (reconstructed Fig. 3 series).
struct GpTracePoint {
  std::size_t outer = 0;
  double hpwl = 0.0;
  double smooth_wl = 0.0;
  double overflow = 0.0;
  double lambda = 0.0;
  double gamma = 0.0;
};

struct GpResult {
  std::vector<GpTracePoint> trace;
  double final_hpwl = 0.0;
  double final_overflow = 0.0;
  std::size_t total_cg_iterations = 0;
  std::size_t total_evaluations = 0;
  /// Per-term call counts and wall time of this run's evaluations.
  EvalProfile profile;
};

/// Scheduling context handed to extra-term weight callbacks each outer
/// iteration. `lambda` is the current density weight: terms that must hold
/// their ground against density spreading (like the structure alignment
/// penalty) scale their weight with it.
struct TermContext {
  std::size_t outer = 0;
  double overflow = 1.0;
  double lambda = 0.0;
};

/// An additional objective term (e.g. the structure alignment penalty)
/// whose weight is re-evaluated at the start of every outer iteration.
struct ExtraTerm {
  const ObjectiveTerm* term = nullptr;
  std::function<double(const TermContext&)> weight;
  /// Label under which the term's evaluations are profiled.
  std::string name = "extra";
};

/// NTUplace3-style nonlinear analytical global placer:
///   minimize  WL_smooth(x) + lambda * Density(x) + sum_i w_i * Extra_i(x)
/// with conjugate gradient inner iterations and a geometric lambda ramp,
/// until the hard density overflow is below the stop threshold.
class GlobalPlacer {
 public:
  GlobalPlacer(const netlist::Netlist& nl, const netlist::Design& design,
               GpOptions options = {});

  /// With an explicit variable map (e.g. rigid-body mode for the second
  /// placement phase, where legalized datapath plates move as units).
  GlobalPlacer(const netlist::Netlist& nl, const netlist::Design& design,
               GpOptions options, VarMap vars);

  /// Register an extra objective term; must outlive place().
  void add_term(ExtraTerm term) { extras_.push_back(std::move(term)); }

  /// Install a callback invoked at the start of every outer iteration
  /// with the current placement and the wirelength term. Timing-driven
  /// placement uses it to re-derive criticality-based net weight scales
  /// (SmoothWirelength::set_net_weight_scale) between iterations.
  void set_outer_hook(
      std::function<void(std::size_t, const netlist::Placement&,
                         SmoothWirelength&)>
          hook) {
    outer_hook_ = std::move(hook);
  }

  /// Forward a per-cell density area scale (see DensityPenalty).
  void set_density_area_scale(std::vector<double> scale) {
    density_->set_area_scale(std::move(scale));
  }

  /// L1 gradient norms (wirelength, term) at the given placement; used by
  /// weight schedules to normalize a term against the wirelength force.
  std::pair<double, double> probe_norms(const ObjectiveTerm& term,
                                        const netlist::Placement& pl) const;

  const VarMap& vars() const { return vars_; }
  const DensityPenalty& density() const { return *density_; }
  const GpOptions& options() const { return options_; }

  /// Run global placement; `pl` provides fixed-cell positions and the
  /// movable starting point, and receives the result.
  GpResult place(netlist::Placement& pl);

 private:
  const netlist::Netlist* nl_;
  const netlist::Design* design_;
  GpOptions options_;
  VarMap vars_;
  std::shared_ptr<util::ThreadPool> pool_;
  std::unique_ptr<SmoothWirelength> wirelength_;
  std::unique_ptr<DensityPenalty> density_;
  std::vector<ExtraTerm> extras_;
  std::function<void(std::size_t, const netlist::Placement&,
                     SmoothWirelength&)>
      outer_hook_;
};

}  // namespace dp::gp
