#include "gp/optimizer.hpp"

#include <algorithm>
#include <cmath>

#include "util/timer.hpp"

namespace dp::gp {

namespace {

double dot(std::span<const double> a, std::span<const double> b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double inf_norm(std::span<const double> a) {
  double m = 0.0;
  for (double x : a) m = std::max(m, std::abs(x));
  return m;
}

}  // namespace

CgResult minimize_cg(Objective& objective, std::vector<double>& vars,
                     const CgOptions& options) {
  CgResult result;
  const std::size_t n = vars.size();
  if (n == 0) return result;

  std::vector<double> grad(n, 0.0), prev_grad(n, 0.0), dir(n, 0.0);
  std::vector<double> trial(n, 0.0);

  double f = objective.eval(vars, grad);
  ++result.evaluations;
  for (std::size_t i = 0; i < n; ++i) dir[i] = -grad[i];

  for (std::size_t iter = 0; iter < options.max_iters; ++iter) {
    ++result.iterations;

    double g_dot_d = dot(grad, dir);
    if (g_dot_d >= 0.0) {
      // Not a descent direction: restart with steepest descent.
      for (std::size_t i = 0; i < n; ++i) dir[i] = -grad[i];
      g_dot_d = dot(grad, dir);
      if (g_dot_d >= 0.0) break;  // gradient is ~zero
    }

    const double dmax = inf_norm(dir);
    if (dmax == 0.0) break;
    double alpha = options.step_ref / dmax;

    // Armijo backtracking.
    double f_new = f;
    bool accepted = false;
    const util::Timer ls_timer;
    for (std::size_t bt = 0; bt <= options.max_backtracks; ++bt) {
      for (std::size_t i = 0; i < n; ++i) trial[i] = vars[i] + alpha * dir[i];
      // Value-only probe: gradient span reused but overwritten on accept.
      f_new = objective.eval(trial, prev_grad);
      ++result.evaluations;
      ++result.line_search_evals;
      if (f_new <= f + options.armijo_c1 * alpha * g_dot_d) {
        accepted = true;
        break;
      }
      alpha *= 0.5;
    }
    result.line_search_seconds += ls_timer.seconds();
    if (!accepted) break;  // line search failed; gradient likely noisy

    vars.swap(trial);
    std::swap(grad, prev_grad);  // prev_grad now holds the OLD gradient
    const double f_old = f;
    f = f_new;

    // prev_grad = old gradient, grad = new gradient (from the accepted
    // trial evaluation above).
    double beta_num = 0.0, beta_den = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      beta_num += grad[i] * (grad[i] - prev_grad[i]);
      beta_den += prev_grad[i] * prev_grad[i];
    }
    const double beta =
        beta_den > 0.0 ? std::max(0.0, beta_num / beta_den) : 0.0;
    for (std::size_t i = 0; i < n; ++i) dir[i] = -grad[i] + beta * dir[i];

    if (std::abs(f_old - f) <= options.rel_tol * (std::abs(f_old) + 1e-12)) {
      break;
    }
  }

  result.final_value = f;
  return result;
}

}  // namespace dp::gp
