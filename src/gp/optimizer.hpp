#pragma once

#include <functional>
#include <span>
#include <vector>

namespace dp::gp {

/// A smooth function R^n -> R with gradient, minimized by the CG solver.
class Objective {
 public:
  virtual ~Objective() = default;
  /// Writes the full gradient into `grad` (overwrite, not accumulate) and
  /// returns the objective value.
  virtual double eval(std::span<const double> vars,
                      std::span<double> grad) = 0;
};

struct CgOptions {
  std::size_t max_iters = 100;
  /// Stop when the objective improves by less than this relative amount
  /// over an iteration.
  double rel_tol = 1e-5;
  /// Reference trial-step length: the first line-search trial moves the
  /// fastest coordinate by this distance (typically one bin width).
  double step_ref = 1.0;
  /// Armijo sufficient-decrease constant.
  double armijo_c1 = 1e-4;
  std::size_t max_backtracks = 12;
};

struct CgResult {
  std::size_t iterations = 0;
  std::size_t evaluations = 0;
  double final_value = 0.0;
  /// Value-only probes spent inside the Armijo backtracking loop (a
  /// subset of `evaluations`), and their cumulative wall time; feeds the
  /// line-search entry of gp::EvalProfile.
  std::size_t line_search_evals = 0;
  double line_search_seconds = 0.0;
};

/// Polak-Ribiere+ nonlinear conjugate gradient with Armijo backtracking
/// line search and automatic restarts. `vars` is updated in place.
CgResult minimize_cg(Objective& objective, std::vector<double>& vars,
                     const CgOptions& options);

}  // namespace dp::gp
