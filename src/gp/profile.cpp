#include "gp/profile.hpp"

#include <cstdio>

namespace dp::gp {

TermProfile& EvalProfile::extra(const std::string& name) {
  for (auto& [n, term] : extras) {
    if (n == name) return term;
  }
  extras.emplace_back(name, TermProfile{});
  return extras.back().second;
}

void EvalProfile::merge(const EvalProfile& other) {
  wirelength.merge(other.wirelength);
  density.merge(other.density);
  line_search.merge(other.line_search);
  for (const auto& [name, term] : other.extras) extra(name).merge(term);
}

std::string EvalProfile::to_string() const {
  char buf[128];
  auto fmt = [&buf](const char* name, const TermProfile& t) {
    std::snprintf(buf, sizeof buf, "%s %zux/%.3fs", name, t.calls,
                  t.seconds);
    return std::string(buf);
  };
  std::string out = fmt("wl", wirelength);
  out += " | " + fmt("density", density);
  for (const auto& [name, term] : extras) {
    out += " | " + fmt(name.c_str(), term);
  }
  out += " | " + fmt("line-search", line_search);
  return out;
}

}  // namespace dp::gp
