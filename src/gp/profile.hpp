#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace dp::gp {

/// Cumulative call count and wall time of one objective term.
struct TermProfile {
  std::size_t calls = 0;
  double seconds = 0.0;

  void add(double s) {
    ++calls;
    seconds += s;
  }
  void merge(const TermProfile& other) {
    calls += other.calls;
    seconds += other.seconds;
  }
};

/// Per-term evaluation profile of a global-placement run: how often each
/// objective term was evaluated and how much wall time it consumed, so
/// kernel speedups are measured instead of guessed. The wirelength and
/// density entries cover every CompositeObjective evaluation (gradient
/// steps and line-search probes alike); `line_search` separately counts
/// the value-only probes inside the CG backtracking loop, whose time is
/// already included in the per-term entries.
struct EvalProfile {
  TermProfile wirelength;
  TermProfile density;
  TermProfile line_search;
  /// Extra objective terms by name, in registration order (e.g.
  /// "alignment", "overlap" in the structure-aware flow).
  std::vector<std::pair<std::string, TermProfile>> extras;

  /// The entry for `name`, created on first use.
  TermProfile& extra(const std::string& name);

  void merge(const EvalProfile& other);

  /// Compact one-line rendering for logs and the CLI, e.g.
  ///   "wl 812x/0.41s | density 812x/0.77s | align 406x/0.08s | ls 590x/0.9s"
  std::string to_string() const;
};

}  // namespace dp::gp
