#include "gp/quadratic.hpp"

#include <algorithm>

namespace dp::gp {

using netlist::CellId;
using netlist::NetId;
using netlist::PinId;

void quadratic_initial_placement(const netlist::Netlist& nl,
                                 const netlist::Design& design,
                                 const VarMap& vars, netlist::Placement& pl,
                                 const QuadraticOptions& options) {
  const geom::Rect& core = design.core();
  const std::size_t num_nets = nl.num_nets();

  std::vector<double> net_sum_x(num_nets), net_sum_y(num_nets);
  std::vector<double> net_deg(num_nets);

  for (std::size_t sweep = 0; sweep < options.sweeps; ++sweep) {
    // Net centroids from the current placement.
    for (NetId n = 0; n < num_nets; ++n) {
      double sx = 0.0, sy = 0.0;
      for (PinId p : nl.net(n).pins) {
        const geom::Point pos = nl.pin_position(p, pl);
        sx += pos.x;
        sy += pos.y;
      }
      net_sum_x[n] = sx;
      net_sum_y[n] = sy;
      net_deg[n] = static_cast<double>(nl.net(n).pins.size());
    }

    // Jacobi update: each movable cell moves to the weighted average of
    // its nets' other-pin centroids.
    for (const CellId c : vars.movable_cells()) {
      double acc_x = 0.0, acc_y = 0.0, acc_w = 0.0;
      for (PinId p : nl.cell(c).pins) {
        const NetId n = nl.pin(p).net;
        const double deg = net_deg[n];
        if (deg < 2.0) continue;
        const geom::Point own = nl.pin_position(p, pl);
        const double w = nl.net(n).weight;
        // Average position of the net's other pins.
        acc_x += w * (net_sum_x[n] - own.x) / (deg - 1.0);
        acc_y += w * (net_sum_y[n] - own.y) / (deg - 1.0);
        acc_w += w;
      }
      if (acc_w <= 0.0) continue;
      pl[c].x = std::clamp(acc_x / acc_w, core.lx, core.hx);
      pl[c].y = std::clamp(acc_y / acc_w, core.ly, core.hy);
    }
  }

  if (options.jitter > 0.0) {
    util::Rng rng(options.seed);
    const double j = options.jitter * design.row_height();
    for (const CellId c : vars.movable_cells()) {
      pl[c].x = std::clamp(pl[c].x + rng.uniform(-j, j), core.lx, core.hx);
      pl[c].y = std::clamp(pl[c].y + rng.uniform(-j, j), core.ly, core.hy);
    }
  }
}

}  // namespace dp::gp
