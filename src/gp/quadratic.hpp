#pragma once

#include "gp/vars.hpp"
#include "netlist/design.hpp"
#include "util/prng.hpp"

namespace dp::gp {

struct QuadraticOptions {
  /// Jacobi sweeps of the quadratic (clique/star) net model.
  std::size_t sweeps = 150;
  /// Random jitter (fraction of a row height) added at the end to break
  /// exact coordinate ties between identically connected cells.
  double jitter = 0.25;
  std::uint64_t seed = 42;
};

/// Quadratic-wirelength initial placement: every movable cell is iterated
/// to the weighted average of its nets' other-pin centroids (a Jacobi
/// relaxation of the clique-model normal equations), anchored by the fixed
/// pads. Positions are clamped to the core. This provides the warm start
/// for the nonlinear global placement.
void quadratic_initial_placement(const netlist::Netlist& nl,
                                 const netlist::Design& design,
                                 const VarMap& vars, netlist::Placement& pl,
                                 const QuadraticOptions& options = {});

}  // namespace dp::gp
