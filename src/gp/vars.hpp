#pragma once

#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace dp::gp {

/// Maps between optimizer variables and the full Placement (all cells).
///
/// Two modes:
///  - free mode (default): every movable cell owns one (x, y) variable;
///  - rigid-body mode: cells may be grouped into rigid bodies that share a
///    single variable, each cell at a fixed offset from the body origin.
///    The second global-placement phase uses this to move legalized
///    datapath plates as units while glue cells stay free.
///
/// Fixed cells never have variables; they contribute to objectives through
/// their placement positions only.
class VarMap {
 public:
  /// Free mode: one variable per movable cell.
  explicit VarMap(const netlist::Netlist& nl) {
    var_of_.assign(nl.num_cells(), netlist::kInvalidId);
    offset_x_.assign(nl.num_cells(), 0.0);
    offset_y_.assign(nl.num_cells(), 0.0);
    for (netlist::CellId c = 0; c < nl.num_cells(); ++c) {
      if (!nl.cell(c).fixed) {
        var_of_[c] = static_cast<std::uint32_t>(num_vars_++);
        movable_.push_back(c);
        rep_.push_back(c);
      }
    }
  }

  /// Subset mode: only the masked movable cells get variables; everything
  /// else is treated as an obstacle at its current placement position.
  /// Used by the glue-only placement phase around frozen datapath plates.
  VarMap(const netlist::Netlist& nl, const std::vector<bool>& movable_mask) {
    var_of_.assign(nl.num_cells(), netlist::kInvalidId);
    offset_x_.assign(nl.num_cells(), 0.0);
    offset_y_.assign(nl.num_cells(), 0.0);
    for (netlist::CellId c = 0; c < nl.num_cells(); ++c) {
      if (!nl.cell(c).fixed && movable_mask[c]) {
        var_of_[c] = static_cast<std::uint32_t>(num_vars_++);
        movable_.push_back(c);
        rep_.push_back(c);
      }
    }
  }

  /// Rigid-body mode: each entry of `bodies` is a set of movable cells
  /// sharing one variable; offsets are taken from their current relative
  /// positions in `pl` (the first cell is the body origin). Movable cells
  /// in no body each get their own variable.
  VarMap(const netlist::Netlist& nl, const netlist::Placement& pl,
         const std::vector<std::vector<netlist::CellId>>& bodies) {
    var_of_.assign(nl.num_cells(), netlist::kInvalidId);
    offset_x_.assign(nl.num_cells(), 0.0);
    offset_y_.assign(nl.num_cells(), 0.0);
    for (const auto& body : bodies) {
      std::uint32_t var = netlist::kInvalidId;
      netlist::CellId origin = netlist::kInvalidId;
      for (netlist::CellId c : body) {
        if (nl.cell(c).fixed || var_of_[c] != netlist::kInvalidId) continue;
        if (var == netlist::kInvalidId) {
          var = static_cast<std::uint32_t>(num_vars_++);
          origin = c;
          rep_.push_back(c);
        }
        var_of_[c] = var;
        offset_x_[c] = pl[c].x - pl[origin].x;
        offset_y_[c] = pl[c].y - pl[origin].y;
        movable_.push_back(c);
      }
    }
    for (netlist::CellId c = 0; c < nl.num_cells(); ++c) {
      if (!nl.cell(c).fixed && var_of_[c] == netlist::kInvalidId) {
        var_of_[c] = static_cast<std::uint32_t>(num_vars_++);
        movable_.push_back(c);
        rep_.push_back(c);
      }
    }
  }

  std::size_t num_vars() const { return num_vars_; }

  /// Representative cell of a variable (the body origin in rigid mode).
  netlist::CellId cell(std::size_t var) const { return rep_[var]; }

  /// All movable cells, each appearing once (several may share a var).
  std::span<const netlist::CellId> movable_cells() const { return movable_; }

  /// kInvalidId for fixed cells.
  std::uint32_t var(netlist::CellId cell) const { return var_of_[cell]; }
  bool is_movable(netlist::CellId cell) const {
    return var_of_[cell] != netlist::kInvalidId;
  }

  double offset_x(netlist::CellId cell) const { return offset_x_[cell]; }
  double offset_y(netlist::CellId cell) const { return offset_y_[cell]; }

  /// Copy variable vector (x0..xn-1, y0..yn-1) into the placement.
  void scatter(std::span<const double> vars, netlist::Placement& pl) const {
    const std::size_t n = num_vars_;
    for (netlist::CellId c : movable_) {
      const std::uint32_t v = var_of_[c];
      pl[c].x = vars[v] + offset_x_[c];
      pl[c].y = vars[n + v] + offset_y_[c];
    }
  }

  /// Copy movable positions out of the placement into a variable vector.
  std::vector<double> gather(const netlist::Placement& pl) const {
    const std::size_t n = num_vars_;
    std::vector<double> vars(2 * n);
    for (std::size_t v = 0; v < n; ++v) {
      vars[v] = pl[rep_[v]].x;
      vars[n + v] = pl[rep_[v]].y;
    }
    return vars;
  }

 private:
  std::size_t num_vars_ = 0;
  std::vector<netlist::CellId> movable_;
  std::vector<netlist::CellId> rep_;
  std::vector<std::uint32_t> var_of_;
  std::vector<double> offset_x_, offset_y_;
};

/// One additive term of the global-placement objective. Implementations
/// accumulate (+=) their gradient into gx/gy, indexed by variable.
class ObjectiveTerm {
 public:
  virtual ~ObjectiveTerm() = default;

  /// Returns the term's value; adds d(term)/dx into gx and d/dy into gy.
  virtual double eval(const netlist::Placement& pl, const VarMap& vars,
                      std::span<double> gx, std::span<double> gy) const = 0;
};

}  // namespace dp::gp
