#include "gp/wirelength.hpp"

#include <cmath>
#include <vector>

namespace dp::gp {

using netlist::NetId;
using netlist::PinId;

SmoothWirelength::SmoothWirelength(const netlist::Netlist& nl,
                                   WirelengthModel model, double gamma)
    : nl_(&nl), model_(model), gamma_(gamma) {}

namespace {

/// Per-net, per-axis scratch vectors reused across nets to avoid churn.
struct Scratch {
  std::vector<double> coord;
  std::vector<double> wmax;  ///< e^{(x - max)/gamma}
  std::vector<double> wmin;  ///< e^{(min - x)/gamma}
};

/// Log-sum-exp value and per-pin gradient for one axis of one net.
/// grad[i] receives d/dx_i; returns the smoothed extent (>= true extent).
double lse_axis(const Scratch& s, double gamma, std::span<double> grad) {
  const std::size_t n = s.coord.size();
  double smax = 0.0, smin = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    smax += s.wmax[i];
    smin += s.wmin[i];
  }
  double max_c = s.coord[0], min_c = s.coord[0];
  for (double c : s.coord) {
    max_c = std::max(max_c, c);
    min_c = std::min(min_c, c);
  }
  for (std::size_t i = 0; i < n; ++i) {
    grad[i] = s.wmax[i] / smax - s.wmin[i] / smin;
  }
  return (max_c + gamma * std::log(smax)) - (min_c - gamma * std::log(smin));
}

/// Weighted-average value and per-pin gradient for one axis of one net.
double wa_axis(const Scratch& s, double gamma, std::span<double> grad) {
  const std::size_t n = s.coord.size();
  double smax = 0.0, amax = 0.0, smin = 0.0, amin = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    smax += s.wmax[i];
    amax += s.coord[i] * s.wmax[i];
    smin += s.wmin[i];
    amin += s.coord[i] * s.wmin[i];
  }
  const double hi = amax / smax;
  const double lo = amin / smin;
  for (std::size_t i = 0; i < n; ++i) {
    const double ghi = s.wmax[i] / smax * (1.0 + (s.coord[i] - hi) / gamma);
    const double glo = s.wmin[i] / smin * (1.0 - (s.coord[i] - lo) / gamma);
    grad[i] = ghi - glo;
  }
  return hi - lo;
}

}  // namespace

double SmoothWirelength::eval(const netlist::Placement& pl,
                              const VarMap& vars, std::span<double> gx,
                              std::span<double> gy) const {
  const auto& nl = *nl_;
  const std::size_t nv = vars.num_vars();
  double total = 0.0;
  Scratch sx, sy;
  std::vector<double> gpin_x, gpin_y;

  for (NetId n = 0; n < nl.num_nets(); ++n) {
    const auto& pins = nl.net(n).pins;
    if (pins.size() < 2) continue;
    const double weight = nl.net(n).weight;
    const std::size_t deg = pins.size();

    sx.coord.resize(deg);
    sy.coord.resize(deg);
    sx.wmax.resize(deg);
    sx.wmin.resize(deg);
    sy.wmax.resize(deg);
    sy.wmin.resize(deg);
    gpin_x.assign(deg, 0.0);
    gpin_y.assign(deg, 0.0);

    double max_x = -1e300, min_x = 1e300, max_y = -1e300, min_y = 1e300;
    for (std::size_t i = 0; i < deg; ++i) {
      const geom::Point p = nl.pin_position(pins[i], pl);
      sx.coord[i] = p.x;
      sy.coord[i] = p.y;
      max_x = std::max(max_x, p.x);
      min_x = std::min(min_x, p.x);
      max_y = std::max(max_y, p.y);
      min_y = std::min(min_y, p.y);
    }
    for (std::size_t i = 0; i < deg; ++i) {
      sx.wmax[i] = std::exp((sx.coord[i] - max_x) / gamma_);
      sx.wmin[i] = std::exp((min_x - sx.coord[i]) / gamma_);
      sy.wmax[i] = std::exp((sy.coord[i] - max_y) / gamma_);
      sy.wmin[i] = std::exp((min_y - sy.coord[i]) / gamma_);
    }

    double value;
    if (model_ == WirelengthModel::kLse) {
      value = lse_axis(sx, gamma_, gpin_x) + lse_axis(sy, gamma_, gpin_y);
    } else {
      value = wa_axis(sx, gamma_, gpin_x) + wa_axis(sy, gamma_, gpin_y);
    }
    total += weight * value;

    for (std::size_t i = 0; i < deg; ++i) {
      const auto v = vars.var(nl.pin(pins[i]).cell);
      if (v == netlist::kInvalidId) continue;
      gx[v] += weight * gpin_x[i];
      gy[v] += weight * gpin_y[i];
    }
    (void)nv;
  }
  return total;
}

double SmoothWirelength::value(const netlist::Placement& pl) const {
  // Evaluate with throwaway gradients against an empty VarMap-free path:
  // reuse eval() with zero-capacity spans is unsafe, so compute directly.
  const auto& nl = *nl_;
  double total = 0.0;
  Scratch sx, sy;
  std::vector<double> scratch_grad;
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    const auto& pins = nl.net(n).pins;
    if (pins.size() < 2) continue;
    const std::size_t deg = pins.size();
    sx.coord.resize(deg);
    sy.coord.resize(deg);
    sx.wmax.resize(deg);
    sx.wmin.resize(deg);
    sy.wmax.resize(deg);
    sy.wmin.resize(deg);
    scratch_grad.assign(deg, 0.0);
    double max_x = -1e300, min_x = 1e300, max_y = -1e300, min_y = 1e300;
    for (std::size_t i = 0; i < deg; ++i) {
      const geom::Point p = nl.pin_position(pins[i], pl);
      sx.coord[i] = p.x;
      sy.coord[i] = p.y;
      max_x = std::max(max_x, p.x);
      min_x = std::min(min_x, p.x);
      max_y = std::max(max_y, p.y);
      min_y = std::min(min_y, p.y);
    }
    for (std::size_t i = 0; i < deg; ++i) {
      sx.wmax[i] = std::exp((sx.coord[i] - max_x) / gamma_);
      sx.wmin[i] = std::exp((min_x - sx.coord[i]) / gamma_);
      sy.wmax[i] = std::exp((sy.coord[i] - max_y) / gamma_);
      sy.wmin[i] = std::exp((min_y - sy.coord[i]) / gamma_);
    }
    double value;
    if (model_ == WirelengthModel::kLse) {
      value = lse_axis(sx, gamma_, scratch_grad) +
              lse_axis(sy, gamma_, scratch_grad);
    } else {
      value = wa_axis(sx, gamma_, scratch_grad) +
              wa_axis(sy, gamma_, scratch_grad);
    }
    total += nl.net(n).weight * value;
  }
  return total;
}

}  // namespace dp::gp
