#include "gp/wirelength.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/thread_pool.hpp"

namespace dp::gp {

using netlist::NetId;
using netlist::PinId;

namespace {

/// Net chunks are balanced by pin count; boundaries depend only on the
/// netlist (never on the thread count), so partial sums reduce in the
/// same order no matter how many workers run.
constexpr std::size_t kMinPinsPerChunk = 2048;
constexpr std::size_t kMaxChunks = 64;

/// Log-sum-exp extent and (optional) per-pin gradient for one axis of one
/// net. `grad`, when non-null, receives weight * d/dc_i.
double lse_axis(const double* coord, std::size_t n, double max_c,
                double min_c, const double* wmax, const double* wmin,
                double gamma, double weight, double* grad) {
  double smax = 0.0, smin = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    smax += wmax[i];
    smin += wmin[i];
  }
  if (grad != nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      grad[i] = weight * (wmax[i] / smax - wmin[i] / smin);
    }
  }
  (void)coord;
  return (max_c + gamma * std::log(smax)) - (min_c - gamma * std::log(smin));
}

/// Weighted-average extent and (optional) per-pin gradient for one axis.
double wa_axis(const double* coord, std::size_t n, double /*max_c*/,
               double /*min_c*/, const double* wmax, const double* wmin,
               double gamma, double weight, double* grad) {
  double smax = 0.0, amax = 0.0, smin = 0.0, amin = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    smax += wmax[i];
    amax += coord[i] * wmax[i];
    smin += wmin[i];
    amin += coord[i] * wmin[i];
  }
  const double hi = amax / smax;
  const double lo = amin / smin;
  if (grad != nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      const double ghi = wmax[i] / smax * (1.0 + (coord[i] - hi) / gamma);
      const double glo = wmin[i] / smin * (1.0 - (coord[i] - lo) / gamma);
      grad[i] = weight * (ghi - glo);
    }
  }
  return hi - lo;
}

}  // namespace

SmoothWirelength::SmoothWirelength(const netlist::Netlist& nl,
                                   WirelengthModel model, double gamma)
    : nl_(&nl), model_(model), gamma_(gamma) {
  // Flatten nets with >= 2 pins into contiguous arrays.
  std::size_t kept_pins = 0, kept_nets = 0;
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    const std::size_t deg = nl.net(n).pins.size();
    if (deg < 2) continue;
    ++kept_nets;
    kept_pins += deg;
    max_degree_ = std::max(max_degree_, deg);
  }
  net_first_.reserve(kept_nets + 1);
  net_weight_.reserve(kept_nets);
  pin_cell_.reserve(kept_pins);
  pin_dx_.reserve(kept_pins);
  pin_dy_.reserve(kept_pins);
  net_first_.push_back(0);
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    const auto& pins = nl.net(n).pins;
    if (pins.size() < 2) continue;
    net_weight_.push_back(nl.net(n).weight);
    net_id_.push_back(n);
    for (const PinId p : pins) {
      const auto& pin = nl.pin(p);
      pin_cell_.push_back(pin.cell);
      pin_dx_.push_back(pin.offset_x);
      pin_dy_.push_back(pin.offset_y);
    }
    net_first_.push_back(static_cast<std::uint32_t>(pin_cell_.size()));
  }

  // Fixed pin-balanced chunk boundaries.
  const std::size_t chunks = std::clamp<std::size_t>(
      kept_pins / kMinPinsPerChunk, 1, kMaxChunks);
  const std::size_t per_chunk = (kept_pins + chunks - 1) / chunks;
  chunk_first_.push_back(0);
  std::size_t acc = 0;
  for (std::size_t kn = 0; kn < kept_nets; ++kn) {
    acc += net_first_[kn + 1] - net_first_[kn];
    if (acc >= per_chunk && kn + 1 < kept_nets) {
      chunk_first_.push_back(static_cast<std::uint32_t>(kn + 1));
      acc = 0;
    }
  }
  chunk_first_.push_back(static_cast<std::uint32_t>(kept_nets));
}

void SmoothWirelength::set_net_weight_scale(std::span<const double> scale) {
  for (std::size_t kn = 0; kn < net_id_.size(); ++kn) {
    const double base = nl_->net(net_id_[kn]).weight;
    net_weight_[kn] = scale.empty() ? base : base * scale[net_id_[kn]];
  }
}

double SmoothWirelength::kernel(const netlist::Placement& pl,
                                bool with_grad) const {
  const std::size_t nchunks = chunk_first_.size() - 1;
  chunk_value_.assign(nchunks, 0.0);
  if (with_grad) {
    // Every slot is overwritten (not accumulated), so no zero-fill.
    gpin_x_.resize(pin_cell_.size());
    gpin_y_.resize(pin_cell_.size());
  }
  chunk_scratch_.resize(nchunks);
  const double gamma = gamma_;
  const auto model = model_;

  auto work = [&](std::size_t k) {
    std::vector<double>& s = chunk_scratch_[k];
    s.resize(3 * max_degree_);
    double* coord = s.data();
    double* wmax = coord + max_degree_;
    double* wmin = wmax + max_degree_;
    double total = 0.0;
    for (std::uint32_t kn = chunk_first_[k]; kn < chunk_first_[k + 1];
         ++kn) {
      const std::uint32_t base = net_first_[kn];
      const std::size_t deg = net_first_[kn + 1] - base;
      const double weight = net_weight_[kn];
      double net_value = 0.0;
      // Per axis: gather coords, max-shift the exponents, evaluate.
      for (int axis = 0; axis < 2; ++axis) {
        double max_c = -1e300, min_c = 1e300;
        if (axis == 0) {
          for (std::size_t i = 0; i < deg; ++i) {
            const std::uint32_t c = pin_cell_[base + i];
            coord[i] = pl[c].x + pin_dx_[base + i];
            max_c = std::max(max_c, coord[i]);
            min_c = std::min(min_c, coord[i]);
          }
        } else {
          for (std::size_t i = 0; i < deg; ++i) {
            const std::uint32_t c = pin_cell_[base + i];
            coord[i] = pl[c].y + pin_dy_[base + i];
            max_c = std::max(max_c, coord[i]);
            min_c = std::min(min_c, coord[i]);
          }
        }
        for (std::size_t i = 0; i < deg; ++i) {
          wmax[i] = std::exp((coord[i] - max_c) / gamma);
          wmin[i] = std::exp((min_c - coord[i]) / gamma);
        }
        double* grad = nullptr;
        if (with_grad) {
          grad = (axis == 0 ? gpin_x_.data() : gpin_y_.data()) + base;
        }
        net_value += model == WirelengthModel::kLse
                         ? lse_axis(coord, deg, max_c, min_c, wmax, wmin,
                                    gamma, weight, grad)
                         : wa_axis(coord, deg, max_c, min_c, wmax, wmin,
                                   gamma, weight, grad);
      }
      total += weight * net_value;
    }
    chunk_value_[k] = total;
  };

  if (pool_ != nullptr) {
    pool_->run(nchunks, work);
  } else {
    for (std::size_t k = 0; k < nchunks; ++k) work(k);
  }

  // Ordered reduction: fixed chunk boundaries + fixed order make the
  // total independent of the thread count.
  double total = 0.0;
  for (const double v : chunk_value_) total += v;
  return total;
}

void SmoothWirelength::bind_vars(const VarMap& vars) const {
  if (bound_vars_ == &vars && bound_num_vars_ == vars.num_vars()) return;
  const std::size_t nv = vars.num_vars();
  var_first_.assign(nv + 1, 0);
  for (const std::uint32_t c : pin_cell_) {
    const std::uint32_t v = vars.var(c);
    if (v != netlist::kInvalidId) ++var_first_[v + 1];
  }
  for (std::size_t v = 0; v < nv; ++v) var_first_[v + 1] += var_first_[v];
  var_slot_.resize(var_first_[nv]);
  std::vector<std::uint32_t> cursor(var_first_.begin(),
                                    var_first_.end() - 1);
  for (std::uint32_t s = 0; s < pin_cell_.size(); ++s) {
    const std::uint32_t v = vars.var(pin_cell_[s]);
    if (v != netlist::kInvalidId) var_slot_[cursor[v]++] = s;
  }
  bound_vars_ = &vars;
  bound_num_vars_ = nv;
}

double SmoothWirelength::eval(const netlist::Placement& pl,
                              const VarMap& vars, std::span<double> gx,
                              std::span<double> gy) const {
  bind_vars(vars);
  const double total = kernel(pl, true);

  // Gather per-pin gradients into the variables. Each variable's slots
  // are summed in fixed CSR order, so the gather is both race-free and
  // deterministic for any thread count.
  const std::size_t nv = vars.num_vars();
  auto gather = [&](std::size_t v0, std::size_t v1) {
    for (std::size_t v = v0; v < v1; ++v) {
      double sx = 0.0, sy = 0.0;
      for (std::uint32_t s = var_first_[v]; s < var_first_[v + 1]; ++s) {
        sx += gpin_x_[var_slot_[s]];
        sy += gpin_y_[var_slot_[s]];
      }
      gx[v] += sx;
      gy[v] += sy;
    }
  };
  if (pool_ != nullptr && pool_->size() > 1 && nv >= 4096) {
    const std::size_t chunks =
        std::clamp<std::size_t>(nv / 2048, 1, kMaxChunks);
    const std::size_t per = (nv + chunks - 1) / chunks;
    pool_->run(chunks, [&](std::size_t k) {
      gather(k * per, std::min(nv, (k + 1) * per));
    });
  } else {
    gather(0, nv);
  }
  return total;
}

double SmoothWirelength::value(const netlist::Placement& pl) const {
  return kernel(pl, false);
}

}  // namespace dp::gp
