#pragma once

#include <span>

#include "gp/vars.hpp"

namespace dp::gp {

/// Which smooth approximation of HPWL the global placer minimizes.
enum class WirelengthModel {
  kLse,  ///< log-sum-exp (Naylor et al.), the classic analytical model
  kWa,   ///< weighted-average (Hsu/Balabanov/Chang), tighter than LSE
};

/// Smooth wirelength objective term. The smoothing parameter gamma is
/// annealed by the placement driver: large gamma = smooth/loose bound,
/// small gamma = tight approximation of HPWL.
///
/// Both models are stabilized against overflow by max-shifting the
/// exponents, so they stay finite for any coordinates.
class SmoothWirelength final : public ObjectiveTerm {
 public:
  SmoothWirelength(const netlist::Netlist& nl, WirelengthModel model,
                   double gamma);

  void set_gamma(double gamma) { gamma_ = gamma; }
  double gamma() const { return gamma_; }
  WirelengthModel model() const { return model_; }

  double eval(const netlist::Placement& pl, const VarMap& vars,
              std::span<double> gx, std::span<double> gy) const override;

  /// Value only (no gradient); used by tests and the driver's telemetry.
  double value(const netlist::Placement& pl) const;

 private:
  const netlist::Netlist* nl_;
  WirelengthModel model_;
  double gamma_;
};

}  // namespace dp::gp
