#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "gp/vars.hpp"

namespace dp::util {
class ThreadPool;
}

namespace dp::gp {

/// Which smooth approximation of HPWL the global placer minimizes.
enum class WirelengthModel {
  kLse,  ///< log-sum-exp (Naylor et al.), the classic analytical model
  kWa,   ///< weighted-average (Hsu/Balabanov/Chang), tighter than LSE
};

/// Smooth wirelength objective term. The smoothing parameter gamma is
/// annealed by the placement driver: large gamma = smooth/loose bound,
/// small gamma = tight approximation of HPWL.
///
/// Both models are stabilized against overflow by max-shifting the
/// exponents, so they stay finite for any coordinates.
///
/// The hot loop runs over a flattened CSR net->pin layout built once in
/// the constructor (contiguous cell ids and pin offsets, nets with < 2
/// pins dropped), split into fixed pin-balanced chunks. With a thread
/// pool attached the chunks evaluate concurrently; per-pin gradients land
/// in per-pin slots and are gathered per variable in fixed slot order, so
/// the result is bitwise identical for every thread count.
class SmoothWirelength final : public ObjectiveTerm {
 public:
  SmoothWirelength(const netlist::Netlist& nl, WirelengthModel model,
                   double gamma);

  void set_gamma(double gamma) { gamma_ = gamma; }
  double gamma() const { return gamma_; }
  WirelengthModel model() const { return model_; }

  /// Attach a worker pool for chunk-parallel evaluation; null (the
  /// default) evaluates the chunks serially, producing identical results.
  void set_thread_pool(std::shared_ptr<util::ThreadPool> pool) {
    pool_ = std::move(pool);
  }

  double eval(const netlist::Placement& pl, const VarMap& vars,
              std::span<double> gx, std::span<double> gy) const override;

  /// Value only (no gradient); used by tests and the driver's telemetry.
  /// Shares the chunked CSR kernel with eval() in null-gradient mode.
  double value(const netlist::Placement& pl) const;

  /// Rescale the effective weight of every net: the kernel uses
  /// `netlist_weight(n) * scale[n]` (scale is indexed by NetId, so it
  /// covers dropped < 2-pin nets too). An empty span resets to the plain
  /// netlist weights. Timing-driven placement re-derives the scale from
  /// net criticality each outer iteration.
  void set_net_weight_scale(std::span<const double> scale);

 private:
  /// Evaluates all chunks; fills gpin_x_/gpin_y_ when `with_grad`.
  double kernel(const netlist::Placement& pl, bool with_grad) const;
  /// (Re)build the var -> pin-slot gather transpose for `vars`.
  void bind_vars(const VarMap& vars) const;

  const netlist::Netlist* nl_;
  WirelengthModel model_;
  double gamma_;
  std::shared_ptr<util::ThreadPool> pool_;

  // Flattened CSR topology over nets with >= 2 pins (built once).
  std::vector<std::uint32_t> net_first_;  ///< kept-net -> first pin slot
  std::vector<double> net_weight_;
  std::vector<netlist::NetId> net_id_;    ///< kept-net -> NetId
  std::vector<std::uint32_t> pin_cell_;
  std::vector<double> pin_dx_, pin_dy_;   ///< pin offsets from cell center
  std::vector<std::uint32_t> chunk_first_;  ///< fixed chunk bounds (nets)
  std::size_t max_degree_ = 0;

  // Gather transpose: variable -> pin slots, rebuilt when a different
  // VarMap is bound (keyed by address + num_vars; each GlobalPlacer owns
  // one VarMap for its lifetime).
  mutable const VarMap* bound_vars_ = nullptr;
  mutable std::size_t bound_num_vars_ = 0;
  mutable std::vector<std::uint32_t> var_first_, var_slot_;

  // Persistent evaluation scratch (one evaluation in flight at a time;
  // chunk tasks touch disjoint slots).
  mutable std::vector<double> gpin_x_, gpin_y_;  ///< weighted per-pin grads
  mutable std::vector<double> chunk_value_;      ///< per-chunk partial sums
  mutable std::vector<std::vector<double>> chunk_scratch_;
};

}  // namespace dp::gp
