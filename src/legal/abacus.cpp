#include "legal/abacus.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dp::legal {

using netlist::CellId;

namespace {

struct RowCell {
  CellId cell = netlist::kInvalidId;
  double target_lx = 0.0;  ///< desired left edge
  double width = 0.0;
};

struct Cluster {
  double x = 0.0;  ///< left edge after collapse
  double e = 0.0;  ///< total weight
  double q = 0.0;  ///< weighted target sum
  double w = 0.0;  ///< total width
  std::size_t first = 0;  ///< index of first member in the segment cells
  std::size_t count = 0;
};

/// One free segment being filled: its own Abacus cluster chain.
struct SegState {
  double lx = 0.0, hx = 0.0;
  double used = 0.0;
  std::vector<RowCell> cells;
  std::vector<Cluster> clusters;
};

void collapse(std::vector<Cluster>& cs, double lo, double hi) {
  while (true) {
    Cluster& c = cs.back();
    c.x = std::clamp(c.q / c.e, lo, hi - c.w);
    if (cs.size() < 2) return;
    Cluster& pred = cs[cs.size() - 2];
    if (pred.x + pred.w <= c.x + 1e-12) return;
    pred.e += c.e;
    pred.q += c.q - c.e * pred.w;
    pred.w += c.w;
    pred.count += c.count;
    cs.pop_back();
  }
}

/// Insert `cell` at the end of `seg` (cells arrive in x order) and return
/// the resulting left edge of the inserted cell.
double place_in_segment(SegState& seg, const RowCell& cell) {
  const double e = 1.0;
  const std::size_t idx = seg.cells.size();
  seg.cells.push_back(cell);
  const double tx = std::clamp(cell.target_lx, seg.lx, seg.hx - cell.width);
  if (seg.clusters.empty() ||
      seg.clusters.back().x + seg.clusters.back().w <= tx) {
    seg.clusters.push_back({tx, e, e * tx, cell.width, idx, 1});
  } else {
    Cluster& last = seg.clusters.back();
    last.e += e;
    last.q += e * (tx - last.w);
    last.w += cell.width;
    last.count += 1;
  }
  collapse(seg.clusters, seg.lx, seg.hx);
  const Cluster& c = seg.clusters.back();
  return c.x + c.w - cell.width;
}

}  // namespace

AbacusLegalizer::AbacusLegalizer(const netlist::Netlist& nl,
                                 const netlist::Design& design)
    : nl_(&nl), design_(&design) {}

LegalizeStats AbacusLegalizer::run(netlist::Placement& pl,
                                   const std::vector<CellId>& cells,
                                   const RowMap& rows,
                                   std::vector<CellId>* failed) {
  LegalizeStats stats;
  const netlist::Design& design = *design_;
  const double site = design.site_width();
  const double core_lx = design.core().lx;

  // Materialize per-row segment states.
  std::vector<std::vector<SegState>> segs(rows.num_rows());
  for (std::size_t r = 0; r < rows.num_rows(); ++r) {
    for (const Segment& s : rows.segments(r)) {
      SegState st;
      // Shrink to whole sites so the final snap stays inside.
      st.lx = core_lx + std::ceil((s.lx - core_lx) / site - 1e-9) * site;
      st.hx = core_lx + std::floor((s.hx - core_lx) / site + 1e-9) * site;
      if (st.hx - st.lx >= site) segs[r].push_back(st);
    }
  }

  std::vector<CellId> order = cells;
  std::sort(order.begin(), order.end(), [&](CellId a, CellId b) {
    return pl[a].x - nl_->cell_width(a) / 2.0 <
           pl[b].x - nl_->cell_width(b) / 2.0;
  });

  for (CellId c : order) {
    const double w = nl_->cell_width(c);
    const double h = nl_->cell_height(c);
    const RowCell rec{c, pl[c].x - w / 2.0, w};
    const double want_ly = pl[c].y - h / 2.0;

    double best_cost = std::numeric_limits<double>::infinity();
    SegState* best_seg = nullptr;

    for (std::size_t r = 0; r < segs.size(); ++r) {
      const double dy = design.row(r).y - want_ly;
      if (dy * dy >= best_cost) continue;
      for (SegState& seg : segs[r]) {
        if (seg.used + w > seg.hx - seg.lx + 1e-9) continue;
        // Quick bound: even a perfect x placement cannot beat best_cost.
        const double clamped =
            std::clamp(rec.target_lx, seg.lx, seg.hx - w);
        const double dx_min = clamped - rec.target_lx;
        if (dy * dy + dx_min * dx_min >= best_cost) continue;
        // Trial insertion on a scratch copy of the segment.
        SegState trial = seg;
        const double lx = place_in_segment(trial, rec);
        const double dx = lx - rec.target_lx;
        const double cost = dx * dx + dy * dy;
        if (cost < best_cost) {
          best_cost = cost;
          best_seg = &seg;
        }
      }
    }

    if (best_seg == nullptr) {
      ++stats.cells_failed;
      if (failed != nullptr) failed->push_back(c);
      continue;
    }
    place_in_segment(*best_seg, rec);
    best_seg->used += w;
  }

  // Final positions: walk clusters, snap origins down to the site grid
  // (monotone, preserves non-overlap; segment bounds are already on grid).
  for (std::size_t r = 0; r < segs.size(); ++r) {
    const netlist::Row& row = design.row(r);
    for (const SegState& seg : segs[r]) {
      for (const Cluster& cl : seg.clusters) {
        double cursor =
            core_lx + std::floor((cl.x - core_lx) / site + 1e-9) * site;
        cursor = std::max(cursor, seg.lx);
        for (std::size_t i = cl.first; i < cl.first + cl.count; ++i) {
          const RowCell& rc = seg.cells[i];
          const double new_cx = cursor + rc.width / 2.0;
          const double new_cy = row.y + nl_->cell_height(rc.cell) / 2.0;
          stats.record(new_cx - pl[rc.cell].x, new_cy - pl[rc.cell].y);
          pl[rc.cell] = {new_cx, new_cy};
          cursor += rc.width;
        }
      }
    }
  }
  return stats;
}

LegalizeStats AbacusLegalizer::run_all(netlist::Placement& pl) {
  std::vector<CellId> cells;
  for (CellId c = 0; c < nl_->num_cells(); ++c) {
    if (!nl_->cell(c).fixed) cells.push_back(c);
  }
  RowMap rows(*design_);
  return run(pl, cells, rows);
}

}  // namespace dp::legal
