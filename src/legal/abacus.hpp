#pragma once

#include <vector>

#include "legal/legalizer.hpp"
#include "legal/rowmap.hpp"
#include "netlist/design.hpp"

namespace dp::legal {

/// Abacus row-based legalization (Spindler, Schlichtmann, Johannes):
/// cells are inserted in x order into the row segment minimizing their
/// resulting displacement; within a segment, overlapping cells are merged
/// into clusters whose optimal position is the mean of member targets,
/// collapsed until no overlap remains. Produces far smaller displacement
/// than Tetris because earlier cells yield to later arrivals.
///
/// Operates on a free-space RowMap, so it handles rows fragmented by
/// fixed macros or pre-placed datapath plates (the structure-aware flow
/// uses it for the glue logic around the plates).
class AbacusLegalizer {
 public:
  AbacusLegalizer(const netlist::Netlist& nl, const netlist::Design& design);

  /// Legalize `cells` into the free space of `rows`. Space is tracked
  /// internally; `rows` is not modified. Cells that fit nowhere are
  /// appended to `failed` (positions untouched) if provided.
  LegalizeStats run(netlist::Placement& pl,
                    const std::vector<netlist::CellId>& cells,
                    const RowMap& rows,
                    std::vector<netlist::CellId>* failed = nullptr);

  /// Legalize all movable cells on an obstacle-free row map.
  LegalizeStats run_all(netlist::Placement& pl);

 private:
  const netlist::Netlist* nl_;
  const netlist::Design* design_;
};

}  // namespace dp::legal
