#pragma once

#include <vector>

#include "netlist/design.hpp"
#include "netlist/netlist.hpp"

namespace dp::legal {

/// Displacement statistics of a legalization run.
struct LegalizeStats {
  double total_displacement = 0.0;
  double max_displacement = 0.0;
  std::size_t cells_placed = 0;
  std::size_t cells_failed = 0;  ///< could not be placed (capacity exhausted)

  void record(double dx, double dy) {
    const double d = std::abs(dx) + std::abs(dy);
    total_displacement += d;
    max_displacement = std::max(max_displacement, d);
    ++cells_placed;
  }

  double avg_displacement() const {
    return cells_placed > 0
               ? total_displacement / static_cast<double>(cells_placed)
               : 0.0;
  }
};

}  // namespace dp::legal
