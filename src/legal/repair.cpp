#include "legal/repair.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "eval/incremental_hpwl.hpp"
#include "legal/abacus.hpp"
#include "legal/rowmap.hpp"
#include "legal/tetris.hpp"
#include "util/logger.hpp"

namespace dp::legal {

using netlist::CellId;

std::size_t repair_legality(const netlist::Netlist& nl,
                            const netlist::Design& design,
                            netlist::Placement& pl) {
  const geom::Rect& core = design.core();
  const double tol = 1e-6;

  // Classify: victims = cells violating any constraint. Overlap pairs keep
  // the earlier (left) cell in place.
  struct Placed {
    double lx, hx;
    CellId cell;
  };
  std::vector<std::vector<Placed>> rows(design.num_rows());
  std::vector<CellId> victims;

  for (CellId c = 0; c < nl.num_cells(); ++c) {
    if (nl.cell(c).fixed) continue;
    const double w = nl.cell_width(c);
    const double h = nl.cell_height(c);
    const double lx = pl[c].x - w / 2.0;
    const double ly = pl[c].y - h / 2.0;
    const double row_rel = (ly - core.ly) / design.row_height();
    const double site_rel = (lx - core.lx) / design.site_width();
    const bool off_grid =
        std::abs(row_rel - std::round(row_rel)) > tol ||
        std::abs(site_rel - std::round(site_rel)) > tol;
    const bool outside = lx < core.lx - tol || lx + w > core.hx + tol ||
                         ly < core.ly - tol || ly + h > core.hy + tol;
    if (off_grid || outside) {
      victims.push_back(c);
      continue;
    }
    rows[design.nearest_row(pl[c].y)].push_back({lx, lx + w, c});
  }

  for (auto& row : rows) {
    std::sort(row.begin(), row.end(),
              [](const Placed& a, const Placed& b) { return a.lx < b.lx; });
    double frontier = -1e300;
    for (auto& p : row) {
      if (p.lx < frontier - tol) {
        victims.push_back(p.cell);
        p.cell = netlist::kInvalidId;  // excluded from the free-space map
      } else {
        frontier = p.hx;
      }
    }
  }
  if (victims.empty()) return 0;

  // Track the wirelength cost of the repair incrementally: only the
  // victims move, so updating their incident nets is O(victim pins)
  // instead of a second full eval::hpwl sweep.
  eval::IncrementalHpwl hpwl_eng(nl, pl);
  const double hpwl_before = hpwl_eng.total();

  // Free space = core minus every legally placed cell.
  RowMap free_map(design);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (const Placed& p : rows[r]) {
      if (p.cell != netlist::kInvalidId) free_map.block(r, p.lx, p.hx);
    }
  }

  AbacusLegalizer abacus(nl, design);
  std::vector<CellId> failed;
  abacus.run(pl, victims, free_map, &failed);
  if (!failed.empty()) {
    // Re-derive free space (Abacus consumed some) and sweep with Tetris.
    RowMap retry(design);
    for (CellId c = 0; c < nl.num_cells(); ++c) {
      if (nl.cell(c).fixed) continue;
      bool is_failed = false;
      for (CellId f : failed) {
        if (f == c) {
          is_failed = true;
          break;
        }
      }
      if (is_failed) continue;
      retry.block(design.nearest_row(pl[c].y),
                  pl[c].x - nl.cell_width(c) / 2.0,
                  pl[c].x + nl.cell_width(c) / 2.0);
    }
    TetrisLegalizer tetris(nl, design);
    std::vector<CellId> still_failed;
    tetris.run(pl, failed, retry, &still_failed);
    if (!still_failed.empty()) {
      util::Logger::warn("repair_legality: %zu cells could not be placed",
                         still_failed.size());
    }
  }
  hpwl_eng.refresh(victims);
  util::Logger::debug("repair_legality: re-placed %zu cells (hpwl %.1f -> %.1f)",
                      victims.size(), hpwl_before, hpwl_eng.total());
  return victims.size();
}

}  // namespace dp::legal
