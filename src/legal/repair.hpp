#pragma once

#include "legal/legalizer.hpp"
#include "netlist/design.hpp"

namespace dp::legal {

/// Legality guarantee pass: detects movable cells that overlap a
/// neighbour, stick out of the core, or sit off the row/site grid, rips
/// them out, and re-places them into the actual remaining free space
/// (Abacus first, Tetris sweep for stragglers). Idempotent on legal input.
/// Returns the number of cells that had to be re-placed.
std::size_t repair_legality(const netlist::Netlist& nl,
                            const netlist::Design& design,
                            netlist::Placement& pl);

}  // namespace dp::legal
