#include "legal/rowmap.hpp"

#include <algorithm>

namespace dp::legal {

RowMap::RowMap(const netlist::Design& design) : design_(&design) {
  segments_.resize(design.num_rows());
  for (std::size_t r = 0; r < design.num_rows(); ++r) {
    const netlist::Row& row = design.row(r);
    segments_[r].push_back({row.lx, row.hx});
  }
}

void RowMap::block(std::size_t row, double lx, double hx) {
  if (hx <= lx) return;
  std::vector<Segment> next;
  next.reserve(segments_[row].size() + 1);
  for (const Segment& s : segments_[row]) {
    if (hx <= s.lx || lx >= s.hx) {
      next.push_back(s);
      continue;
    }
    if (lx > s.lx) next.push_back({s.lx, lx});
    if (hx < s.hx) next.push_back({hx, s.hx});
  }
  segments_[row] = std::move(next);
}

double RowMap::free_width(std::size_t row) const {
  double w = 0.0;
  for (const Segment& s : segments_[row]) w += s.width();
  return w;
}

}  // namespace dp::legal
