#pragma once

#include <vector>

#include "netlist/design.hpp"

namespace dp::legal {

/// A free interval within a row.
struct Segment {
  double lx = 0.0;
  double hx = 0.0;
  double width() const { return hx - lx; }
};

/// Free-space map of the placement rows: each row is a sorted list of free
/// segments, shrinking as obstacles (fixed cells, pre-placed slices) are
/// blocked out. Legalizers allocate cells from the remaining segments.
class RowMap {
 public:
  explicit RowMap(const netlist::Design& design);

  const netlist::Design& design() const { return *design_; }
  std::size_t num_rows() const { return segments_.size(); }
  const std::vector<Segment>& segments(std::size_t row) const {
    return segments_[row];
  }

  /// Remove [lx, hx] from the free space of `row`.
  void block(std::size_t row, double lx, double hx);

  /// Total free width of a row.
  double free_width(std::size_t row) const;

 private:
  const netlist::Design* design_;
  std::vector<std::vector<Segment>> segments_;
};

}  // namespace dp::legal
