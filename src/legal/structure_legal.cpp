#include "legal/structure_legal.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>
#include <optional>

#include "eval/incremental_hpwl.hpp"
#include "eval/metrics.hpp"
#include "legal/abacus.hpp"
#include "legal/tetris.hpp"
#include "util/logger.hpp"

namespace dp::legal {

using netlist::CellId;
using netlist::kInvalidId;
using netlist::StructureGroup;

namespace {

/// One horizontal row unit of a chunk: the cells sharing a row, with x
/// offsets from the unit's left edge (shared across units, so columns
/// align).
struct RowUnit {
  std::vector<CellId> cells;
  std::vector<double> offsets;
  double mean_y = 0.0;
  bool occupied = false;
};

/// A contiguous span of a group's stage columns, packed as one rectangle.
struct Chunk {
  std::vector<RowUnit> units;
  double width = 0.0;
  double desired_cx = 0.0;
  double desired_cy = 0.0;
  /// True when lane index should grow downward (the global placement
  /// settled the array with lane 0 on top); the packer must not flip it.
  bool lanes_descending = false;
};

/// Decompose a group into chunks of consecutive columns, each at most
/// `max_width` wide (a single column may exceed it; it forms its own
/// chunk). Lanes are bit slices (bits_along_y) or stages (transposed).
std::vector<Chunk> make_chunks(const netlist::Netlist& nl,
                               const StructureGroup& g,
                               const netlist::Placement& pl,
                               bool bits_along_y, double max_width) {
  const std::size_t lanes = bits_along_y ? g.bits : g.stages;
  const std::size_t cols = bits_along_y ? g.stages : g.bits;
  auto cell_at = [&](std::size_t lane, std::size_t col) {
    return bits_along_y ? g.at(lane, col) : g.at(col, lane);
  };

  std::vector<double> col_width(cols, 0.0);
  for (std::size_t col = 0; col < cols; ++col) {
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      const CellId c = cell_at(lane, col);
      if (c != kInvalidId) {
        col_width[col] = std::max(col_width[col], nl.cell_width(c));
      }
    }
  }

  std::vector<Chunk> chunks;
  std::size_t col = 0;
  while (col < cols) {
    // Greedy span of columns fitting in max_width.
    std::size_t end = col;
    double width = 0.0;
    while (end < cols && (end == col || width + col_width[end] <= max_width)) {
      width += col_width[end];
      ++end;
    }

    // Stage direction: mirror column offsets if the placement settled the
    // span right-to-left.
    double first_x = 0.0, last_x = 0.0;
    bool have_x = false;
    for (std::size_t c2 = col; c2 < end; ++c2) {
      double sx = 0.0;
      std::size_t nx = 0;
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        const CellId c = cell_at(lane, c2);
        if (c != kInvalidId) {
          sx += pl[c].x;
          ++nx;
        }
      }
      if (nx == 0) continue;
      if (!have_x) {
        first_x = sx / static_cast<double>(nx);
        have_x = true;
      }
      last_x = sx / static_cast<double>(nx);
    }
    const bool cols_descending = have_x && last_x < first_x;

    Chunk chunk;
    chunk.width = width;
    double sum_cx = 0.0, sum_cy = 0.0;
    std::size_t count = 0;
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      RowUnit unit;
      double off = 0.0;
      double sy = 0.0;
      for (std::size_t c2 = col; c2 < end; ++c2) {
        const CellId c = cell_at(lane, c2);
        if (c != kInvalidId) {
          const double center = off + nl.cell_width(c) / 2.0;
          unit.cells.push_back(c);
          unit.offsets.push_back(cols_descending ? width - center : center);
          sum_cx += pl[c].x;
          sy += pl[c].y;
          ++count;
        }
        off += col_width[c2];
      }
      if (!unit.cells.empty()) {
        unit.mean_y = sy / static_cast<double>(unit.cells.size());
        unit.occupied = true;
        sum_cy += unit.mean_y;
      }
      chunk.units.push_back(std::move(unit));
    }
    if (count > 0) {
      std::size_t occupied_units = 0;
      double first_y = 0.0, last_y = 0.0;
      bool have_y = false;
      for (const RowUnit& u : chunk.units) {
        if (!u.occupied) continue;
        ++occupied_units;
        if (!have_y) {
          first_y = u.mean_y;
          have_y = true;
        }
        last_y = u.mean_y;
      }
      chunk.lanes_descending = have_y && last_y < first_y;
      chunk.desired_cx = sum_cx / static_cast<double>(count);
      chunk.desired_cy = sum_cy / static_cast<double>(occupied_units);
      chunks.push_back(std::move(chunk));
    }
    col = end;
  }
  return chunks;
}

/// Intersection of free segments across rows [row0, row0 + rows_needed).
std::vector<Segment> intersect_rows(const RowMap& rows, std::size_t row0,
                                    std::size_t rows_needed) {
  std::vector<Segment> acc = rows.segments(row0);
  for (std::size_t r = row0 + 1; r < row0 + rows_needed; ++r) {
    const auto& other = rows.segments(r);
    std::vector<Segment> next;
    std::size_t i = 0, j = 0;
    while (i < acc.size() && j < other.size()) {
      const double lo = std::max(acc[i].lx, other[j].lx);
      const double hi = std::min(acc[i].hx, other[j].hx);
      if (lo < hi) next.push_back({lo, hi});
      if (acc[i].hx < other[j].hx) {
        ++i;
      } else {
        ++j;
      }
    }
    acc = std::move(next);
    if (acc.empty()) break;
  }
  return acc;
}

}  // namespace

StructureLegalizer::StructureLegalizer(
    const netlist::Netlist& nl, const netlist::Design& design,
    const netlist::StructureAnnotation& groups,
    std::vector<bool> bits_along_y)
    : nl_(&nl), design_(&design), groups_(&groups),
      bits_along_y_(std::move(bits_along_y)) {}

StructureLegalizeStats StructureLegalizer::run(netlist::Placement& pl,
                                               const BetweenHook& between) {
  StructureLegalizeStats stats;
  const netlist::Design& design = *design_;
  const double site = design.site_width();
  const double core_lx = design.core().lx;
  const double max_chunk_w = design.core().width() * 0.3;
  const netlist::Placement pl_before = pl;

  // A chunk committed to a concrete window.
  struct PlacedChunk {
    Chunk chunk;
    std::size_t row0 = 0;
    double x = 0.0;  ///< left edge of the first strip
    std::size_t fold_rows = 1;
    std::size_t strips = 1;
  };
  std::vector<PlacedChunk> committed;

  auto fold_of = [&](const Chunk& chunk) {
    return std::min(std::max<std::size_t>(chunk.units.size(), 1),
                    design.num_rows());
  };
  auto strips_of = [&](const Chunk& chunk) {
    const std::size_t fold = fold_of(chunk);
    return (chunk.units.size() + fold - 1) / fold;
  };

  // Free-space map with every committed chunk (optionally minus one)
  // blocked out.
  auto build_rows = [&](const PlacedChunk* skip) {
    RowMap rows(design);
    for (const PlacedChunk& pc : committed) {
      if (&pc == skip) continue;
      for (std::size_t u = 0; u < pc.chunk.units.size(); ++u) {
        const std::size_t strip = u / pc.fold_rows;
        const std::size_t pos = u % pc.fold_rows;
        const std::size_t r =
            pc.row0 +
            (pc.chunk.lanes_descending ? pc.fold_rows - 1 - pos : pos);
        const double ux =
            pc.x + pc.chunk.width * static_cast<double>(strip);
        rows.block(r, ux, ux + pc.chunk.width);
      }
    }
    return rows;
  };

  // Nearest feasible window for `chunk` around (cx, cy) in `rows`.
  struct Window {
    std::size_t row0 = 0;
    double x = 0.0;
  };
  auto find_window = [&](const Chunk& chunk, const RowMap& rows, double cx,
                         double cy) -> std::optional<Window> {
    const std::size_t fold_rows = fold_of(chunk);
    const double full_w =
        chunk.width * static_cast<double>(strips_of(chunk));
    const long long max_row0 = static_cast<long long>(design.num_rows()) -
                               static_cast<long long>(fold_rows);
    if (max_row0 < 0) return std::nullopt;
    const std::size_t want_row0 = design.nearest_row(
        cy - static_cast<double>(fold_rows) / 2.0 * design.row_height());

    for (long long delta = 0; delta <= max_row0; ++delta) {
      for (const long long sign : {1LL, -1LL}) {
        if (delta == 0 && sign < 0) continue;
        const long long r0 = static_cast<long long>(want_row0) + sign * delta;
        if (r0 < 0 || r0 > max_row0) continue;
        const auto row0 = static_cast<std::size_t>(r0);
        const auto free = intersect_rows(rows, row0, fold_rows);
        const double want_lx = cx - full_w / 2.0;
        double best_x = 0.0;
        double best_d = std::numeric_limits<double>::infinity();
        for (const Segment& s : free) {
          if (s.width() + 1e-9 < full_w) continue;
          double x = std::clamp(want_lx, s.lx, s.hx - full_w);
          x = core_lx + std::ceil((x - core_lx) / site - 1e-9) * site;
          if (x + full_w > s.hx + 1e-9) x -= site;
          if (x < s.lx - 1e-9) continue;
          const double d = std::abs(x - want_lx);
          if (d < best_d) {
            best_d = d;
            best_x = x;
          }
        }
        if (std::isfinite(best_d)) return Window{row0, best_x};
      }
    }
    return std::nullopt;
  };

  // Write a placed chunk's cell positions into pl.
  auto apply_chunk = [&](const PlacedChunk& pc) {
    for (std::size_t u = 0; u < pc.chunk.units.size(); ++u) {
      const RowUnit& unit = pc.chunk.units[u];
      const std::size_t strip = u / pc.fold_rows;
      const std::size_t pos = u % pc.fold_rows;
      const std::size_t r =
          pc.row0 + (pc.chunk.lanes_descending ? pc.fold_rows - 1 - pos : pos);
      const double ux = pc.x + pc.chunk.width * static_cast<double>(strip);
      const double uy = design.row(r).y + design.row_height() / 2.0;
      for (std::size_t k = 0; k < unit.cells.size(); ++k) {
        pl[unit.cells[k]] = {ux + unit.offsets[k], uy};
      }
    }
  };

  // Target coordinates of a chunk's cells at its current (row0, x); used
  // to stage whole-plate relocations through the incremental HPWL engine
  // without mutating pl first. Mirrors apply_chunk exactly.
  std::vector<CellId> chunk_cells;
  std::vector<geom::Point> chunk_centers;
  auto chunk_targets = [&](const PlacedChunk& pc) {
    chunk_cells.clear();
    chunk_centers.clear();
    for (std::size_t u = 0; u < pc.chunk.units.size(); ++u) {
      const RowUnit& unit = pc.chunk.units[u];
      const std::size_t strip = u / pc.fold_rows;
      const std::size_t pos = u % pc.fold_rows;
      const std::size_t r =
          pc.row0 + (pc.chunk.lanes_descending ? pc.fold_rows - 1 - pos : pos);
      const double ux = pc.x + pc.chunk.width * static_cast<double>(strip);
      const double uy = design.row(r).y + design.row_height() / 2.0;
      for (std::size_t k = 0; k < unit.cells.size(); ++k) {
        chunk_cells.push_back(unit.cells[k]);
        chunk_centers.push_back({ux + unit.offsets[k], uy});
      }
    }
  };

  // Centroid of the pins of chunk nets that are not on chunk cells: the
  // wirelength-ideal neighborhood of the plate.
  auto external_centroid = [&](const Chunk& chunk, geom::Point fallback) {
    std::vector<bool> mine(nl_->num_cells(), false);
    for (const RowUnit& unit : chunk.units) {
      for (CellId c : unit.cells) mine[c] = true;
    }
    double sx = 0.0, sy = 0.0;
    std::size_t n = 0;
    for (const RowUnit& unit : chunk.units) {
      for (CellId c : unit.cells) {
        for (netlist::PinId p : nl_->cell(c).pins) {
          for (netlist::PinId q : nl_->net(nl_->pin(p).net).pins) {
            const CellId oc = nl_->pin(q).cell;
            if (mine[oc]) continue;
            const geom::Point pos = nl_->pin_position(q, pl);
            sx += pos.x;
            sy += pos.y;
            ++n;
          }
        }
      }
    }
    if (n == 0) return fallback;
    return geom::Point{sx / static_cast<double>(n),
                       sy / static_cast<double>(n)};
  };

  // ---- build chunks and discover chains from connectivity ---------------
  // Chunks connected by many nets (pipeline bundles between consecutive
  // units, or between spans cut from one parent) must be placed adjacent:
  // a scrambled order multiplies every bundle by the plate spacing. The
  // heavy-edge graph over chunks is built from the netlist and decomposed
  // into paths greedily; each path is then placed as a snake.
  struct FlatChunk {
    std::size_t group = 0;
    Chunk chunk;
  };
  std::vector<FlatChunk> flat;
  {
    std::vector<std::size_t> order(groups_->groups.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    for (std::size_t gi : order) {
      const bool along_y = gi >= bits_along_y_.size() || bits_along_y_[gi];
      for (Chunk& c :
           make_chunks(*nl_, groups_->groups[gi], pl, along_y, max_chunk_w)) {
        flat.push_back({gi, std::move(c)});
      }
    }
  }

  // Connectivity between chunks, directed driver -> sink. The directed
  // flow recovers the true pipeline order even when a unit fans out to
  // several downstream units (greedy heavy-edge pathing cannot).
  std::vector<int> chunk_of_cell(nl_->num_cells(), -1);
  for (std::size_t k = 0; k < flat.size(); ++k) {
    for (const RowUnit& u : flat[k].chunk.units) {
      for (CellId c : u.cells) chunk_of_cell[c] = static_cast<int>(k);
    }
  }
  std::map<std::pair<int, int>, std::size_t> flow;  // directed weights
  for (netlist::NetId n = 0; n < nl_->num_nets(); ++n) {
    const auto& pins = nl_->net(n).pins;
    if (pins.size() < 2 || pins.size() > 64) continue;
    const netlist::PinId drv = nl_->driver(n);
    if (drv == netlist::kInvalidId) continue;
    const int src = chunk_of_cell[nl_->pin(drv).cell];
    if (src < 0) continue;
    for (netlist::PinId p : pins) {
      if (p == drv) continue;
      const int dst = chunk_of_cell[nl_->pin(p).cell];
      if (dst < 0 || dst == src) continue;
      ++flow[{src, dst}];
    }
  }

  // Net forward flow and undirected components.
  std::map<std::pair<int, int>, long long> net_flow;
  std::vector<std::vector<std::size_t>> neighbors(flat.size());
  for (const auto& [key, w] : flow) {
    if (w < 4) continue;
    const auto rev = std::make_pair(key.second, key.first);
    const std::size_t back = flow.contains(rev) ? flow.at(rev) : 0;
    if (w > back) {
      net_flow[key] = static_cast<long long>(w - back);
    }
    neighbors[static_cast<std::size_t>(key.first)].push_back(
        static_cast<std::size_t>(key.second));
    neighbors[static_cast<std::size_t>(key.second)].push_back(
        static_cast<std::size_t>(key.first));
  }

  // Components, each ordered by (longest-path level in the flow DAG,
  // then desired x) -- the snaking sequence.
  std::vector<std::vector<std::size_t>> paths;
  {
    std::vector<bool> visited(flat.size(), false);
    for (std::size_t k = 0; k < flat.size(); ++k) {
      if (visited[k]) continue;
      std::vector<std::size_t> comp;
      std::vector<std::size_t> stack{k};
      visited[k] = true;
      while (!stack.empty()) {
        const std::size_t cur = stack.back();
        stack.pop_back();
        comp.push_back(cur);
        for (std::size_t nb : neighbors[cur]) {
          if (!visited[nb]) {
            visited[nb] = true;
            stack.push_back(nb);
          }
        }
      }
      // Longest-path levels within the component (bounded relaxation;
      // registers make real pipelines acyclic, the cap guards the rest).
      std::map<std::size_t, long long> level;
      for (std::size_t c : comp) level[c] = 0;
      for (std::size_t iter = 0; iter < comp.size() + 2; ++iter) {
        bool changed = false;
        for (const auto& [key, w] : net_flow) {
          const auto a = static_cast<std::size_t>(key.first);
          const auto b = static_cast<std::size_t>(key.second);
          if (!level.contains(a) || !level.contains(b)) continue;
          if (level[b] < level[a] + 1) {
            level[b] = level[a] + 1;
            changed = true;
          }
        }
        if (!changed) break;
      }
      std::sort(comp.begin(), comp.end(), [&](std::size_t a, std::size_t b) {
        if (level[a] != level[b]) return level[a] < level[b];
        return flat[a].chunk.desired_cx < flat[b].chunk.desired_cx;
      });
      paths.push_back(std::move(comp));
    }
  }

  // Lane direction must be consistent across a component: a flipped plate
  // makes every bundle net to its neighbours zigzag the plate height.
  for (const auto& path : paths) {
    std::size_t desc = 0;
    for (std::size_t k : path) {
      desc += flat[k].chunk.lanes_descending ? 1u : 0u;
    }
    const bool dir = 2 * desc > path.size();
    for (std::size_t k : path) flat[k].chunk.lanes_descending = dir;
  }

  std::sort(paths.begin(), paths.end(),
            [&](const std::vector<std::size_t>& a,
                const std::vector<std::size_t>& b) {
              std::size_t ca = 0, cb = 0;
              for (std::size_t k : a) {
                for (const RowUnit& u : flat[k].chunk.units) {
                  ca += u.cells.size();
                }
              }
              for (std::size_t k : b) {
                for (const RowUnit& u : flat[k].chunk.units) {
                  cb += u.cells.size();
                }
              }
              return ca > cb;
            });

  // ---- chain-aware block placement ---------------------------------------
  std::vector<bool> placed(nl_->num_cells(), false);
  std::vector<CellId> leftovers;
  RowMap rows(design);
  std::vector<bool> group_ok(groups_->groups.size(), true);

  auto commit = [&](Chunk&& chunk, const Window& wnd) -> std::size_t {
    PlacedChunk pc;
    pc.chunk = std::move(chunk);
    pc.row0 = wnd.row0;
    pc.x = wnd.x;
    pc.fold_rows = fold_of(pc.chunk);
    pc.strips = strips_of(pc.chunk);
    apply_chunk(pc);
    for (const RowUnit& unit : pc.chunk.units) {
      for (CellId c : unit.cells) placed[c] = true;
    }
    committed.push_back(std::move(pc));
    rows = build_rows(nullptr);
    return committed.size() - 1;
  };

  // Place one chunk near (cx, cy), splitting into lane bands on failure.
  auto place_with_split = [&](Chunk&& first, double cx, double cy,
                              std::size_t gi) -> std::optional<std::size_t> {
    std::vector<Chunk> work;
    work.push_back(std::move(first));
    std::optional<std::size_t> last;
    while (!work.empty()) {
      Chunk chunk = std::move(work.back());
      work.pop_back();
      const auto wnd = find_window(chunk, rows, cx, cy);
      if (wnd) {
        last = commit(std::move(chunk), *wnd);
        continue;
      }
      if (chunk.units.size() >= 8) {
        const std::size_t half = chunk.units.size() / 2;
        for (int part = 0; part < 2; ++part) {
          Chunk sub;
          sub.width = chunk.width;
          sub.lanes_descending = chunk.lanes_descending;
          const std::size_t begin = part == 0 ? 0 : half;
          const std::size_t end_u = part == 0 ? half : chunk.units.size();
          for (std::size_t u = begin; u < end_u; ++u) {
            sub.units.push_back(chunk.units[u]);
          }
          sub.desired_cx = chunk.desired_cx;
          sub.desired_cy = chunk.desired_cy;
          work.push_back(std::move(sub));
        }
        continue;
      }
      group_ok[gi] = false;
      for (const RowUnit& unit : chunk.units) {
        leftovers.insert(leftovers.end(), unit.cells.begin(),
                         unit.cells.end());
      }
    }
    return last;
  };

  for (const auto& path : paths) {
    std::optional<std::size_t> prev;
    for (std::size_t k : path) {
      FlatChunk& fc = flat[k];
      const double w = fc.chunk.width;
      const double h = static_cast<double>(fc.chunk.units.size()) *
                       design.row_height();
      if (!prev) {
        const double cx = fc.chunk.desired_cx;
        const double cy = fc.chunk.desired_cy;
        prev = place_with_split(std::move(fc.chunk), cx, cy, fc.group);
        continue;
      }
      // Candidate anchors adjacent to the previous committed piece.
      const PlacedChunk& pp = committed[*prev];
      const double pw = pp.chunk.width * static_cast<double>(pp.strips);
      const double ph =
          static_cast<double>(std::min(pp.chunk.units.size(),
                                       pp.fold_rows)) *
          design.row_height();
      const double pcx = pp.x + pw / 2.0;
      const double pcy = design.row(pp.row0).y + ph / 2.0;
      struct Cand {
        double cx, cy;
      };
      const Cand cands[] = {
          {pcx + pw / 2.0 + w / 2.0, pcy},  // right
          {pcx - pw / 2.0 - w / 2.0, pcy},  // left
          {pcx, pcy + ph / 2.0 + h / 2.0},  // above
          {pcx, pcy - ph / 2.0 - h / 2.0},  // below
      };
      double best_cost = std::numeric_limits<double>::infinity();
      std::optional<Window> best_wnd;
      for (const Cand& cand : cands) {
        const auto wnd = find_window(fc.chunk, rows, cand.cx, cand.cy);
        if (!wnd) continue;
        const double fold = static_cast<double>(
            std::min<std::size_t>(fc.chunk.units.size(), design.num_rows()));
        const double acx =
            wnd->x +
            fc.chunk.width * static_cast<double>(strips_of(fc.chunk)) / 2.0;
        const double acy =
            design.row(wnd->row0).y + fold * design.row_height() / 2.0;
        const double cost = std::abs(acx - cand.cx) + std::abs(acy - cand.cy);
        if (cost < best_cost) {
          best_cost = cost;
          best_wnd = wnd;
        }
      }
      if (best_wnd) {
        prev = commit(std::move(fc.chunk), *best_wnd);
      } else {
        const double cx = fc.chunk.desired_cx;
        const double cy = fc.chunk.desired_cy;
        prev = place_with_split(std::move(fc.chunk), cx, cy, fc.group);
      }
    }
  }
  for (std::size_t gi = 0; gi < group_ok.size(); ++gi) {
    if (group_ok[gi]) {
      ++stats.groups_placed_as_blocks;
    } else {
      ++stats.groups_fallback;
    }
  }

  // ---- wirelength-driven plate improvement ----------------------------------
  // Greedy relocation: move each plate to the nearest feasible window
  // around the centroid of its external connections; commit only on real
  // HPWL gain. This is what rescues plates the window search had to exile
  // far from their logic.
  // Candidate relocations are scored as incremental trials over the nets
  // incident to the chunk (internal nets are invariant under whole-chunk
  // translation, so including them is harmless): O(chunk pins) per trial
  // instead of re-walking every incident net's full pin list twice, and a
  // rejected trial rolls back without touching pl at all.
  eval::IncrementalHpwl plate_hpwl(*nl_, pl);
  for (int pass = 0; pass < 3; ++pass) {
    bool improved = false;
    for (PlacedChunk& pc : committed) {
      const geom::Point want = external_centroid(
          pc.chunk, {pc.chunk.desired_cx, pc.chunk.desired_cy});
      const RowMap trial_rows = build_rows(&pc);
      const auto window = find_window(pc.chunk, trial_rows, want.x, want.y);
      if (!window) continue;
      const std::size_t saved_row0 = pc.row0;
      const double saved_x = pc.x;
      pc.row0 = window->row0;
      pc.x = window->x;
      chunk_targets(pc);
      const auto t = plate_hpwl.trial_place(chunk_cells, chunk_centers);
      if (t.after + 1e-9 < t.before) {
        plate_hpwl.commit();  // writes the staged centers into pl
        improved = true;
        ++stats.plate_moves;
      } else {
        plate_hpwl.rollback();
        pc.row0 = saved_row0;
        pc.x = saved_x;
      }
    }
    if (!improved) break;
  }

  // Record slice displacement against the pre-legalization placement.
  for (const PlacedChunk& pc : committed) {
    for (const RowUnit& unit : pc.chunk.units) {
      for (CellId c : unit.cells) {
        stats.slices.record(pl[c].x - pl_before[c].x,
                            pl[c].y - pl_before[c].y);
      }
    }
  }

  if (between) between(pl, placed);

  // ---- glue (and any leftovers) ----------------------------------------------
  rows = build_rows(nullptr);
  std::vector<CellId> rest = std::move(leftovers);
  for (CellId c = 0; c < nl_->num_cells(); ++c) {
    if (!nl_->cell(c).fixed && !placed[c]) rest.push_back(c);
  }
  AbacusLegalizer abacus(*nl_, design);
  std::vector<CellId> failed;
  stats.rest = abacus.run(pl, rest, rows, &failed);
  if (!failed.empty()) {
    RowMap retry_rows(design);
    for (CellId c = 0; c < nl_->num_cells(); ++c) {
      if (nl_->cell(c).fixed) continue;
      bool is_failed = false;
      for (CellId f : failed) {
        if (f == c) {
          is_failed = true;
          break;
        }
      }
      if (is_failed) continue;
      const std::size_t r = design.nearest_row(pl[c].y);
      retry_rows.block(r, pl[c].x - nl_->cell_width(c) / 2.0,
                       pl[c].x + nl_->cell_width(c) / 2.0);
    }
    TetrisLegalizer tetris(*nl_, design);
    std::vector<CellId> still_failed;
    const LegalizeStats retry =
        tetris.run(pl, failed, retry_rows, &still_failed);
    stats.rest.cells_failed = retry.cells_failed;
    stats.rest.total_displacement += retry.total_displacement;
  }
  return stats;
}

}  // namespace dp::legal
