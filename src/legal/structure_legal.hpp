#pragma once

#include <functional>
#include <vector>

#include "legal/legalizer.hpp"
#include "legal/rowmap.hpp"
#include "netlist/structure.hpp"

namespace dp::legal {

struct StructureLegalizeStats {
  LegalizeStats slices;  ///< displacement of datapath cells
  LegalizeStats rest;    ///< displacement of remaining movable cells
  std::size_t groups_placed_as_blocks = 0;
  std::size_t groups_fallback = 0;  ///< packed per-unit instead of as a block
  std::size_t plate_moves = 0;      ///< improvement relocations accepted
};

/// Structure-preserving legalization: each datapath group is legalized as
/// a rectangular array (one "row unit" per bit slice — or per stage for
/// transposed groups — on consecutive rows, stage columns sharing x
/// offsets), folding arrays taller than the core into side-by-side strips.
/// The remaining cells are then Tetris-legalized into the leftover free
/// space.
///
/// `bits_along_y[g]` gives group g's orientation: true = bit slices are
/// horizontal rows (the usual datapath layout).
class StructureLegalizer {
 public:
  StructureLegalizer(const netlist::Netlist& nl,
                     const netlist::Design& design,
                     const netlist::StructureAnnotation& groups,
                     std::vector<bool> bits_along_y);

  /// `between` (optional) is invoked after the plates are committed and
  /// improved but before the remaining cells are legalized; it receives
  /// the placement and a mask of the frozen plate cells. The macro-style
  /// flow uses it to run a glue-only global placement around the plates.
  using BetweenHook =
      std::function<void(netlist::Placement&, const std::vector<bool>&)>;

  StructureLegalizeStats run(netlist::Placement& pl,
                             const BetweenHook& between = nullptr);

 private:
  const netlist::Netlist* nl_;
  const netlist::Design* design_;
  const netlist::StructureAnnotation* groups_;
  std::vector<bool> bits_along_y_;
};

}  // namespace dp::legal
