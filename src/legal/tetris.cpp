#include "legal/tetris.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dp::legal {

using netlist::CellId;

TetrisLegalizer::TetrisLegalizer(const netlist::Netlist& nl,
                                 const netlist::Design& design)
    : nl_(&nl), design_(&design) {}

LegalizeStats TetrisLegalizer::run(netlist::Placement& pl,
                                   const std::vector<CellId>& cells,
                                   RowMap& rows,
                                   std::vector<CellId>* failed) {
  LegalizeStats stats;
  const netlist::Design& design = *design_;
  const double site = design.site_width();
  const double core_lx = design.core().lx;

  // Per-segment fill tails, aligned with rows.segments(r).
  std::vector<std::vector<double>> tails(rows.num_rows());
  for (std::size_t r = 0; r < rows.num_rows(); ++r) {
    for (const Segment& s : rows.segments(r)) {
      // Tails start at the first site boundary inside the segment.
      tails[r].push_back(core_lx +
                         std::ceil((s.lx - core_lx) / site - 1e-9) * site);
    }
  }

  std::vector<CellId> order = cells;
  std::sort(order.begin(), order.end(), [&](CellId a, CellId b) {
    return pl[a].x - nl_->cell_width(a) / 2.0 <
           pl[b].x - nl_->cell_width(b) / 2.0;
  });

  for (CellId c : order) {
    const double w = nl_->cell_width(c);
    const double h = nl_->cell_height(c);
    const double want_lx = pl[c].x - w / 2.0;
    const double want_ly = pl[c].y - h / 2.0;

    double best_cost = std::numeric_limits<double>::infinity();
    std::size_t best_row = 0, best_seg = 0;
    double best_x = 0.0;

    for (std::size_t r = 0; r < rows.num_rows(); ++r) {
      const double dy = design.row(r).y - want_ly;
      if (dy * dy >= best_cost) continue;
      const auto& segs = rows.segments(r);
      for (std::size_t si = 0; si < segs.size(); ++si) {
        const double tail = tails[r][si];
        const double limit = segs[si].hx - w;
        if (tail > limit + 1e-9) continue;  // cell does not fit
        // Desired x snapped down to the site grid, clamped to [tail, limit].
        double x = core_lx + std::floor((want_lx - core_lx) / site + 0.5) * site;
        x = std::clamp(x, tail, core_lx +
                                    std::floor((limit - core_lx) / site + 1e-9) *
                                        site);
        const double dx = x - want_lx;
        const double cost = dx * dx + dy * dy;
        if (cost < best_cost) {
          best_cost = cost;
          best_row = r;
          best_seg = si;
          best_x = x;
        }
      }
    }

    if (!std::isfinite(best_cost)) {
      ++stats.cells_failed;
      if (failed != nullptr) failed->push_back(c);
      continue;
    }
    tails[best_row][best_seg] = best_x + w;
    const double new_cx = best_x + w / 2.0;
    const double new_cy = design.row(best_row).y + h / 2.0;
    stats.record(new_cx - pl[c].x, new_cy - pl[c].y);
    pl[c] = {new_cx, new_cy};
  }
  return stats;
}

LegalizeStats TetrisLegalizer::run_all(netlist::Placement& pl) {
  std::vector<CellId> cells;
  for (CellId c = 0; c < nl_->num_cells(); ++c) {
    if (!nl_->cell(c).fixed) cells.push_back(c);
  }
  RowMap rows(*design_);
  return run(pl, cells, rows);
}

}  // namespace dp::legal
