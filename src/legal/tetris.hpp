#pragma once

#include <vector>

#include "legal/legalizer.hpp"
#include "legal/rowmap.hpp"

namespace dp::legal {

/// Greedy Tetris legalization over a free-space RowMap.
///
/// Cells are processed in order of their desired left edge; each is packed
/// into the row segment minimizing squared displacement. Supports arbitrary
/// blocked regions (fixed macros, pre-placed datapath slices), which is what
/// the structure-preserving flow needs.
class TetrisLegalizer {
 public:
  TetrisLegalizer(const netlist::Netlist& nl, const netlist::Design& design);

  /// Legalize `cells` (centers in `pl` are desired positions, updated in
  /// place to legal positions). `rows` provides the available free space;
  /// space consumed by placed cells is NOT re-blocked in `rows` (a
  /// per-segment fill tail is used instead), so pass a fresh RowMap per run.
  /// Cells that could not be placed are appended to `failed` if given
  /// (their positions are left untouched).
  LegalizeStats run(netlist::Placement& pl,
                    const std::vector<netlist::CellId>& cells, RowMap& rows,
                    std::vector<netlist::CellId>* failed = nullptr);

  /// Convenience: legalize all movable cells on an empty (obstacle-free)
  /// row map.
  LegalizeStats run_all(netlist::Placement& pl);

 private:
  const netlist::Netlist* nl_;
  const netlist::Design* design_;
};

}  // namespace dp::legal
