#include "netlist/bookshelf.hpp"

#include <cmath>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace dp::netlist {

namespace {

std::ofstream open_out(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("bookshelf: cannot write " + path);
  return out;
}

std::ifstream open_in(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("bookshelf: cannot read " + path);
  return in;
}

/// Strip comments and return whether any tokens remain.
bool next_content_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    if (line.find_first_not_of(" \t\r\n") != std::string::npos) return true;
  }
  return false;
}

}  // namespace

void write_bookshelf(const std::string& basename, const Netlist& netlist,
                     const Design& design, const Placement& placement) {
  {  // .aux references sibling files by bare name, per the format.
    const auto slash = basename.find_last_of('/');
    const std::string stem =
        slash == std::string::npos ? basename : basename.substr(slash + 1);
    auto out = open_out(basename + ".aux");
    out << "RowBasedPlacement : " << stem << ".nodes " << stem << ".nets "
        << stem << ".pl " << stem << ".scl\n";
  }
  {  // .nodes
    auto out = open_out(basename + ".nodes");
    out << "UCLA nodes 1.0\n";
    std::size_t terminals = 0;
    for (const Cell& c : netlist.cells()) terminals += c.fixed ? 1u : 0u;
    out << "NumNodes : " << netlist.num_cells() << "\n";
    out << "NumTerminals : " << terminals << "\n";
    for (CellId c = 0; c < netlist.num_cells(); ++c) {
      out << "  " << netlist.cell(c).name << " " << netlist.cell_width(c)
          << " " << netlist.cell_height(c)
          << (netlist.cell(c).fixed ? " terminal" : "") << "\n";
    }
  }
  {  // .nets
    auto out = open_out(basename + ".nets");
    out << "UCLA nets 1.0\n";
    out << "NumNets : " << netlist.num_nets() << "\n";
    out << "NumPins : " << netlist.num_pins() << "\n";
    for (NetId n = 0; n < netlist.num_nets(); ++n) {
      const Net& net = netlist.net(n);
      out << "NetDegree : " << net.pins.size() << " " << net.name << "\n";
      for (PinId p : net.pins) {
        const Pin& pin = netlist.pin(p);
        out << "  " << netlist.cell(pin.cell).name << " "
            << (pin.dir == PinDir::kOutput ? "O" : "I") << " : "
            << pin.offset_x << " " << pin.offset_y << "\n";
      }
    }
  }
  {  // .pl — lower-left corners per the format convention.
    auto out = open_out(basename + ".pl");
    out << "UCLA pl 1.0\n";
    for (CellId c = 0; c < netlist.num_cells(); ++c) {
      const double lx = placement[c].x - netlist.cell_width(c) / 2.0;
      const double ly = placement[c].y - netlist.cell_height(c) / 2.0;
      out << netlist.cell(c).name << " " << lx << " " << ly << " : N"
          << (netlist.cell(c).fixed ? " /FIXED" : "") << "\n";
    }
  }
  {  // .scl
    auto out = open_out(basename + ".scl");
    out << "UCLA scl 1.0\n";
    out << "NumRows : " << design.num_rows() << "\n";
    for (std::size_t r = 0; r < design.num_rows(); ++r) {
      const Row& row = design.row(r);
      const auto sites = static_cast<long long>(
          std::floor((row.hx - row.lx) / design.site_width()));
      out << "CoreRow Horizontal\n";
      out << "  Coordinate : " << row.y << "\n";
      out << "  Height : " << design.row_height() << "\n";
      out << "  Sitewidth : " << design.site_width() << "\n";
      out << "  Sitespacing : " << design.site_width() << "\n";
      out << "  SubrowOrigin : " << row.lx << " NumSites : " << sites << "\n";
      out << "End\n";
    }
  }
}

BookshelfDesign read_bookshelf(const std::string& aux_path) {
  std::string nodes_path, nets_path, pl_path, scl_path;
  {
    auto in = open_in(aux_path);
    std::string line;
    if (!next_content_line(in, line)) {
      throw std::runtime_error("bookshelf: empty aux file");
    }
    std::istringstream ls(line);
    std::string tag, colon;
    ls >> tag >> colon;
    std::string file;
    const auto dir_end = aux_path.find_last_of('/');
    const std::string dir =
        dir_end == std::string::npos ? "" : aux_path.substr(0, dir_end + 1);
    while (ls >> file) {
      const std::string path = dir + file;
      if (file.ends_with(".nodes")) nodes_path = path;
      else if (file.ends_with(".nets")) nets_path = path;
      else if (file.ends_with(".pl")) pl_path = path;
      else if (file.ends_with(".scl")) scl_path = path;
    }
    if (nodes_path.empty() || nets_path.empty() || pl_path.empty() ||
        scl_path.empty()) {
      throw std::runtime_error("bookshelf: aux file missing sections");
    }
  }

  // Pass 1: node records; the library must be complete before the Netlist
  // is built, so nodes are staged first.
  struct RawNode {
    std::string name;
    double w = 0.0, h = 0.0;
    bool terminal = false;
  };
  std::vector<RawNode> raw_nodes;
  {
    auto in = open_in(nodes_path);
    std::string line;
    while (next_content_line(in, line)) {
      std::istringstream ls(line);
      std::string first;
      ls >> first;
      if (first == "UCLA" || first == "NumNodes" || first == "NumTerminals") {
        continue;
      }
      RawNode r;
      r.name = first;
      if (!(ls >> r.w >> r.h)) {
        throw std::runtime_error("bookshelf: bad node line: " + line);
      }
      std::string tail;
      ls >> tail;
      r.terminal = (tail == "terminal");
      raw_nodes.push_back(std::move(r));
    }
  }

  // One generic type per distinct (width, height). Pin offsets come from
  // the .nets file, so the type's pin bank carries zero offsets.
  auto library = std::make_shared<Library>();
  std::unordered_map<long long, CellTypeId> type_by_size;
  auto size_key = [](double w, double h) {
    return static_cast<long long>(std::llround(w * 1e6)) * 1000003LL +
           static_cast<long long>(std::llround(h * 1e6));
  };
  for (const RawNode& r : raw_nodes) {
    const long long key = size_key(r.w, r.h);
    if (type_by_size.contains(key)) continue;
    CellType t;
    t.name = "GEN_" + std::to_string(type_by_size.size());
    t.func = CellFunc::kGeneric;
    t.width = r.w;
    t.height = r.h;
    type_by_size.emplace(key, library->add(std::move(t)));
  }

  NetlistBuilder builder{std::shared_ptr<const Library>(library)};
  struct NodeRec {
    CellId cell = kInvalidId;
    std::uint16_t next_port = 0;
  };
  std::unordered_map<std::string, NodeRec> by_name;
  by_name.reserve(raw_nodes.size());
  for (const RawNode& r : raw_nodes) {
    const CellId id = builder.add_cell(
        r.name, type_by_size.at(size_key(r.w, r.h)), r.terminal);
    by_name.emplace(r.name, NodeRec{id, 0});
  }

  // Pass 2: nets. Ports are appended to generic types on demand; since the
  // shared Library is owned by this reader until take(), extending its pin
  // banks before any connect() that uses them keeps indices valid.
  struct PendingOffset {
    PinId pin;
    double x, y;
  };
  std::vector<PendingOffset> offsets;
  {
    auto in = open_in(nets_path);
    std::string line;
    NetId current = kInvalidId;
    std::size_t net_count = 0;
    while (next_content_line(in, line)) {
      std::istringstream ls(line);
      std::string first;
      ls >> first;
      if (first == "UCLA" || first == "NumNets" || first == "NumPins") {
        continue;
      }
      if (first == "NetDegree") {
        std::string colon, name;
        std::size_t degree = 0;
        ls >> colon >> degree >> name;
        if (name.empty()) name = "net_" + std::to_string(net_count);
        current = builder.add_net(name);
        ++net_count;
        continue;
      }
      if (current == kInvalidId) {
        throw std::runtime_error("bookshelf: pin before NetDegree");
      }
      auto it = by_name.find(first);
      if (it == by_name.end()) {
        throw std::runtime_error("bookshelf: pin on unknown node " + first);
      }
      std::string dir, colon;
      double ox = 0.0, oy = 0.0;
      ls >> dir >> colon >> ox >> oy;
      NodeRec& rec = it->second;
      // Grow the generic type's pin bank if this instance needs more ports.
      const CellTypeId tid = builder.peek().cell(rec.cell).type;
      CellType& type = library->mutable_type(tid);
      while (type.pins.size() <= rec.next_port) {
        type.pins.push_back({"P" + std::to_string(type.pins.size()),
                             PinDir::kInput, 0.0, 0.0});
      }
      type.pins[rec.next_port].dir =
          (dir == "O") ? PinDir::kOutput : PinDir::kInput;
      const PinId pin = builder.connect(rec.cell, rec.next_port++, current);
      offsets.push_back({pin, ox, oy});
    }
  }

  Netlist netlist = builder.take();
  for (const PendingOffset& o : offsets) {
    netlist.set_pin_offset(o.pin, o.x, o.y);
  }

  // Pass 3: .scl rows.
  Design design;
  {
    auto in = open_in(scl_path);
    std::string line;
    double row_height = 1.0, site_width = 1.0;
    double y = 0.0, origin = 0.0;
    double sites = 0.0;
    geom::Rect core;
    bool have_row = false;
    while (next_content_line(in, line)) {
      std::istringstream ls(line);
      std::string first;
      ls >> first;
      std::string colon;
      if (first == "Coordinate") {
        ls >> colon >> y;
      } else if (first == "Height") {
        ls >> colon >> row_height;
      } else if (first == "Sitewidth") {
        ls >> colon >> site_width;
      } else if (first == "SubrowOrigin") {
        std::string numsites;
        ls >> colon >> origin >> numsites >> colon >> sites;
        have_row = true;
        core.expand(geom::Point{origin, y});
        core.expand(geom::Point{origin + sites * site_width, y + row_height});
      }
    }
    if (!have_row) throw std::runtime_error("bookshelf: scl has no rows");
    design = Design(core, row_height, site_width);
  }

  // Pass 4: .pl positions (convert lower-left corners to centers).
  Placement placement(netlist.num_cells());
  {
    auto in = open_in(pl_path);
    std::string line;
    while (next_content_line(in, line)) {
      std::istringstream ls(line);
      std::string name;
      ls >> name;
      if (name == "UCLA") continue;
      double lx = 0.0, ly = 0.0;
      if (!(ls >> lx >> ly)) continue;
      auto it = by_name.find(name);
      if (it == by_name.end()) continue;
      const CellId c = it->second.cell;
      placement[c] = {lx + netlist.cell_width(c) / 2.0,
                      ly + netlist.cell_height(c) / 2.0};
    }
  }

  return BookshelfDesign{std::move(library), std::move(netlist),
                         std::move(design), std::move(placement)};
}

void write_groups(const std::string& path, const Netlist& netlist,
                  const StructureAnnotation& annotation) {
  auto out = open_out(path);
  out << "# dpplace structure groups\n";
  for (const auto& g : annotation.groups) {
    out << "group " << g.name << " " << g.bits << " " << g.stages << " "
        << g.confidence << "\n";
    for (std::size_t b = 0; b < g.bits; ++b) {
      out << " ";
      for (std::size_t s = 0; s < g.stages; ++s) {
        const CellId c = g.at(b, s);
        out << " "
            << (c == kInvalidId ? std::string("-") : netlist.cell(c).name);
      }
      out << "\n";
    }
  }
}

StructureAnnotation read_groups(const std::string& path,
                                const Netlist& netlist) {
  std::unordered_map<std::string, CellId> by_name;
  for (CellId c = 0; c < netlist.num_cells(); ++c) {
    by_name.emplace(netlist.cell(c).name, c);
  }
  auto in = open_in(path);
  StructureAnnotation ann;
  std::string line;
  StructureGroup* current = nullptr;
  std::size_t bit = 0;
  while (next_content_line(in, line)) {
    std::istringstream ls(line);
    std::string first;
    ls >> first;
    if (first == "group") {
      std::string name;
      std::size_t bits = 0, stages = 0;
      double conf = 1.0;
      ls >> name >> bits >> stages >> conf;
      ann.groups.push_back(StructureGroup::make(name, bits, stages));
      ann.groups.back().confidence = conf;
      current = &ann.groups.back();
      bit = 0;
      continue;
    }
    if (current == nullptr || bit >= current->bits) {
      throw std::runtime_error("groups: row outside any group");
    }
    std::string tok = first;
    for (std::size_t s = 0; s < current->stages; ++s) {
      if (s > 0 && !(ls >> tok)) {
        throw std::runtime_error("groups: short bit row");
      }
      if (tok != "-") {
        auto it = by_name.find(tok);
        if (it == by_name.end()) {
          throw std::runtime_error("groups: unknown cell " + tok);
        }
        current->at(bit, s) = it->second;
      }
    }
    ++bit;
  }
  return ann;
}

}  // namespace dp::netlist
