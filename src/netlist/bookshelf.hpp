#pragma once

#include <memory>
#include <string>

#include "netlist/design.hpp"
#include "netlist/netlist.hpp"
#include "netlist/structure.hpp"

namespace dp::netlist {

/// A complete placement problem as stored on disk.
struct BookshelfDesign {
  /// Owns the generic types referenced by `netlist` (which shares it).
  std::shared_ptr<const Library> library;
  Netlist netlist;
  Design design;
  Placement placement;
};

/// Writes `basename.nodes/.nets/.pl/.scl/.aux` in the GSRC Bookshelf
/// subset used by the ISPD placement contests. Fixed cells are emitted as
/// terminals. Coordinates written are cell lower-left corners, per the
/// format convention.
void write_bookshelf(const std::string& basename, const Netlist& netlist,
                     const Design& design, const Placement& placement);

/// Reads a Bookshelf design written by write_bookshelf (or any design in
/// the same subset of the format). Cell functions are kGeneric since the
/// format carries no logic information.
BookshelfDesign read_bookshelf(const std::string& aux_path);

/// Sidecar format for structure annotations:
///   group <name> <bits> <stages>
///   <bits*stages cell names row-major, "-" for holes>
void write_groups(const std::string& path, const Netlist& netlist,
                  const StructureAnnotation& annotation);

StructureAnnotation read_groups(const std::string& path,
                                const Netlist& netlist);

}  // namespace dp::netlist
