#include "netlist/design.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dp::netlist {

Design::Design(geom::Rect core, double row_height, double site_width)
    : core_(core), row_height_(row_height), site_width_(site_width) {
  if (core.empty() || row_height <= 0.0 || site_width <= 0.0) {
    throw std::invalid_argument("Design: degenerate core or grid");
  }
  const auto nrows =
      static_cast<std::size_t>(std::floor(core.height() / row_height));
  rows_.reserve(nrows);
  for (std::size_t r = 0; r < nrows; ++r) {
    rows_.push_back(
        {core.ly + static_cast<double>(r) * row_height, core.lx, core.hx});
  }
  if (rows_.empty()) {
    throw std::invalid_argument("Design: core shorter than one row");
  }
}

Design Design::for_netlist(const Netlist& netlist, double utilization,
                           double aspect_ratio) {
  if (utilization <= 0.0 || utilization > 1.0) {
    throw std::invalid_argument("Design::for_netlist: utilization in (0,1]");
  }
  const double area = netlist.movable_area() / utilization;
  // height = sqrt(area * aspect), rounded to whole rows; width from area.
  double height = std::sqrt(area * aspect_ratio);
  const double nrows = std::max(1.0, std::round(height / kRowHeight));
  height = nrows * kRowHeight;
  double width = area / height;
  // Round width to whole sites and keep at least the widest cell.
  double max_cell_width = 0.0;
  for (CellId c = 0; c < netlist.num_cells(); ++c) {
    if (!netlist.cell(c).fixed) {
      max_cell_width = std::max(max_cell_width, netlist.cell_width(c));
    }
  }
  width = std::max(width, max_cell_width);
  width = std::ceil(width / kSiteWidth) * kSiteWidth;
  return Design({0.0, 0.0, width, height}, kRowHeight, kSiteWidth);
}

std::size_t Design::nearest_row(double y) const {
  const double rel = (y - core_.ly) / row_height_;
  const auto idx = static_cast<long long>(std::floor(rel));
  const long long clamped =
      std::clamp<long long>(idx, 0, static_cast<long long>(rows_.size()) - 1);
  return static_cast<std::size_t>(clamped);
}

double Design::snap_x(double x) const {
  const double rel = (x - core_.lx) / site_width_;
  return core_.lx + std::round(rel) * site_width_;
}

}  // namespace dp::netlist
