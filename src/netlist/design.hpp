#pragma once

#include <vector>

#include "geom/rect.hpp"
#include "netlist/netlist.hpp"

namespace dp::netlist {

/// One placement row inside the core region.
struct Row {
  double y = 0.0;   ///< bottom edge of the row
  double lx = 0.0;  ///< left boundary
  double hx = 0.0;  ///< right boundary
};

/// Floorplan of a design: the core placement region and its row structure.
/// All rows are full-width and of uniform height (standard-cell region).
class Design {
 public:
  Design() = default;
  Design(geom::Rect core, double row_height, double site_width);

  /// Size a square-ish core for `netlist` at the given target utilization
  /// (movable area / core area).
  static Design for_netlist(const Netlist& netlist, double utilization,
                            double aspect_ratio = 1.0);

  const geom::Rect& core() const { return core_; }
  double row_height() const { return row_height_; }
  double site_width() const { return site_width_; }
  std::size_t num_rows() const { return rows_.size(); }
  const Row& row(std::size_t i) const { return rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }

  /// Row whose vertical span contains `y` (clamped to valid rows).
  std::size_t nearest_row(double y) const;

  /// Snap an x coordinate to the site grid (toward the nearest site).
  double snap_x(double x) const;

 private:
  geom::Rect core_;
  double row_height_ = 1.0;
  double site_width_ = 0.25;
  std::vector<Row> rows_;
};

}  // namespace dp::netlist
