#include "netlist/library.hpp"

#include <stdexcept>

namespace dp::netlist {

const char* to_string(CellFunc func) {
  switch (func) {
    case CellFunc::kInv: return "INV";
    case CellFunc::kBuf: return "BUF";
    case CellFunc::kNand2: return "NAND2";
    case CellFunc::kNor2: return "NOR2";
    case CellFunc::kAnd2: return "AND2";
    case CellFunc::kOr2: return "OR2";
    case CellFunc::kXor2: return "XOR2";
    case CellFunc::kXnor2: return "XNOR2";
    case CellFunc::kAnd3: return "AND3";
    case CellFunc::kOr3: return "OR3";
    case CellFunc::kNand3: return "NAND3";
    case CellFunc::kNor3: return "NOR3";
    case CellFunc::kAoi21: return "AOI21";
    case CellFunc::kOai21: return "OAI21";
    case CellFunc::kMux2: return "MUX2";
    case CellFunc::kHalfAdder: return "HA";
    case CellFunc::kFullAdder: return "FA";
    case CellFunc::kDff: return "DFF";
    case CellFunc::kPad: return "PAD";
    case CellFunc::kGeneric: return "GENERIC";
  }
  return "?";
}

CellTypeId Library::add(CellType type) {
  types_.push_back(std::move(type));
  return static_cast<CellTypeId>(types_.size() - 1);
}

CellTypeId Library::by_func(CellFunc func) const {
  for (std::size_t i = 0; i < types_.size(); ++i) {
    if (types_[i].func == func) return static_cast<CellTypeId>(i);
  }
  throw std::out_of_range("Library::by_func: no such function");
}

namespace {

CellType make_type(CellFunc func, int width_sites,
                   std::vector<std::string> inputs, std::string output) {
  CellType t;
  t.name = to_string(func);
  t.func = func;
  t.width = width_sites * kSiteWidth;
  t.height = kRowHeight;

  const std::size_t npins = inputs.size() + (output.empty() ? 0u : 1u);
  std::size_t k = 0;
  auto offset_x = [&](std::size_t i) {
    // Pins evenly spread along the cell width, relative to the center.
    return t.width * (static_cast<double>(i) + 1.0) /
               (static_cast<double>(npins) + 1.0) -
           t.width / 2.0;
  };
  for (auto& in : inputs) {
    t.pins.push_back({std::move(in), PinDir::kInput, offset_x(k++), 0.0});
  }
  if (!output.empty()) {
    t.output_pin = static_cast<int>(t.pins.size());
    t.pins.push_back({std::move(output), PinDir::kOutput, offset_x(k++), 0.0});
  }
  return t;
}

Library build_standard_library() {
  Library lib;
  lib.add(make_type(CellFunc::kInv, 3, {"A"}, "Y"));
  lib.add(make_type(CellFunc::kBuf, 3, {"A"}, "Y"));
  lib.add(make_type(CellFunc::kNand2, 4, {"A", "B"}, "Y"));
  lib.add(make_type(CellFunc::kNor2, 4, {"A", "B"}, "Y"));
  lib.add(make_type(CellFunc::kAnd2, 5, {"A", "B"}, "Y"));
  lib.add(make_type(CellFunc::kOr2, 5, {"A", "B"}, "Y"));
  lib.add(make_type(CellFunc::kXor2, 6, {"A", "B"}, "Y"));
  lib.add(make_type(CellFunc::kXnor2, 6, {"A", "B"}, "Y"));
  lib.add(make_type(CellFunc::kAnd3, 6, {"A", "B", "C"}, "Y"));
  lib.add(make_type(CellFunc::kOr3, 6, {"A", "B", "C"}, "Y"));
  lib.add(make_type(CellFunc::kNand3, 5, {"A", "B", "C"}, "Y"));
  lib.add(make_type(CellFunc::kNor3, 5, {"A", "B", "C"}, "Y"));
  lib.add(make_type(CellFunc::kAoi21, 6, {"A", "B", "C"}, "Y"));
  lib.add(make_type(CellFunc::kOai21, 6, {"A", "B", "C"}, "Y"));
  lib.add(make_type(CellFunc::kMux2, 7, {"A", "B", "S"}, "Y"));
  lib.add(make_type(CellFunc::kHalfAdder, 8, {"A", "B"}, "S"));
  // The full adder has two outputs in silicon; we model CO as a second
  // "input-class" port so every type keeps a single canonical output (S),
  // which simplifies fan-out traversal. Direction is still kOutput.
  {
    CellType fa = make_type(CellFunc::kFullAdder, 10, {"A", "B", "CI"}, "S");
    fa.pins.push_back(
        {"CO", PinDir::kOutput, fa.width * 0.4, 0.0});
    lib.add(std::move(fa));
  }
  lib.add(make_type(CellFunc::kDff, 9, {"D"}, "Q"));
  // PAD: fixed I/O terminal; square, one bidirectional pin at the center.
  {
    CellType pad;
    pad.name = to_string(CellFunc::kPad);
    pad.func = CellFunc::kPad;
    pad.width = 4 * kSiteWidth;
    pad.height = kRowHeight;
    pad.pins.push_back({"P", PinDir::kInput, 0.0, 0.0});
    lib.add(std::move(pad));
  }
  return lib;
}

}  // namespace

const Library& standard_library() {
  static const Library lib = build_standard_library();
  return lib;
}

}  // namespace dp::netlist
