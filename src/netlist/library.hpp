#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dp::netlist {

/// Logic function of a standard cell. The extractor fingerprints cells by
/// function, and the datapath generator instantiates these; the set mirrors
/// a small industrial library (plus PAD for fixed I/O terminals).
enum class CellFunc : std::uint8_t {
  kInv,
  kBuf,
  kNand2,
  kNor2,
  kAnd2,
  kOr2,
  kXor2,
  kXnor2,
  kAnd3,
  kOr3,
  kNand3,
  kNor3,
  kAoi21,
  kOai21,
  kMux2,
  kHalfAdder,
  kFullAdder,
  kDff,
  kPad,
  /// Function-less cell, used for netlists imported from Bookshelf files
  /// (the format carries geometry and connectivity but no logic function).
  kGeneric,
};

const char* to_string(CellFunc func);

enum class PinDir : std::uint8_t { kInput, kOutput };

/// One pin of a cell *type* (the template); instances get Pin objects.
struct PinSpec {
  std::string name;
  PinDir dir = PinDir::kInput;
  /// Offset of the pin from the cell center, in database units.
  double offset_x = 0.0;
  double offset_y = 0.0;
};

using CellTypeId = std::uint32_t;

/// A standard-cell master: geometry plus pin templates.
struct CellType {
  std::string name;
  CellFunc func = CellFunc::kInv;
  double width = 1.0;   ///< database units
  double height = 1.0;  ///< database units (== row height for core cells)
  std::vector<PinSpec> pins;

  /// Index of the (single) output pin in `pins`, or -1 for PAD-style types.
  int output_pin = -1;

  std::size_t num_inputs() const {
    return pins.size() - (output_pin >= 0 ? 1u : 0u);
  }
};

/// An immutable collection of cell types, indexed by CellTypeId.
class Library {
 public:
  CellTypeId add(CellType type);

  const CellType& type(CellTypeId id) const { return types_[id]; }
  /// Mutable access for library construction (e.g. file readers growing a
  /// generic type's pin bank). Not exposed through const Library&.
  CellType& mutable_type(CellTypeId id) { return types_[id]; }
  std::size_t size() const { return types_.size(); }

  /// Lookup by function; every function appears at most once in the
  /// standard library. Returns the id, or throws std::out_of_range.
  CellTypeId by_func(CellFunc func) const;

 private:
  std::vector<CellType> types_;
};

/// The built-in library used by the benchmark generator. Row height is 1.0;
/// widths are in sites of 0.25 units (INV = 3 sites, FA = 10 sites, ...).
const Library& standard_library();

/// Row height shared by all core cells in the standard library.
inline constexpr double kRowHeight = 1.0;
/// Placement site width used by the standard library.
inline constexpr double kSiteWidth = 0.25;

}  // namespace dp::netlist
