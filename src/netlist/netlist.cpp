#include "netlist/netlist.hpp"

#include <stdexcept>

namespace dp::netlist {

PinId Netlist::driver(NetId id) const {
  for (PinId p : nets_[id].pins) {
    if (pins_[p].dir == PinDir::kOutput) return p;
  }
  return kInvalidId;
}

double Netlist::movable_area() const {
  double area = 0.0;
  for (CellId c = 0; c < cells_.size(); ++c) {
    if (!cells_[c].fixed) area += cell_area(c);
  }
  return area;
}

std::size_t Netlist::num_movable() const {
  std::size_t n = 0;
  for (const Cell& c : cells_) {
    if (!c.fixed) ++n;
  }
  return n;
}

CellId NetlistBuilder::add_cell(std::string name, CellTypeId type,
                                bool fixed) {
  Cell c;
  c.name = std::move(name);
  c.type = type;
  c.fixed = fixed;
  netlist_.cells_.push_back(std::move(c));
  return static_cast<CellId>(netlist_.cells_.size() - 1);
}

CellId NetlistBuilder::add_cell(std::string name, CellFunc func, bool fixed) {
  return add_cell(std::move(name), netlist_.library().by_func(func), fixed);
}

NetId NetlistBuilder::add_net(std::string name, double weight) {
  Net n;
  n.name = std::move(name);
  n.weight = weight;
  netlist_.nets_.push_back(std::move(n));
  return static_cast<NetId>(netlist_.nets_.size() - 1);
}

PinId NetlistBuilder::connect(CellId cell, std::uint16_t port, NetId net) {
  const CellType& type = netlist_.cell_type(cell);
  if (port >= type.pins.size()) {
    throw std::out_of_range("NetlistBuilder::connect: bad port index");
  }
  for (PinId existing : netlist_.cells_[cell].pins) {
    if (netlist_.pins_[existing].port == port) {
      throw std::logic_error("NetlistBuilder::connect: port already bound on " +
                             netlist_.cells_[cell].name);
    }
  }
  const PinSpec& spec = type.pins[port];
  Pin p;
  p.cell = cell;
  p.net = net;
  p.dir = spec.dir;
  p.offset_x = spec.offset_x;
  p.offset_y = spec.offset_y;
  p.port = port;
  netlist_.pins_.push_back(p);
  const auto pin_id = static_cast<PinId>(netlist_.pins_.size() - 1);
  netlist_.cells_[cell].pins.push_back(pin_id);
  netlist_.nets_[net].pins.push_back(pin_id);
  return pin_id;
}

PinId NetlistBuilder::connect_dir(CellId cell, std::uint16_t port, NetId net,
                                  PinDir dir) {
  const PinId id = connect(cell, port, net);
  netlist_.pins_[id].dir = dir;
  return id;
}

PinId NetlistBuilder::connect(CellId cell, const std::string& port_name,
                              NetId net) {
  const CellType& type = netlist_.cell_type(cell);
  for (std::size_t i = 0; i < type.pins.size(); ++i) {
    if (type.pins[i].name == port_name) {
      return connect(cell, static_cast<std::uint16_t>(i), net);
    }
  }
  throw std::out_of_range("NetlistBuilder::connect: no port named " +
                          port_name + " on type " + type.name);
}

}  // namespace dp::netlist
