#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "geom/point.hpp"
#include "netlist/library.hpp"

namespace dp::netlist {

using CellId = std::uint32_t;
using NetId = std::uint32_t;
using PinId = std::uint32_t;

inline constexpr std::uint32_t kInvalidId =
    std::numeric_limits<std::uint32_t>::max();

/// A cell instance. Geometry comes from its CellType; position lives in a
/// separate Placement vector so optimizers can treat coordinates as dense
/// arrays.
struct Cell {
  std::string name;
  CellTypeId type = 0;
  bool fixed = false;
  std::vector<PinId> pins;
};

/// A pin instance: the junction between one cell and one net.
struct Pin {
  CellId cell = kInvalidId;
  NetId net = kInvalidId;
  PinDir dir = PinDir::kInput;
  /// Offset from the cell center, copied from the PinSpec at creation.
  double offset_x = 0.0;
  double offset_y = 0.0;
  /// Index of the pin within its cell type (the "port"); extraction keys
  /// fan-out traversal on this.
  std::uint16_t port = 0;
};

/// A signal net connecting two or more pins.
struct Net {
  std::string name;
  double weight = 1.0;
  std::vector<PinId> pins;
};

/// Cell positions (centers), indexed by CellId.
using Placement = std::vector<geom::Point>;

/// The flat gate-level netlist: a pin-based hypergraph over a Library.
///
/// Topology is append-only: cells/nets/pins are created through
/// NetlistBuilder (or the Bookshelf reader) and never removed, so all ids
/// stay stable for the lifetime of the netlist.
class Netlist {
 public:
  /// Non-owning: `library` must outlive the netlist (e.g. the static
  /// standard_library()).
  explicit Netlist(const Library& library)
      : library_(&library, [](const Library*) {}) {}

  /// Owning: the netlist shares ownership of a dynamically built library
  /// (e.g. from the Bookshelf reader).
  explicit Netlist(std::shared_ptr<const Library> library)
      : library_(std::move(library)) {}

  const Library& library() const { return *library_; }

  const Cell& cell(CellId id) const { return cells_[id]; }
  const Net& net(NetId id) const { return nets_[id]; }
  const Pin& pin(PinId id) const { return pins_[id]; }

  std::size_t num_cells() const { return cells_.size(); }
  std::size_t num_nets() const { return nets_.size(); }
  std::size_t num_pins() const { return pins_.size(); }

  std::span<const Cell> cells() const { return cells_; }
  std::span<const Net> nets() const { return nets_; }
  std::span<const Pin> pins() const { return pins_; }

  const CellType& cell_type(CellId id) const {
    return library_->type(cells_[id].type);
  }
  double cell_width(CellId id) const { return cell_type(id).width; }
  double cell_height(CellId id) const { return cell_type(id).height; }
  double cell_area(CellId id) const {
    const auto& t = cell_type(id);
    return t.width * t.height;
  }

  /// Absolute position of a pin given a placement of cell centers.
  geom::Point pin_position(PinId id, const Placement& pl) const {
    const Pin& p = pins_[id];
    return {pl[p.cell].x + p.offset_x, pl[p.cell].y + p.offset_y};
  }

  /// Driver pin of a net (first output-direction pin), or kInvalidId.
  PinId driver(NetId id) const;

  /// Total area of movable cells.
  double movable_area() const;

  /// Number of movable (non-fixed) cells.
  std::size_t num_movable() const;

  /// Override a pin's offset from its cell center. Needed by file readers
  /// whose formats carry per-instance (not per-type) pin offsets.
  void set_pin_offset(PinId id, double offset_x, double offset_y) {
    pins_[id].offset_x = offset_x;
    pins_[id].offset_y = offset_y;
  }

 private:
  friend class NetlistBuilder;
  friend class NetlistSurgeon;

  std::shared_ptr<const Library> library_;
  std::vector<Cell> cells_;
  std::vector<Net> nets_;
  std::vector<Pin> pins_;
};

/// Deliberate-corruption escape hatch: mutable access to the topology
/// records that are otherwise append-only behind NetlistBuilder. Exists so
/// the check/ subsystem's tests can break referential integrity on purpose
/// (dangling pin ids, flipped directions, bad weights) and assert the
/// matching rule fires. Production code must never use this — src/check
/// exists to catch exactly the states it can create.
class NetlistSurgeon {
 public:
  explicit NetlistSurgeon(Netlist& netlist) : netlist_(&netlist) {}

  Cell& cell(CellId id) { return netlist_->cells_[id]; }
  Net& net(NetId id) { return netlist_->nets_[id]; }
  Pin& pin(PinId id) { return netlist_->pins_[id]; }

 private:
  Netlist* netlist_;
};

/// Incrementally constructs a Netlist. Used by the benchmark generator and
/// the Bookshelf reader.
class NetlistBuilder {
 public:
  explicit NetlistBuilder(const Library& library) : netlist_(library) {}
  explicit NetlistBuilder(std::shared_ptr<const Library> library)
      : netlist_(std::move(library)) {}

  CellId add_cell(std::string name, CellTypeId type, bool fixed = false);
  CellId add_cell(std::string name, CellFunc func, bool fixed = false);

  NetId add_net(std::string name, double weight = 1.0);

  /// Connect pin `port` (index into the cell type's pin list) of `cell`
  /// to `net`. Each cell port may be connected at most once.
  PinId connect(CellId cell, std::uint16_t port, NetId net);

  /// Connect by port name (slower; used by readers and tests).
  PinId connect(CellId cell, const std::string& port_name, NetId net);

  /// Connect with an explicit direction override. Used for PAD instances,
  /// whose single pin acts as a driver on input pads and a sink on output
  /// pads.
  PinId connect_dir(CellId cell, std::uint16_t port, NetId net, PinDir dir);

  const Netlist& peek() const { return netlist_; }
  std::size_t num_cells() const { return netlist_.num_cells(); }

  /// Finalize. The builder must not be used afterwards.
  Netlist take() { return std::move(netlist_); }

 private:
  Netlist netlist_;
};

}  // namespace dp::netlist
