#include "netlist/stats.hpp"

#include <algorithm>

namespace dp::netlist {

NetlistStats compute_stats(const Netlist& netlist,
                           const StructureAnnotation* truth) {
  NetlistStats s;
  s.num_cells = netlist.num_cells();
  s.num_movable = netlist.num_movable();
  s.num_fixed = s.num_cells - s.num_movable;
  s.num_nets = netlist.num_nets();
  s.num_pins = netlist.num_pins();
  s.movable_area = netlist.movable_area();
  for (const Net& n : netlist.nets()) {
    s.max_net_degree = std::max(s.max_net_degree, n.pins.size());
  }
  if (s.num_nets > 0) {
    s.avg_net_degree =
        static_cast<double>(s.num_pins) / static_cast<double>(s.num_nets);
  }
  if (truth != nullptr) {
    s.num_groups = truth->groups.size();
    const auto member = truth->membership(s.num_cells);
    for (CellId c = 0; c < s.num_cells; ++c) {
      if (member[c] && !netlist.cell(c).fixed) ++s.datapath_cells;
    }
    if (s.num_movable > 0) {
      s.datapath_fraction = static_cast<double>(s.datapath_cells) /
                            static_cast<double>(s.num_movable);
    }
  }
  return s;
}

}  // namespace dp::netlist
