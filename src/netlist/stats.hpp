#pragma once

#include <cstddef>

#include "netlist/netlist.hpp"
#include "netlist/structure.hpp"

namespace dp::netlist {

/// Aggregate netlist statistics (reconstructed Table 1 of the paper).
struct NetlistStats {
  std::size_t num_cells = 0;
  std::size_t num_movable = 0;
  std::size_t num_fixed = 0;
  std::size_t num_nets = 0;
  std::size_t num_pins = 0;
  double avg_net_degree = 0.0;
  std::size_t max_net_degree = 0;
  double movable_area = 0.0;
  /// Datapath annotation coverage.
  std::size_t num_groups = 0;
  std::size_t datapath_cells = 0;
  double datapath_fraction = 0.0;  ///< datapath cells / movable cells
};

NetlistStats compute_stats(const Netlist& netlist,
                           const StructureAnnotation* truth = nullptr);

}  // namespace dp::netlist
