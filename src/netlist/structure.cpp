#include "netlist/structure.hpp"

namespace dp::netlist {

std::size_t StructureGroup::num_cells() const {
  std::size_t n = 0;
  for (CellId c : cells) {
    if (c != kInvalidId) ++n;
  }
  return n;
}

std::vector<CellId> StructureGroup::slice(std::size_t bit) const {
  std::vector<CellId> out;
  out.reserve(stages);
  for (std::size_t s = 0; s < stages; ++s) {
    const CellId c = at(bit, s);
    if (c != kInvalidId) out.push_back(c);
  }
  return out;
}

std::vector<CellId> StructureGroup::stage(std::size_t s) const {
  std::vector<CellId> out;
  out.reserve(bits);
  for (std::size_t b = 0; b < bits; ++b) {
    const CellId c = at(b, s);
    if (c != kInvalidId) out.push_back(c);
  }
  return out;
}

std::vector<std::vector<CellId>> row_lanes(const StructureGroup& group,
                                           bool bits_along_y) {
  std::vector<std::vector<CellId>> lanes;
  const std::size_t n = bits_along_y ? group.bits : group.stages;
  lanes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    lanes.push_back(bits_along_y ? group.slice(i) : group.stage(i));
  }
  return lanes;
}

std::size_t StructureAnnotation::total_cells() const {
  std::size_t n = 0;
  for (const auto& g : groups) n += g.num_cells();
  return n;
}

bool StructureAnnotation::covers(CellId cell,
                                 std::size_t num_cells_in_netlist) const {
  return membership(num_cells_in_netlist)[cell];
}

std::vector<bool> StructureAnnotation::membership(
    std::size_t num_cells_in_netlist) const {
  std::vector<bool> in(num_cells_in_netlist, false);
  for (const auto& g : groups) {
    for (CellId c : g.cells) {
      if (c != kInvalidId) in[c] = true;
    }
  }
  return in;
}

}  // namespace dp::netlist
