#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace dp::netlist {

/// A datapath group: a logical `bits x stages` array of cells. Entry
/// (b, s) is the cell implementing bit `b` at pipeline/logic stage `s`,
/// or kInvalidId where the array has a hole (partial regularity).
///
/// The same type describes both the generator's ground truth and the
/// extractor's output, so extraction quality is a direct comparison.
struct StructureGroup {
  std::string name;
  std::size_t bits = 0;
  std::size_t stages = 0;
  /// Row-major: cell(b, s) == cells[b * stages + s].
  std::vector<CellId> cells;
  /// Extraction confidence in [0,1]; 1 for ground truth.
  double confidence = 1.0;
  /// Chain metadata set by feasibility partitioning: sub-groups cut from
  /// one parent share `parent` and are consecutive in `seq` (stage
  /// order). Placement keeps such siblings adjacent (snaked floorplan).
  std::string parent;
  std::size_t seq = 0;

  CellId at(std::size_t bit, std::size_t stage) const {
    return cells[bit * stages + stage];
  }
  CellId& at(std::size_t bit, std::size_t stage) {
    return cells[bit * stages + stage];
  }

  static StructureGroup make(std::string name, std::size_t bits,
                             std::size_t stages) {
    StructureGroup g;
    g.name = std::move(name);
    g.bits = bits;
    g.stages = stages;
    g.cells.assign(bits * stages, kInvalidId);
    return g;
  }

  /// Number of non-hole entries.
  std::size_t num_cells() const;

  /// All non-hole cells of one bit row.
  std::vector<CellId> slice(std::size_t bit) const;

  /// All non-hole cells of one stage column.
  std::vector<CellId> stage(std::size_t s) const;
};

/// The group's horizontal lanes for a given orientation: bit slices when
/// `bits_along_y`, stage columns otherwise. Shared by the structure-aware
/// legalizer and detailed placer.
std::vector<std::vector<CellId>> row_lanes(const StructureGroup& group,
                                           bool bits_along_y);

/// The set of datapath groups annotated on (or extracted from) a netlist.
struct StructureAnnotation {
  std::vector<StructureGroup> groups;

  std::size_t total_cells() const;

  /// True iff `cell` belongs to some group.
  bool covers(CellId cell, std::size_t num_cells_in_netlist) const;

  /// Membership bitmap over all cells of the netlist.
  std::vector<bool> membership(std::size_t num_cells_in_netlist) const;
};

}  // namespace dp::netlist
