#include "route/congestion.hpp"

#include <algorithm>
#include <cmath>

#include "geom/rect.hpp"
#include "util/thread_pool.hpp"

namespace dp::route {

using netlist::CellId;
using netlist::NetId;
using netlist::PinId;

namespace {

/// Chunk/block counts are fixed (independent of the thread count), so
/// every pass produces the same floating-point result for any pool size.
constexpr std::size_t kMaxParts = 64;
constexpr std::size_t kMinPinsPerChunk = 2048;

std::size_t pow2_at_least(double x) {
  std::size_t p = 1;
  while (static_cast<double>(p) < x) p <<= 1;
  return p;
}

}  // namespace

CongestionMap::CongestionMap(const netlist::Netlist& nl,
                             const netlist::Design& design,
                             CongestionOptions options)
    : nl_(&nl), design_(&design), options_(options) {
  const std::size_t n_mov = nl.num_movable();
  nb_ = options_.bins_per_side != 0
            ? options_.bins_per_side
            : std::clamp<std::size_t>(
                  pow2_at_least(std::sqrt(static_cast<double>(n_mov))), 16,
                  256);
  const geom::Rect& core = design.core();
  bw_ = core.width() / static_cast<double>(nb_);
  bh_ = core.height() / static_cast<double>(nb_);
  cap_h_ = bw_ * bh_ * options_.h_tracks_per_area;
  cap_v_ = bw_ * bh_ * options_.v_tracks_per_area;

  demand_h_.assign(nb_ * nb_, 0.0);
  demand_v_.assign(nb_ * nb_, 0.0);
  pins_.assign(nb_ * nb_, 0.0);

  // Flatten nets with >= 1 pin into contiguous arrays (single-pin nets
  // still contribute their pin surcharge).
  std::size_t kept_pins = 0, kept_nets = 0;
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    const std::size_t deg = nl.net(n).pins.size();
    if (deg < 1) continue;
    ++kept_nets;
    kept_pins += deg;
  }
  net_first_.reserve(kept_nets + 1);
  net_weight_.reserve(kept_nets);
  pin_cell_.reserve(kept_pins);
  pin_dx_.reserve(kept_pins);
  pin_dy_.reserve(kept_pins);
  net_first_.push_back(0);
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    const auto& pins = nl.net(n).pins;
    if (pins.empty()) continue;
    net_weight_.push_back(nl.net(n).weight);
    for (const PinId p : pins) {
      const auto& pin = nl.pin(p);
      pin_cell_.push_back(pin.cell);
      pin_dx_.push_back(pin.offset_x);
      pin_dy_.push_back(pin.offset_y);
    }
    net_first_.push_back(static_cast<std::uint32_t>(pin_cell_.size()));
  }

  // Fixed pin-balanced chunk boundaries for the bbox pass.
  const std::size_t chunks =
      std::clamp<std::size_t>(kept_pins / kMinPinsPerChunk, 1, kMaxParts);
  const std::size_t per_chunk = chunks > 0 ? (kept_pins + chunks - 1) / chunks
                                           : 0;
  chunk_first_.push_back(0);
  std::size_t acc = 0;
  for (std::size_t kn = 0; kn < kept_nets; ++kn) {
    acc += net_first_[kn + 1] - net_first_[kn];
    if (acc >= per_chunk && kn + 1 < kept_nets) {
      chunk_first_.push_back(static_cast<std::uint32_t>(kn + 1));
      acc = 0;
    }
  }
  chunk_first_.push_back(static_cast<std::uint32_t>(kept_nets));
}

std::size_t CongestionMap::bin_x(double x) const {
  const double rel = (x - design_->core().lx) / bw_;
  const auto b = static_cast<long long>(std::floor(rel));
  return static_cast<std::size_t>(
      std::clamp<long long>(b, 0, static_cast<long long>(nb_) - 1));
}

std::size_t CongestionMap::bin_y(double y) const {
  const double rel = (y - design_->core().ly) / bh_;
  const auto b = static_cast<long long>(std::floor(rel));
  return static_cast<std::size_t>(
      std::clamp<long long>(b, 0, static_cast<long long>(nb_) - 1));
}

void CongestionMap::build(const netlist::Placement& pl) {
  const geom::Rect& core = design_->core();
  const auto nbi = static_cast<long long>(nb_);
  const std::size_t kept_nets = net_weight_.size();
  boxes_.resize(kept_nets);
  pin_bin_.resize(pin_cell_.size());

  // Pass 0: per-net expanded bounding boxes and per-pin bin indices,
  // embarrassingly parallel over fixed net chunks.
  const std::size_t nchunks = chunk_first_.size() - 1;
  auto chunk_task = [&](std::size_t k) {
    for (std::uint32_t kn = chunk_first_[k]; kn < chunk_first_[k + 1]; ++kn) {
      const std::uint32_t p0 = net_first_[kn];
      const std::uint32_t p1 = net_first_[kn + 1];
      geom::Rect box;
      for (std::uint32_t p = p0; p < p1; ++p) {
        const geom::Point pos{pl[pin_cell_[p]].x + pin_dx_[p],
                              pl[pin_cell_[p]].y + pin_dy_[p]};
        box.expand(pos);
        pin_bin_[p] = static_cast<std::uint32_t>(bin_y(pos.y) * nb_ +
                                                 bin_x(pos.x));
      }
      NetBox nb;
      nb.wire_x = net_weight_[kn] * box.width();
      nb.wire_y = net_weight_[kn] * box.height();
      // Expand to at least one bin per axis (flat and point nets must
      // still land somewhere), then clip to the core.
      double lx = box.lx, hx = box.hx, ly = box.ly, hy = box.hy;
      if (hx - lx < bw_) {
        const double cx = (lx + hx) / 2.0;
        lx = cx - bw_ / 2.0;
        hx = cx + bw_ / 2.0;
      }
      if (hy - ly < bh_) {
        const double cy = (ly + hy) / 2.0;
        ly = cy - bh_ / 2.0;
        hy = cy + bh_ / 2.0;
      }
      nb.lx = std::max(lx, core.lx);
      nb.hx = std::min(hx, core.hx);
      nb.ly = std::max(ly, core.ly);
      nb.hy = std::min(hy, core.hy);
      if (nb.hx <= nb.lx || nb.hy <= nb.ly) {
        // Entirely outside the core (e.g. a pad-only net): no demand.
        nb.bx0 = 0;
        nb.bx1 = -1;
        nb.by0 = 0;
        nb.by1 = -1;
      } else {
        nb.bx0 = std::max<long long>(
            0, static_cast<long long>(std::floor((nb.lx - core.lx) / bw_)));
        nb.bx1 = std::min<long long>(
            nbi - 1,
            static_cast<long long>(std::floor((nb.hx - core.lx) / bw_)));
        nb.by0 = std::max<long long>(
            0, static_cast<long long>(std::floor((nb.ly - core.ly) / bh_)));
        nb.by1 = std::min<long long>(
            nbi - 1,
            static_cast<long long>(std::floor((nb.hy - core.ly) / bh_)));
      }
      boxes_[kn] = nb;
    }
  };
  if (pool_ != nullptr) {
    pool_->run(nchunks, chunk_task);
  } else {
    for (std::size_t k = 0; k < nchunks; ++k) chunk_task(k);
  }

  // Ownership lists: every bin row belongs to exactly one block, each
  // block accumulates its rows' contributions in ascending net/pin order
  // -- the same order as a serial sweep, so the grids are bitwise
  // identical for any thread count.
  const std::size_t num_blocks = std::min(nb_, kMaxParts);
  const std::size_t rows_per_block = (nb_ + num_blocks - 1) / num_blocks;
  block_nets_.resize(num_blocks);
  block_pins_.resize(num_blocks);
  for (auto& b : block_nets_) b.clear();
  for (auto& b : block_pins_) b.clear();
  for (std::size_t kn = 0; kn < kept_nets; ++kn) {
    if (boxes_[kn].by1 < boxes_[kn].by0) continue;
    const auto b0 = static_cast<std::size_t>(boxes_[kn].by0) / rows_per_block;
    const auto b1 = static_cast<std::size_t>(boxes_[kn].by1) / rows_per_block;
    for (std::size_t b = b0; b <= b1; ++b) {
      block_nets_[b].push_back(static_cast<std::uint32_t>(kn));
    }
  }
  for (std::size_t p = 0; p < pin_bin_.size(); ++p) {
    const std::size_t row = pin_bin_[p] / nb_;
    block_pins_[row / rows_per_block].push_back(
        static_cast<std::uint32_t>(p));
  }

  std::fill(demand_h_.begin(), demand_h_.end(), 0.0);
  std::fill(demand_v_.begin(), demand_v_.end(), 0.0);
  std::fill(pins_.begin(), pins_.end(), 0.0);

  // Pass 1: rasterize RUDY demand and pin surcharge per bin-row block.
  const double half_pin = options_.pin_weight / 2.0;
  auto block_task = [&](std::size_t b) {
    const auto r0 = static_cast<long long>(b * rows_per_block);
    const auto r1 = std::min<long long>(
        nbi, static_cast<long long>((b + 1) * rows_per_block));
    for (const std::uint32_t kn : block_nets_[b]) {
      const NetBox& box = boxes_[kn];
      const double inv_area =
          1.0 / ((box.hx - box.lx) * (box.hy - box.ly));
      const long long by_lo = std::max(box.by0, r0);
      const long long by_hi = std::min(box.by1, r1 - 1);
      for (long long by = by_lo; by <= by_hi; ++by) {
        const double b_ly = core.ly + static_cast<double>(by) * bh_;
        const double oy = std::min(box.hy, b_ly + bh_) - std::max(box.ly, b_ly);
        for (long long bx = box.bx0; bx <= box.bx1; ++bx) {
          const double b_lx = core.lx + static_cast<double>(bx) * bw_;
          const double ox =
              std::min(box.hx, b_lx + bw_) - std::max(box.lx, b_lx);
          const double frac = ox * oy * inv_area;
          const std::size_t i = static_cast<std::size_t>(by) * nb_ +
                                static_cast<std::size_t>(bx);
          demand_h_[i] += frac * box.wire_x;
          demand_v_[i] += frac * box.wire_y;
        }
      }
    }
    for (const std::uint32_t p : block_pins_[b]) {
      const std::size_t i = pin_bin_[p];
      pins_[i] += 1.0;
      demand_h_[i] += half_pin;
      demand_v_[i] += half_pin;
    }
  };
  if (pool_ != nullptr) {
    pool_->run(num_blocks, block_task);
  } else {
    for (std::size_t b = 0; b < num_blocks; ++b) block_task(b);
  }
}

double CongestionMap::ratio(std::size_t bx, std::size_t by) const {
  const std::size_t i = by * nb_ + bx;
  return std::max(demand_h_[i] / cap_h_, demand_v_[i] / cap_v_);
}

std::vector<double> CongestionMap::ratios() const {
  std::vector<double> out(nb_ * nb_, 0.0);
  for (std::size_t by = 0; by < nb_; ++by) {
    for (std::size_t bx = 0; bx < nb_; ++bx) {
      out[by * nb_ + bx] = ratio(bx, by);
    }
  }
  return out;
}

CongestionReport CongestionMap::report() const {
  CongestionReport rep;
  rep.bins = nb_;
  double total_demand = 0.0;
  std::vector<double> combined(nb_ * nb_, 0.0);
  for (std::size_t i = 0; i < nb_ * nb_; ++i) {
    const double rh = demand_h_[i] / cap_h_;
    const double rv = demand_v_[i] / cap_v_;
    rep.peak_h = std::max(rep.peak_h, rh);
    rep.peak_v = std::max(rep.peak_v, rv);
    combined[i] = std::max(rh, rv);
    total_demand += demand_h_[i] + demand_v_[i];
    const double over = std::max(0.0, demand_h_[i] - cap_h_) +
                        std::max(0.0, demand_v_[i] - cap_v_);
    rep.overflow_total += over;
    if (rh > 1.0 || rv > 1.0) ++rep.overflowed_bins;
  }
  rep.peak = std::max(rep.peak_h, rep.peak_v);
  rep.overflow_frac =
      total_demand > 0.0 ? rep.overflow_total / total_demand : 0.0;

  // ACE-style percentiles: mean combined ratio of the worst x% of bins.
  std::sort(combined.begin(), combined.end(), std::greater<double>());
  auto ace = [&](double frac) {
    const std::size_t n = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               frac * static_cast<double>(combined.size())));
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) acc += combined[i];
    return acc / static_cast<double>(n);
  };
  rep.ace_0_5 = ace(0.005);
  rep.ace_1 = ace(0.01);
  rep.ace_2 = ace(0.02);
  rep.ace_5 = ace(0.05);
  return rep;
}

}  // namespace dp::route
