#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "netlist/design.hpp"
#include "netlist/netlist.hpp"

namespace dp::util {
class ThreadPool;
}

namespace dp::route {

/// Grid / capacity model of the congestion estimator.
struct CongestionOptions {
  /// Bins per side of the estimation grid (0 = auto: the same
  /// sqrt(movable)-derived power of two the density model uses, clamped
  /// to [16, 256]).
  std::size_t bins_per_side = 0;
  /// Routing supply per unit core area, per direction: a bin of area A
  /// can carry `A * h_tracks_per_area` units of horizontal wire (and
  /// likewise vertically). The default is calibrated on the dpgen suite:
  /// the *average* RUDY demand density of a placed design is ~2 per
  /// direction, so 4.0 leaves ~2x headroom and only genuine hotspots
  /// (peak ratio 1.3-3x) read as overflowed.
  double h_tracks_per_area = 4.0;
  double v_tracks_per_area = 4.0;
  /// Local-congestion surcharge per pin, in wirelength units, split
  /// evenly between the horizontal and vertical demand of the pin's bin
  /// (models the via/escape cost RUDY's bbox term misses).
  double pin_weight = 0.5;
};

/// Aggregate congestion metrics of one rasterized placement.
struct CongestionReport {
  std::size_t bins = 0;            ///< grid side length used
  double peak = 0.0;               ///< max per-bin congestion ratio
  double peak_h = 0.0;             ///< max horizontal demand / capacity
  double peak_v = 0.0;             ///< max vertical demand / capacity
  /// Wire demand above capacity, summed over bins and directions.
  double overflow_total = 0.0;
  /// overflow_total / total demand (0 = everything fits).
  double overflow_frac = 0.0;
  std::size_t overflowed_bins = 0;  ///< bins with ratio > 1 in either dir
  /// ACE-style percentile metrics: mean congestion ratio of the worst
  /// 0.5% / 1% / 2% / 5% of bins (by combined ratio).
  double ace_0_5 = 0.0;
  double ace_1 = 0.0;
  double ace_2 = 0.0;
  double ace_5 = 0.0;

  bool overflowed() const { return overflowed_bins > 0; }
};

/// RUDY-style routing-congestion estimator on a uniform bin grid.
///
/// Each net spreads its expected wire uniformly over its bounding box
/// (RUDY: per-bin horizontal demand is `overlap_area * span_x / box_area`,
/// vertical likewise), boxes are expanded to at least one bin so flat and
/// point nets land somewhere, and every pin adds a fixed local surcharge
/// to its bin. Demand is compared against a per-direction capacity
/// proportional to bin area.
///
/// build() parallelizes on util::ThreadPool with the same discipline as
/// the GP gradient kernels: net chunks with fixed, thread-count-
/// independent boundaries for the bbox pass, bin-row blocks with a single
/// owner accumulating in ascending net order for the rasterization pass.
/// Results are bitwise identical for any pool size
/// (tests/test_route.cpp).
class CongestionMap {
 public:
  CongestionMap(const netlist::Netlist& nl, const netlist::Design& design,
                CongestionOptions options = {});

  /// Attach a worker pool for parallel build(); null (the default) runs
  /// the same passes serially with identical results.
  void set_thread_pool(std::shared_ptr<util::ThreadPool> pool) {
    pool_ = std::move(pool);
  }

  /// Rasterize net and pin demand at `pl`. Reusable: each call overwrites
  /// the grids.
  void build(const netlist::Placement& pl);

  /// Metrics of the most recent build().
  CongestionReport report() const;

  std::size_t bins_per_side() const { return nb_; }
  double bin_width() const { return bw_; }
  double bin_height() const { return bh_; }
  double h_capacity() const { return cap_h_; }
  double v_capacity() const { return cap_v_; }

  /// Per-bin wire demand of the last build (row-major, y * nb + x),
  /// pin surcharge included.
  std::span<const double> demand_h() const { return demand_h_; }
  std::span<const double> demand_v() const { return demand_v_; }
  /// Per-bin pin count of the last build.
  std::span<const double> pin_density() const { return pins_; }

  /// Combined congestion ratio of one bin:
  /// max(demand_h / cap_h, demand_v / cap_v).
  double ratio(std::size_t bx, std::size_t by) const;

  /// Combined ratio grid (row-major); the SVG heatmap layer input.
  std::vector<double> ratios() const;

  /// Bin containing a point (clamped to the grid).
  std::size_t bin_x(double x) const;
  std::size_t bin_y(double y) const;

 private:
  const netlist::Netlist* nl_;
  const netlist::Design* design_;
  CongestionOptions options_;
  std::size_t nb_ = 0;
  double bw_ = 0.0, bh_ = 0.0;
  double cap_h_ = 0.0, cap_v_ = 0.0;

  std::shared_ptr<util::ThreadPool> pool_;

  std::vector<double> demand_h_;  ///< row-major horizontal wire demand
  std::vector<double> demand_v_;  ///< row-major vertical wire demand
  std::vector<double> pins_;      ///< row-major pin count

  // Flattened nets (>= 1 pin), built once: CSR pin lists like the
  // wirelength kernel, plus fixed net-chunk boundaries balanced by pin
  // count (independent of the thread count).
  std::vector<std::uint32_t> net_first_;  ///< size kept_nets + 1
  std::vector<std::uint32_t> pin_cell_;
  std::vector<double> pin_dx_, pin_dy_;
  std::vector<double> net_weight_;
  std::vector<std::uint32_t> chunk_first_;  ///< net-chunk boundaries

  /// Per-evaluation scratch, persistent to keep allocation out of build().
  struct NetBox {
    double lx, ly, hx, hy;  ///< expanded bbox, clipped to the core
    double wire_x, wire_y;  ///< weighted span per direction
    long long bx0, bx1, by0, by1;
  };
  std::vector<NetBox> boxes_;
  std::vector<std::uint32_t> pin_bin_;  ///< bin index per flattened pin
  std::vector<std::vector<std::uint32_t>> block_nets_;
  std::vector<std::vector<std::uint32_t>> block_pins_;
};

}  // namespace dp::route
