#include "route/inflation.hpp"

#include <algorithm>

namespace dp::route {

using netlist::CellId;

std::size_t inflate_cells(const netlist::Netlist& nl,
                          const CongestionMap& map,
                          const netlist::Placement& pl,
                          const InflationOptions& opt,
                          const std::vector<double>& base,
                          const std::vector<bool>& eligible,
                          std::vector<double>& scale) {
  std::size_t grown = 0;
  for (CellId c = 0; c < nl.num_cells(); ++c) {
    if (nl.cell(c).fixed || !eligible[c]) continue;
    const double r = map.ratio(map.bin_x(pl[c].x), map.bin_y(pl[c].y));
    if (r <= opt.threshold) continue;
    const double factor = 1.0 + opt.rate * (r - opt.threshold);
    const double cap = base[c] * opt.max_scale;
    const double next = std::min(scale[c] * factor, cap);
    if (next > scale[c]) {
      scale[c] = next;
      ++grown;
    }
  }
  return grown;
}

}  // namespace dp::route
