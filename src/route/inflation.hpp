#pragma once

#include <cstddef>
#include <vector>

#include "route/congestion.hpp"

namespace dp::route {

/// Cell-inflation feedback: how overflowed bins translate into density
/// area scaling for the re-spreading pass.
struct InflationOptions {
  /// Bins with combined congestion ratio above this are overflowed.
  double threshold = 1.0;
  /// Area multiplier slope: a cell in a bin at ratio r gains
  /// `1 + rate * (r - threshold)` area (clamped below by 1).
  double rate = 0.25;
  /// Cumulative per-cell inflation cap across refinement iterations.
  double max_scale = 2.5;
};

/// Congestion-aware placement refinement knobs (PlacerConfig::congestion).
struct CongestionControl {
  /// Rasterize congestion and fill the PlaceReport congestion fields
  /// (after GP and on the final placement). Implied by `refine`.
  bool measure = false;
  /// Post-GP cell-inflation loop: inflate cells in overflowed bins,
  /// re-spread with the density machinery, repeat up to `max_iters`.
  bool refine = false;
  std::size_t max_iters = 3;
  /// Stop once the peak bin ratio is at or below this.
  double stop_peak = 1.0;
  /// Outer GP iterations of each re-spreading pass.
  std::size_t spread_outer = 8;
  /// One-sided density cap of the re-spreading pass (see
  /// gp::GpOptions::one_sided_max_density): only bins above this density
  /// are pushed apart, under-full regions keep their wirelength optimum.
  double spread_max_density = 0.9;
  /// Abort (and revert) a refinement iteration whose *legalized* HPWL
  /// (measured on a cheap Abacus-legalized proxy of the candidate, so
  /// legalization amplification is visible to the guard) exceeds the
  /// pre-refinement legalized HPWL by more than this fraction.
  double hpwl_guard = 0.01;

  CongestionOptions map;
  InflationOptions inflation;

  bool enabled() const { return measure || refine; }
};

/// Multiply `scale` (density area factor per CellId) by the inflation of
/// each movable cell's bin, clamping the cumulative factor to
/// `opt.max_scale` times `base`. `base` holds the pre-inflation scale
/// (the macro-shrink factors), so the cap is relative to the pipeline's
/// own scaling, not absolute. Cells with `eligible[c] == false` are
/// skipped (e.g. frozen datapath plate members). Returns the number of
/// cells whose scale grew. Deterministic: cells are visited in id order.
std::size_t inflate_cells(const netlist::Netlist& nl,
                          const CongestionMap& map,
                          const netlist::Placement& pl,
                          const InflationOptions& opt,
                          const std::vector<double>& base,
                          const std::vector<bool>& eligible,
                          std::vector<double>& scale);

}  // namespace dp::route
