#include "timing/timing_analyzer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/thread_pool.hpp"

namespace dp::timing {

using netlist::NetId;
using netlist::PinId;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Chunk counts are fixed (independent of the thread count) and every
/// task writes only its own slots, so all passes are bitwise
/// deterministic for any pool size.
constexpr std::size_t kMaxChunks = 64;
constexpr std::size_t kMinNodesPerChunk = 512;
constexpr std::size_t kMinNetsPerChunk = 2048;

template <typename Fn>
void run_chunked(util::ThreadPool* pool, std::size_t count,
                 std::size_t min_per_chunk, const Fn& body) {
  if (count == 0) return;
  const std::size_t chunks =
      std::clamp<std::size_t>(count / min_per_chunk, 1, kMaxChunks);
  const std::size_t per = (count + chunks - 1) / chunks;
  auto task = [&](std::size_t k) {
    const std::size_t lo = k * per;
    const std::size_t hi = std::min(count, lo + per);
    for (std::size_t i = lo; i < hi; ++i) body(i);
  };
  if (pool != nullptr && chunks > 1) {
    pool->run(chunks, task);
  } else {
    for (std::size_t k = 0; k < chunks; ++k) task(k);
  }
}

}  // namespace

TimingAnalyzer::TimingAnalyzer(const TimingGraph& graph, TimingOptions options)
    : graph_(&graph), options_(options) {
  const std::size_t num_pins = graph.num_nodes();
  const std::size_t num_nets = graph.netlist().num_nets();
  net_delay_.assign(num_nets, 0.0);
  arc_delay_.assign(graph.num_arcs(), 0.0);
  arrival_.assign(num_pins, 0.0);
  required_.assign(num_pins, 0.0);
  slack_.assign(num_pins, 0.0);
  net_slack_.assign(num_nets, kInf);
  net_crit_.assign(num_nets, 0.0);
}

const TimingReport& TimingAnalyzer::analyze(const netlist::Placement& pl) {
  const TimingGraph& g = *graph_;
  const netlist::Netlist& nl = g.netlist();
  const std::size_t num_pins = g.num_nodes();
  const std::size_t num_nets = nl.num_nets();
  util::ThreadPool* pool = pool_.get();

  // Pass 0: per-net wire delay, linear in the net's HPWL at `pl`.
  run_chunked(pool, num_nets, kMinNetsPerChunk, [&](std::size_t n) {
    const auto& pins = nl.net(static_cast<NetId>(n)).pins;
    if (pins.size() < 2) {
      net_delay_[n] = 0.0;
      return;
    }
    double lx = kInf, ly = kInf, hx = -kInf, hy = -kInf;
    for (const PinId p : pins) {
      const geom::Point pos = nl.pin_position(p, pl);
      lx = std::min(lx, pos.x);
      hx = std::max(hx, pos.x);
      ly = std::min(ly, pos.y);
      hy = std::max(hy, pos.y);
    }
    net_delay_[n] = options_.wire_delay_per_unit * ((hx - lx) + (hy - ly));
  });
  run_chunked(pool, g.num_arcs(), kMinNetsPerChunk, [&](std::size_t a) {
    arc_delay_[a] = g.arc_kind()[a] == ArcKind::kCell
                        ? options_.gate_delay
                        : net_delay_[g.arc_net()[a]];
  });

  // Pass 1: arrival, forward per level. Arcs strictly cross levels, so
  // nodes of one level only read already-final lower-level arrivals.
  std::fill(arrival_.begin(), arrival_.end(), 0.0);
  const std::span<const PinId> order = g.order();
  const std::size_t levels = g.num_levels();
  for (std::size_t l = 1; l < levels; ++l) {
    const std::size_t first = g.level_first(l);
    const std::size_t last = g.level_first(l + 1);
    run_chunked(pool, last - first, kMinNodesPerChunk, [&](std::size_t i) {
      const PinId p = order[first + i];
      double at = 0.0;
      for (std::size_t a = g.fanin_first(p); a < g.fanin_first(p + 1); ++a) {
        at = std::max(at, arrival_[g.arc_src()[a]] + arc_delay_[a]);
      }
      arrival_[p] = at;
    });
  }

  // Resolve the clock period: an explicit constraint, or the worst
  // endpoint arrival (zero worst slack) when auto.
  double max_arrival = 0.0;
  for (const PinId e : g.endpoints()) {
    max_arrival = std::max(max_arrival, arrival_[e]);
  }
  if (g.endpoints().empty()) {
    for (const PinId p : order) max_arrival = std::max(max_arrival, arrival_[p]);
  }
  const double period =
      options_.clock_period > 0.0 ? options_.clock_period : max_arrival;

  // Pass 2: required, backward per level. Endpoints are seeded with the
  // period; pins driving no endpoint keep +inf (unconstrained).
  std::fill(required_.begin(), required_.end(), kInf);
  for (const PinId e : g.endpoints()) {
    required_[e] = std::min(required_[e], period);
  }
  for (std::size_t l = levels; l-- > 0;) {
    const std::size_t first = g.level_first(l);
    const std::size_t last = g.level_first(l + 1);
    run_chunked(pool, last - first, kMinNodesPerChunk, [&](std::size_t i) {
      const PinId p = order[first + i];
      double rq = required_[p];
      for (std::size_t a = g.fanout_first(p); a < g.fanout_first(p + 1);
           ++a) {
        rq = std::min(rq, required_[g.fanout_dst()[a]] -
                              arc_delay_[g.fanout_arc()[a]]);
      }
      required_[p] = rq;
    });
  }

  // Slack; loop pins are excluded from propagation and pinned to zero.
  for (std::size_t p = 0; p < num_pins; ++p) {
    slack_[p] = required_[p] - arrival_[p];
  }
  for (const PinId p : g.loop_pins()) {
    arrival_[p] = 0.0;
    required_[p] = 0.0;
    slack_[p] = 0.0;
  }

  // Endpoint summary, serial in ascending pin order.
  report_ = TimingReport{};
  report_.clock_period = period;
  report_.max_arrival = max_arrival;
  report_.endpoints = g.endpoints().size();
  report_.levels = levels;
  report_.loop_pins = g.loop_pins().size();
  double wns = kInf;
  PinId worst = netlist::kInvalidId;
  for (const PinId e : g.endpoints()) {
    const double s = slack_[e];
    if (s < wns) {
      wns = s;
      worst = e;
    }
    if (s < 0.0) {
      report_.tns += s;
      ++report_.violations;
    }
  }
  report_.wns = g.endpoints().empty() ? 0.0 : wns;

  // Critical path: walk the worst endpoint back along the fanin arc
  // maximizing arrival + delay (first arc in CSR order wins ties).
  if (worst != netlist::kInvalidId) {
    std::vector<PathNode> path;
    PinId cur = worst;
    for (;;) {
      path.push_back({cur, arrival_[cur]});
      const std::size_t a0 = g.fanin_first(cur);
      const std::size_t a1 = g.fanin_first(cur + 1);
      if (a0 == a1) break;
      std::size_t best = a0;
      double best_at = arrival_[g.arc_src()[a0]] + arc_delay_[a0];
      for (std::size_t a = a0 + 1; a < a1; ++a) {
        const double at = arrival_[g.arc_src()[a]] + arc_delay_[a];
        if (at > best_at) {
          best_at = at;
          best = a;
        }
      }
      cur = g.arc_src()[best];
    }
    std::reverse(path.begin(), path.end());
    report_.critical_path = std::move(path);
  }

  // Per-net slack: the tightest margin of any net arc, swept in fanin
  // CSR order; criticality normalizes it into [0, 1] across nets.
  std::fill(net_slack_.begin(), net_slack_.end(), kInf);
  for (PinId dst = 0; dst < num_pins; ++dst) {
    for (std::size_t a = g.fanin_first(dst); a < g.fanin_first(dst + 1);
         ++a) {
      if (g.arc_kind()[a] != ArcKind::kNet) continue;
      const double margin =
          required_[dst] - arrival_[g.arc_src()[a]] - arc_delay_[a];
      const NetId n = g.arc_net()[a];
      net_slack_[n] = std::min(net_slack_[n], margin);
    }
  }
  double smin = kInf, smax = -kInf;
  for (std::size_t n = 0; n < num_nets; ++n) {
    if (!std::isfinite(net_slack_[n])) continue;
    smin = std::min(smin, net_slack_[n]);
    smax = std::max(smax, net_slack_[n]);
  }
  const double spread = smax - smin;
  for (std::size_t n = 0; n < num_nets; ++n) {
    if (!std::isfinite(net_slack_[n]) || !(spread > 1e-12)) {
      net_crit_[n] = 0.0;
    } else {
      net_crit_[n] =
          std::clamp((smax - net_slack_[n]) / spread, 0.0, 1.0);
    }
  }

  return report_;
}

void TimingAnalyzer::net_weight_scale(double strength, double crit_floor,
                                      std::vector<double>& out) const {
  out.assign(net_crit_.size(), 1.0);
  if (out.empty()) return;
  const double floor = std::clamp(crit_floor, 0.0, 1.0 - 1e-9);
  double sum = 0.0;
  for (std::size_t n = 0; n < net_crit_.size(); ++n) {
    const double c =
        std::max(0.0, (net_crit_[n] - floor) / (1.0 - floor));
    out[n] = 1.0 + strength * c * c;
    sum += out[n];
  }
  // Normalize to unit mean: reweighting shifts emphasis toward critical
  // nets without inflating the total wirelength gradient, which would
  // upset the wl/density balance struck by the GP lambda schedule.
  const double inv_mean = static_cast<double>(out.size()) / sum;
  for (double& s : out) s *= inv_mean;
}

}  // namespace dp::timing
