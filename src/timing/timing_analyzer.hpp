#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "timing/timing_graph.hpp"

namespace dp::util {
class ThreadPool;
}

namespace dp::timing {

/// Delay model of the analyzer: a unit gate delay per cell arc and a
/// linear wire delay per net arc, proportional to the net's HPWL at the
/// analyzed placement (so timing responds to cell movement).
struct TimingOptions {
  double gate_delay = 1.0;
  double wire_delay_per_unit = 0.5;
  /// Target clock period. <= 0 selects it automatically as the worst
  /// endpoint arrival of the analyzed placement (zero worst slack), which
  /// makes WNS/TNS useful as relative metrics without a real constraint.
  double clock_period = 0.0;
};

/// One node of the critical-path trace.
struct PathNode {
  netlist::PinId pin = netlist::kInvalidId;
  double arrival = 0.0;
};

/// Scalar results of one analysis pass.
struct TimingReport {
  double wns = 0.0;          ///< worst (minimum) endpoint slack
  double tns = 0.0;          ///< sum of negative endpoint slacks
  double clock_period = 0.0; ///< period used (resolved when auto)
  double max_arrival = 0.0;  ///< worst endpoint arrival (critical delay)
  std::size_t endpoints = 0;
  std::size_t violations = 0;  ///< endpoints with negative slack
  std::size_t levels = 0;
  std::size_t loop_pins = 0;  ///< pins excluded by combinational loops
  /// Worst endpoint's path, startpoint first. Empty until analyze().
  std::vector<PathNode> critical_path;
};

/// Placement-feedback knobs, carried by PlacerConfig.
struct TimingControl {
  /// Analyze and report timing (post-GP and final) without steering.
  bool measure = false;
  /// Timing-driven mode: criticality-based net reweighting each GP outer
  /// iteration plus the detailed-placement WNS-proxy move guard.
  bool driven = false;
  /// Strength of the criticality reweight: a net at criticality 1 gets
  /// scale ~ 1 + weight (before unit-mean normalization).
  double weight = 4.0;
  /// Criticality floor: GP reweighting only boosts nets above it, and
  /// the detail guard only considers nets at least this critical.
  double crit_floor = 0.5;
  /// Detail guard allows moves worsening the WNS proxy by up to this
  /// much (delay units).
  double guard_tolerance = 0.0;
  TimingOptions model;

  bool enabled() const { return measure || driven; }
};

/// Static timing analyzer over a TimingGraph.
///
/// analyze() runs four sweeps: per-net wire delays from HPWL, forward
/// arrival (max over fanin), backward required (min over fanout, seeded
/// with the clock period at endpoints), and slack. The level sweeps
/// parallelize on util::ThreadPool with fixed thread-count-independent
/// chunk boundaries; every task writes only its own node slots and all
/// reductions run serially in fixed order, so the report and every
/// per-node array are bitwise identical for any pool size (same contract
/// as the GP and route kernels; tests/test_timing.cpp).
///
/// Pins on combinational loops are excluded from propagation and carry
/// arrival = required = slack = 0.
class TimingAnalyzer {
 public:
  TimingAnalyzer(const TimingGraph& graph, TimingOptions options = {});

  /// Attach a worker pool; null (the default) runs serially with
  /// identical results.
  void set_thread_pool(std::shared_ptr<util::ThreadPool> pool) {
    pool_ = std::move(pool);
  }

  const TimingGraph& graph() const { return *graph_; }
  const TimingOptions& options() const { return options_; }

  /// Propagate delays at `pl`. Reusable: each call overwrites all state.
  const TimingReport& analyze(const netlist::Placement& pl);

  const TimingReport& report() const { return report_; }

  /// Per-pin results of the last analyze(), indexed by PinId.
  std::span<const double> arrival() const { return arrival_; }
  std::span<const double> required() const { return required_; }
  std::span<const double> slack() const { return slack_; }

  /// Per-net criticality in [0, 1] (1 = on the worst path), indexed by
  /// NetId; 0 for nets without timing arcs.
  std::span<const double> net_criticality() const { return net_crit_; }

  /// Per-net wire delay of the last analyze(), indexed by NetId.
  std::span<const double> net_delay() const { return net_delay_; }

  /// Fill `out[n] ~ 1 + strength * c^2` where c rescales criticality
  /// above `crit_floor` into [0, 1] (nets below the floor keep scale 1),
  /// then normalize to unit mean across nets: the multiplicative weight
  /// scale fed to SmoothWirelength in timing-driven GP. The floor
  /// concentrates the boost on the critical tail, and unit mean keeps the
  /// total wirelength gradient magnitude (and thus the wl/density balance
  /// of the GP lambda schedule) roughly unchanged.
  void net_weight_scale(double strength, double crit_floor,
                        std::vector<double>& out) const;

 private:
  const TimingGraph* graph_;
  TimingOptions options_;
  std::shared_ptr<util::ThreadPool> pool_;

  TimingReport report_;
  std::vector<double> net_delay_;   ///< per NetId
  std::vector<double> arc_delay_;   ///< per fanin arc slot
  std::vector<double> arrival_;     ///< per PinId
  std::vector<double> required_;    ///< per PinId
  std::vector<double> slack_;       ///< per PinId
  std::vector<double> net_slack_;   ///< per NetId (min arc margin)
  std::vector<double> net_crit_;    ///< per NetId
};

}  // namespace dp::timing
