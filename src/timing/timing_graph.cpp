#include "timing/timing_graph.hpp"

#include <algorithm>

namespace dp::timing {

using netlist::CellFunc;
using netlist::CellId;
using netlist::NetId;
using netlist::PinDir;
using netlist::PinId;

TimingGraph::TimingGraph(const netlist::Netlist& nl) : nl_(&nl) {
  const std::size_t num_pins = nl.num_pins();

  // Collect arcs. Cell arcs: every connected input pin drives every
  // connected output pin of the same cell, except across sequential and
  // pad boundaries. Net arcs: driver to each input-direction sink.
  std::vector<Arc> arcs;
  for (CellId c = 0; c < nl.num_cells(); ++c) {
    const CellFunc func = nl.cell_type(c).func;
    if (func == CellFunc::kDff || func == CellFunc::kPad) continue;
    const auto& pins = nl.cell(c).pins;
    for (const PinId in : pins) {
      if (nl.pin(in).dir != PinDir::kInput) continue;
      for (const PinId out : pins) {
        if (nl.pin(out).dir != PinDir::kOutput) continue;
        arcs.push_back({in, out, ArcKind::kCell, netlist::kInvalidId});
      }
    }
  }
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    const PinId drv = nl.driver(n);
    if (drv == netlist::kInvalidId) continue;
    for (const PinId sink : nl.net(n).pins) {
      if (nl.pin(sink).dir != PinDir::kInput) continue;
      arcs.push_back({drv, sink, ArcKind::kNet, n});
    }
  }

  // Fanin CSR (arcs sorted by destination, stable within a destination:
  // cell arcs in cell/pin order precede or follow net arcs in net order
  // exactly as collected above -- the critical-path tiebreak depends on
  // this order being deterministic, which counting sort preserves).
  fanin_first_.assign(num_pins + 1, 0);
  for (const Arc& a : arcs) ++fanin_first_[a.dst + 1];
  for (std::size_t p = 0; p < num_pins; ++p) {
    fanin_first_[p + 1] += fanin_first_[p];
  }
  arc_src_.resize(arcs.size());
  arc_kind_.resize(arcs.size());
  arc_net_.resize(arcs.size());
  {
    std::vector<std::uint32_t> fill(fanin_first_.begin(),
                                    fanin_first_.end() - 1);
    for (const Arc& a : arcs) {
      const std::uint32_t slot = fill[a.dst]++;
      arc_src_[slot] = a.src;
      arc_kind_[slot] = a.kind;
      arc_net_[slot] = a.net;
    }
  }

  // Fanout CSR, built from the fanin CSR so every entry can point back
  // at its fanin arc slot (destinations end up ascending per source).
  fanout_first_.assign(num_pins + 1, 0);
  for (const Arc& a : arcs) ++fanout_first_[a.src + 1];
  for (std::size_t p = 0; p < num_pins; ++p) {
    fanout_first_[p + 1] += fanout_first_[p];
  }
  fanout_dst_.resize(arcs.size());
  fanout_arc_.resize(arcs.size());
  {
    std::vector<std::uint32_t> fill(fanout_first_.begin(),
                                    fanout_first_.end() - 1);
    for (PinId dst = 0; dst < num_pins; ++dst) {
      for (std::uint32_t a = fanin_first_[dst]; a < fanin_first_[dst + 1];
           ++a) {
        const std::uint32_t slot = fill[arc_src_[a]]++;
        fanout_dst_[slot] = dst;
        fanout_arc_[slot] = a;
      }
    }
  }

  // Longest-path Kahn levelization: a pin is released once all fanin is
  // levelized, at level max(level(src)) + 1. Every arc then strictly
  // crosses levels, which is what makes per-level parallel propagation
  // race-free. Pins never released sit on or downstream of a cycle.
  level_.assign(num_pins, 0);
  std::vector<std::uint32_t> pending(num_pins);
  std::vector<PinId> frontier;
  for (PinId p = 0; p < num_pins; ++p) {
    pending[p] = fanin_first_[p + 1] - fanin_first_[p];
    if (pending[p] == 0) frontier.push_back(p);
  }
  order_.reserve(num_pins);
  level_first_.push_back(0);
  while (!frontier.empty()) {
    // frontier holds exactly the pins of the next level, ascending by id
    // (sources release destinations in id order and we re-sort below to
    // keep the invariant under mixed release order).
    std::sort(frontier.begin(), frontier.end());
    order_.insert(order_.end(), frontier.begin(), frontier.end());
    level_first_.push_back(static_cast<std::uint32_t>(order_.size()));
    std::vector<PinId> next;
    for (const PinId p : frontier) {
      for (std::size_t a = fanout_first_[p]; a < fanout_first_[p + 1]; ++a) {
        const PinId dst = fanout_dst_[a];
        level_[dst] = std::max(level_[dst], level_[p] + 1);
        if (--pending[dst] == 0) next.push_back(dst);
      }
    }
    frontier = std::move(next);
  }
  for (PinId p = 0; p < num_pins; ++p) {
    if (pending[p] > 0) {
      loop_pins_.push_back(p);
      level_[p] = 0;
    }
  }

  // Endpoints: input-direction pins of sequential and pad cells (DFF D
  // pins and primary-output pads), ascending by pin id.
  for (PinId p = 0; p < num_pins; ++p) {
    if (nl.pin(p).dir != PinDir::kInput) continue;
    const CellFunc func = nl.cell_type(nl.pin(p).cell).func;
    if (func == CellFunc::kDff || func == CellFunc::kPad) {
      endpoints_.push_back(p);
    }
  }
}

}  // namespace dp::timing
