#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace dp::timing {

/// Kind of a timing arc.
enum class ArcKind : std::uint8_t {
  kCell,  ///< input pin -> output pin of the same cell
  kNet,   ///< net driver pin -> sink pin
};

/// One directed timing arc between two pin-level nodes.
struct Arc {
  netlist::PinId src = netlist::kInvalidId;
  netlist::PinId dst = netlist::kInvalidId;
  ArcKind kind = ArcKind::kCell;
  /// Net carrying a kNet arc (kInvalidId for cell arcs).
  netlist::NetId net = netlist::kInvalidId;
};

/// Pin-level timing graph of a Netlist.
///
/// Nodes are pins. Cell arcs connect every input-direction pin of a cell
/// to every output-direction pin of the same cell (so a FullAdder fans
/// out to both S and CO), except for kDff and kPad cells, which are path
/// boundaries: a DFF D pin is a path endpoint and its Q pin a fresh
/// startpoint; pads have a single pin. Net arcs connect each net's driver
/// (its first output-direction pin) to every input-direction sink.
///
/// Construction levelizes the graph with a longest-path Kahn sweep:
/// level(dst) = max over fanin of level(src) + 1, so every arc strictly
/// crosses levels and per-level propagation is race-free. Pins that are
/// never released (members of a combinational cycle, plus everything
/// downstream of one) are excluded from the topological order and
/// reported through loop_pins().
class TimingGraph {
 public:
  explicit TimingGraph(const netlist::Netlist& nl);

  const netlist::Netlist& netlist() const { return *nl_; }

  std::size_t num_nodes() const { return level_.size(); }
  std::size_t num_arcs() const { return arc_src_.size(); }
  std::size_t num_levels() const {
    return level_first_.empty() ? 0 : level_first_.size() - 1;
  }

  /// Pins in topological order, grouped by ascending level and by
  /// ascending pin id within a level; excludes loop pins.
  std::span<const netlist::PinId> order() const { return order_; }
  /// Index range [level_first(l), level_first(l + 1)) of level l in
  /// order().
  std::size_t level_first(std::size_t l) const { return level_first_[l]; }
  /// Level of a pin (0 for loop pins; check loop_pins() to distinguish).
  std::size_t level(netlist::PinId p) const { return level_[p]; }

  /// Pins on or downstream of a combinational cycle, ascending by id.
  std::span<const netlist::PinId> loop_pins() const { return loop_pins_; }
  bool has_loops() const { return !loop_pins_.empty(); }

  /// Path endpoints: input-direction pins of kDff and kPad cells,
  /// ascending by pin id (DFF D pins and primary-output pads).
  std::span<const netlist::PinId> endpoints() const { return endpoints_; }

  /// Fanin arcs of a pin: indices [fanin_first(p), fanin_first(p + 1))
  /// into arc_src()/arc_kind()/arc_net().
  std::size_t fanin_first(netlist::PinId p) const { return fanin_first_[p]; }
  std::span<const netlist::PinId> arc_src() const { return arc_src_; }
  std::span<const ArcKind> arc_kind() const { return arc_kind_; }
  std::span<const netlist::NetId> arc_net() const { return arc_net_; }

  /// Fanout adjacency: arc destinations grouped by source pin, ascending
  /// by destination. fanout_arc()[i] is the index of the same arc in the
  /// fanin arrays (arc_src()/arc_kind()/arc_net()), so per-arc delays
  /// computed in fanin order can be reused by backward sweeps.
  std::size_t fanout_first(netlist::PinId p) const {
    return fanout_first_[p];
  }
  std::span<const netlist::PinId> fanout_dst() const { return fanout_dst_; }
  std::span<const std::uint32_t> fanout_arc() const { return fanout_arc_; }

 private:
  const netlist::Netlist* nl_;

  // Fanin CSR: arcs sorted by destination pin.
  std::vector<std::uint32_t> fanin_first_;  ///< size num_pins + 1
  std::vector<netlist::PinId> arc_src_;
  std::vector<ArcKind> arc_kind_;
  std::vector<netlist::NetId> arc_net_;

  // Fanout CSR: destinations grouped by source pin.
  std::vector<std::uint32_t> fanout_first_;  ///< size num_pins + 1
  std::vector<netlist::PinId> fanout_dst_;
  std::vector<std::uint32_t> fanout_arc_;  ///< fanin arc index per entry

  std::vector<std::uint32_t> level_;  ///< longest-path level per pin
  std::vector<netlist::PinId> order_;
  std::vector<std::uint32_t> level_first_;  ///< size num_levels + 1
  std::vector<netlist::PinId> loop_pins_;
  std::vector<netlist::PinId> endpoints_;
};

}  // namespace dp::timing
