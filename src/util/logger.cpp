#include "util/logger.hpp"

#include <cstdio>

namespace dp::util {

namespace {
LogLevel g_level = LogLevel::kInfo;
}  // namespace

LogLevel Logger::level() { return g_level; }

void Logger::set_level(LogLevel level) { g_level = level; }

void Logger::vlog(LogLevel level, const char* tag, const char* fmt,
                  std::va_list args) {
  if (level < g_level) return;
  std::fprintf(stderr, "[%s] ", tag);
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
}

void Logger::debug(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  vlog(LogLevel::kDebug, "debug", fmt, args);
  va_end(args);
}

void Logger::info(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  vlog(LogLevel::kInfo, "info ", fmt, args);
  va_end(args);
}

void Logger::warn(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  vlog(LogLevel::kWarn, "warn ", fmt, args);
  va_end(args);
}

void Logger::error(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  vlog(LogLevel::kError, "error", fmt, args);
  va_end(args);
}

}  // namespace dp::util
