#pragma once

#include <cstdarg>
#include <string>

namespace dp::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kSilent = 4 };

/// Minimal global logger. The placer and extractor report progress through
/// this; tests and benchmarks raise the threshold to keep output clean.
class Logger {
 public:
  static LogLevel level();
  static void set_level(LogLevel level);

  static void debug(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
  static void info(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
  static void warn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
  static void error(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

 private:
  static void vlog(LogLevel level, const char* tag, const char* fmt,
                   std::va_list args);
};

/// RAII guard that silences (or changes) the log level within a scope.
class ScopedLogLevel {
 public:
  explicit ScopedLogLevel(LogLevel level) : saved_(Logger::level()) {
    Logger::set_level(level);
  }
  ~ScopedLogLevel() { Logger::set_level(saved_); }
  ScopedLogLevel(const ScopedLogLevel&) = delete;
  ScopedLogLevel& operator=(const ScopedLogLevel&) = delete;

 private:
  LogLevel saved_;
};

}  // namespace dp::util
