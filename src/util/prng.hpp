#pragma once

#include <cstdint>
#include <limits>

namespace dp::util {

/// Deterministic, fast pseudo-random generator (xoshiro256**).
///
/// All randomized algorithms in the library take a seed (or an Rng&) so
/// that every experiment in the repository is exactly reproducible.
/// Satisfies the essentials of UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  /// Reset the state from a single 64-bit seed (SplitMix64 expansion).
  void reseed(std::uint64_t seed) {
    for (auto& word : state_) {
      seed += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded generation.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer index in [0, n) as std::size_t.
  std::size_t index(std::size_t n) {
    return static_cast<std::size_t>(below(static_cast<std::uint64_t>(n)));
  }

  /// Approximately standard-normal variate (sum of uniforms is adequate
  /// for the placement perturbations used here; no tail precision needed).
  double gauss() {
    double s = 0.0;
    for (int i = 0; i < 12; ++i) s += uniform();
    return s - 6.0;
  }

  /// True with probability p.
  bool chance(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

/// Fisher-Yates shuffle using our deterministic Rng.
template <typename Container>
void shuffle(Container& c, Rng& rng) {
  const std::size_t n = c.size();
  if (n < 2) return;
  for (std::size_t i = n - 1; i > 0; --i) {
    const std::size_t j = rng.index(i + 1);
    using std::swap;
    swap(c[i], c[j]);
  }
}

}  // namespace dp::util
