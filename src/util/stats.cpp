#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace dp::util {

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.mean = mean(xs);
  s.stdev = std::sqrt(variance(xs));
  auto [lo, hi] = std::minmax_element(xs.begin(), xs.end());
  s.min = *lo;
  s.max = *hi;
  return s;
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += std::log(x);
  return std::exp(acc / static_cast<double>(xs.size()));
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double rank =
      std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace dp::util
