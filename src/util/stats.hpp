#pragma once

#include <span>
#include <vector>

namespace dp::util {

/// Summary statistics over a sample; used by the benchmark harnesses and by
/// the extractor's regularity scoring.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stdev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

Summary summarize(std::span<const double> xs);

/// Arithmetic mean; 0 for an empty sample.
double mean(std::span<const double> xs);

/// Population variance; 0 for samples of size < 2.
double variance(std::span<const double> xs);

/// Geometric mean; requires strictly positive values, 0 for empty input.
double geomean(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100].
double percentile(std::vector<double> xs, double p);

}  // namespace dp::util
