#include "util/table.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <sstream>

namespace dp::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::integer(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  return buf;
}

std::string Table::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  return s.find_first_not_of("0123456789.+-eE%x") == std::string::npos;
}

}  // namespace

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells, bool header) {
    out << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const auto pad = widths[c] - cells[c].size();
      const bool right = !header && looks_numeric(cells[c]);
      out << ' ';
      if (right) out << std::string(pad, ' ');
      out << cells[c];
      if (!right) out << std::string(pad, ' ');
      out << " |";
    }
    out << '\n';
  };

  emit_row(headers_, /*header=*/true);
  out << '|';
  for (std::size_t w : widths) out << std::string(w + 2, '-') << '|';
  out << '\n';
  for (const auto& row : rows_) emit_row(row, /*header=*/false);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) out << ',';
      out << cells[c];
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

}  // namespace dp::util
