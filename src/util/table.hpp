#pragma once

#include <string>
#include <vector>

namespace dp::util {

/// ASCII table formatter used by every benchmark harness to print the
/// reconstructed paper tables/figure series in a uniform, diffable layout.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience cell formatters.
  static std::string num(double v, int precision = 2);
  static std::string integer(long long v);
  static std::string pct(double fraction, int precision = 1);

  /// Render with column alignment (numbers right-aligned heuristically).
  std::string to_string() const;

  /// Render as comma-separated values (header + rows).
  std::string to_csv() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dp::util
