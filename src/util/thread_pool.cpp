#include "util/thread_pool.hpp"

#include <algorithm>

namespace dp::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  std::size_t n = num_threads;
  if (n == 0) {
    n = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(n - 1);
  for (std::size_t i = 1; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::run(std::size_t num_tasks,
                     const std::function<void(std::size_t)>& task) {
  if (num_tasks == 0) return;
  if (workers_.empty() || num_tasks == 1) {
    for (std::size_t i = 0; i < num_tasks; ++i) task(i);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    task_ = &task;
    num_tasks_ = num_tasks;
    next_.store(0, std::memory_order_relaxed);
    active_ = workers_.size();
    ++generation_;
  }
  start_cv_.notify_all();
  // The calling thread claims tasks alongside the workers.
  std::size_t i;
  while ((i = next_.fetch_add(1, std::memory_order_relaxed)) < num_tasks) {
    task(i);
  }
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return active_ == 0; });
  task_ = nullptr;
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* task = nullptr;
    std::size_t num = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock,
                     [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      task = task_;
      num = num_tasks_;
    }
    std::size_t i;
    while ((i = next_.fetch_add(1, std::memory_order_relaxed)) < num) {
      (*task)(i);
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (--active_ == 0) done_cv_.notify_one();
    }
  }
}

}  // namespace dp::util
