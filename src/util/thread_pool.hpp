#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dp::util {

/// Fixed-size worker pool for fork-join parallelism over index ranges.
///
/// run(n, f) executes f(0), ..., f(n-1) across the pool's workers plus the
/// calling thread and returns once every task has finished. Tasks are
/// claimed from a shared atomic counter, so WHICH thread runs a given task
/// is nondeterministic; callers that need reproducible floating-point
/// results must give every task its own output slot and reduce the slots
/// in fixed order afterwards (see SmoothWirelength / DensityPenalty).
///
/// A pool of size 1 spawns no threads and runs everything inline, so the
/// serial path is byte-for-byte the parallel path with one worker.
class ThreadPool {
 public:
  /// `num_threads` is the total worker count including the calling
  /// thread; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker count including the calling thread (>= 1).
  std::size_t size() const { return workers_.size() + 1; }

  /// Run task(i) for every i in [0, num_tasks); blocks until all have
  /// completed. Tasks must not throw and must not call run() on the same
  /// pool reentrantly. Only one run() may be in flight at a time.
  void run(std::size_t num_tasks,
           const std::function<void(std::size_t)>& task);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* task_ = nullptr;
  std::size_t num_tasks_ = 0;
  std::atomic<std::size_t> next_{0};
  std::size_t active_ = 0;  ///< workers still inside the current batch
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

}  // namespace dp::util
