#pragma once

#include <chrono>

namespace dp::util {

/// Wall-clock stopwatch used by the benchmark harnesses and the placer's
/// per-stage runtime reporting.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last restart().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dp::util
