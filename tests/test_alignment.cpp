#include <gtest/gtest.h>

#include "core/alignment.hpp"
#include "core/overlap.hpp"
#include "core/partition.hpp"
#include "dpgen/benchmarks.hpp"
#include "util/prng.hpp"

namespace dp::core {
namespace {

using netlist::CellId;
using netlist::Placement;

struct AdderFixture {
  AdderFixture() {
    dpgen::Generator gen("t", 33);
    auto a = gen.input_bus("a", 8);
    auto b = gen.input_bus("b", 8);
    gen.add_pipelined_adder("add", a, b, 2);
    bench.emplace(gen.finish());
  }

  /// Perfectly aligned placement of the first group: bit b on row b,
  /// stage s at a fixed column, pitch-separated.
  Placement aligned() const {
    Placement pl = bench->placement;
    const auto& g = bench->truth.groups[0];
    const auto& design = bench->design;
    for (std::size_t bit = 0; bit < g.bits; ++bit) {
      double x = design.core().lx + 1.0;
      for (std::size_t s = 0; s < g.stages; ++s) {
        const CellId c = g.at(bit, s);
        if (c != netlist::kInvalidId) {
          pl[c] = {x, design.row(bit).y + design.row_height() / 2.0};
        }
        x += 3.0;
      }
    }
    return pl;
  }

  std::optional<dpgen::Benchmark> bench;
};

TEST(AlignmentPenalty, ZeroOnPerfectlyAlignedPitchedArray) {
  AdderFixture f;
  AlignmentPenalty term(f.bench->netlist, f.bench->truth, f.bench->design);
  gp::VarMap vars(f.bench->netlist);
  const Placement pl = f.aligned();
  std::vector<double> gx(vars.num_vars(), 0.0), gy(vars.num_vars(), 0.0);
  // Note: stage pitch springs want mean cell-width pitch; the aligned
  // fixture uses pitch 3.0 which differs, so only the line terms are 0.
  // Check lines directly: y deviation within each slice must not
  // contribute; scramble y and the value must rise sharply.
  const double base = term.eval(pl, vars, gx, gy);

  Placement scrambled = pl;
  util::Rng rng(1);
  const auto& g = f.bench->truth.groups[0];
  for (CellId c : g.cells) {
    if (c != netlist::kInvalidId) {
      scrambled[c].y += rng.uniform(-3, 3);
    }
  }
  gx.assign(vars.num_vars(), 0.0);
  gy.assign(vars.num_vars(), 0.0);
  EXPECT_GT(term.eval(scrambled, vars, gx, gy), base + 1.0);
}

TEST(AlignmentPenalty, GradientMatchesFiniteDifference) {
  AdderFixture f;
  AlignmentPenalty term(f.bench->netlist, f.bench->truth, f.bench->design);
  gp::VarMap vars(f.bench->netlist);
  Placement pl = f.bench->placement;
  util::Rng rng(5);
  for (const CellId c : vars.movable_cells()) {
    pl[c] = {rng.uniform(0, 15), rng.uniform(0, 15)};
  }
  const std::size_t n = vars.num_vars();
  std::vector<double> gx(n, 0.0), gy(n, 0.0);
  term.eval(pl, vars, gx, gy);

  std::vector<double> dx(n), dy(n);
  const double h = 1e-6;
  auto value = [&](const Placement& p) {
    dx.assign(n, 0.0);
    dy.assign(n, 0.0);
    return term.eval(p, vars, dx, dy);
  };
  // Spot-check a handful of datapath cells on both axes.
  const auto& g = f.bench->truth.groups[0];
  int checked = 0;
  for (CellId c : g.cells) {
    if (c == netlist::kInvalidId || checked >= 6) continue;
    const auto v = vars.var(c);
    const double x0 = pl[c].x;
    pl[c].x = x0 + h;
    const double fp = value(pl);
    pl[c].x = x0 - h;
    const double fm = value(pl);
    pl[c].x = x0;
    EXPECT_NEAR(gx[v], (fp - fm) / (2 * h), 1e-3);

    const double y0 = pl[c].y;
    pl[c].y = y0 + h;
    const double fyp = value(pl);
    pl[c].y = y0 - h;
    const double fym = value(pl);
    pl[c].y = y0;
    EXPECT_NEAR(gy[v], (fyp - fym) / (2 * h), 1e-3);
    ++checked;
  }
}

TEST(AlignmentPenalty, TranslationInvariant) {
  AdderFixture f;
  AlignmentPenalty term(f.bench->netlist, f.bench->truth, f.bench->design);
  gp::VarMap vars(f.bench->netlist);
  Placement pl = f.aligned();
  std::vector<double> gx(vars.num_vars(), 0.0), gy(vars.num_vars(), 0.0);
  const double v1 = term.eval(pl, vars, gx, gy);
  for (auto& p : pl) p += geom::Point{2.5, 1.5};
  gx.assign(vars.num_vars(), 0.0);
  gy.assign(vars.num_vars(), 0.0);
  const double v2 = term.eval(pl, vars, gx, gy);
  EXPECT_NEAR(v1, v2, 1e-6 * std::max(1.0, std::abs(v1)));
}

TEST(AlignmentPenalty, OrientationHelpers) {
  AdderFixture f;
  AlignmentPenalty term(f.bench->netlist, f.bench->truth, f.bench->design);
  // Default: bits along y everywhere.
  EXPECT_EQ(term.orientation(0), GroupOrientation::kBitsAlongY);
  term.orient_by_shape();
  // 8 bits x 6 stages: bits >= stages keeps bits along y.
  EXPECT_EQ(term.orientation(0), GroupOrientation::kBitsAlongY);
  term.orient_by_placement(f.aligned());
  EXPECT_EQ(term.orientation(0), GroupOrientation::kBitsAlongY);
}

TEST(PlateOverlap, ZeroWhenDisjointPositiveWhenStacked) {
  AdderFixture f;
  dpgen::Generator gen2("t2", 34);
  auto a = gen2.input_bus("a", 8);
  auto b = gen2.input_bus("b", 8);
  gen2.add_pipelined_adder("p", a, b, 1);
  gen2.add_pipelined_adder("q", a, b, 1);
  const auto bench = gen2.finish();
  PlateOverlapPenalty term(bench.netlist, bench.truth, bench.design);
  gp::VarMap vars(bench.netlist);

  // Stack both groups at the core center: big overlap.
  Placement piled = bench.placement;
  std::vector<double> gx(vars.num_vars(), 0.0), gy(vars.num_vars(), 0.0);
  EXPECT_GT(term.eval(piled, vars, gx, gy), 0.0);

  // Separate them far apart: zero.
  Placement apart = piled;
  for (CellId c : bench.truth.groups[1].cells) {
    if (c != netlist::kInvalidId) apart[c].y += 100.0;
  }
  gx.assign(vars.num_vars(), 0.0);
  gy.assign(vars.num_vars(), 0.0);
  EXPECT_DOUBLE_EQ(term.eval(apart, vars, gx, gy), 0.0);
}

TEST(PlateOverlap, GradientPushesApart) {
  dpgen::Generator gen("t", 35);
  auto a = gen.input_bus("a", 8);
  auto b = gen.input_bus("b", 8);
  gen.add_pipelined_adder("p", a, b, 1);
  gen.add_pipelined_adder("q", a, b, 1);
  const auto bench = gen.finish();
  PlateOverlapPenalty term(bench.netlist, bench.truth, bench.design);
  gp::VarMap vars(bench.netlist);
  // Group q slightly to the right of group p, overlapping.
  Placement pl = bench.placement;
  for (CellId c : bench.truth.groups[1].cells) {
    if (c != netlist::kInvalidId) pl[c].x += 1.0;
  }
  std::vector<double> gx(vars.num_vars(), 0.0), gy(vars.num_vars(), 0.0);
  term.eval(pl, vars, gx, gy);
  // Mean gradient on group p is positive-x... i.e. p pushed left means
  // d f/d x_p > 0; q pushed right means d f / d x_q < 0.
  double gp = 0.0, gq = 0.0;
  for (CellId c : bench.truth.groups[0].cells) {
    if (c != netlist::kInvalidId) gp += gx[vars.var(c)];
  }
  for (CellId c : bench.truth.groups[1].cells) {
    if (c != netlist::kInvalidId) gq += gx[vars.var(c)];
  }
  EXPECT_GT(gp, 0.0);
  EXPECT_LT(gq, 0.0);
}

TEST(Partition, CoversEveryCellExactlyOnce) {
  AdderFixture f;
  const auto out = partition_groups(f.bench->netlist, f.bench->design,
                                    f.bench->truth);
  std::size_t covered = 0;
  std::vector<bool> seen(f.bench->netlist.num_cells(), false);
  for (const auto& g : out.groups) {
    for (CellId c : g.cells) {
      if (c == netlist::kInvalidId) continue;
      EXPECT_FALSE(seen[c]);
      seen[c] = true;
      ++covered;
    }
  }
  EXPECT_EQ(covered, f.bench->truth.total_cells());
}

TEST(Partition, WideGroupSplitIntoSeqChunks) {
  // A very wide group: 8 bits x 30 stages of full adders.
  dpgen::Generator gen("t", 36);
  auto a = gen.input_bus("a", 8);
  auto b = gen.input_bus("b", 8);
  gen.add_pipelined_adder("add", a, b, 10);  // 30 stage columns
  const auto bench = gen.finish();
  PartitionOptions opt;
  opt.max_width_fraction = 0.2;
  const auto out =
      partition_groups(bench.netlist, bench.design, bench.truth, opt);
  EXPECT_GT(out.groups.size(), 1u);
  // Sub-groups carry chain metadata and cover all original cells.
  std::size_t covered = 0;
  for (std::size_t i = 0; i < out.groups.size(); ++i) {
    EXPECT_EQ(out.groups[i].parent, bench.truth.groups[0].name);
    EXPECT_EQ(out.groups[i].seq, i);
    covered += out.groups[i].num_cells();
  }
  EXPECT_EQ(covered, bench.truth.groups[0].num_cells());
}

TEST(Partition, TallGroupSplitIntoLaneBands) {
  dpgen::Generator gen("t", 37);
  auto a = gen.input_bus("a", 64);
  auto b = gen.input_bus("b", 64);
  gen.add_pipelined_adder("add", a, b, 1);
  const auto bench = gen.finish();
  PartitionOptions opt;
  opt.max_lane_fraction = 0.25;  // force banding
  const auto out =
      partition_groups(bench.netlist, bench.design, bench.truth, opt);
  EXPECT_GT(out.groups.size(), 1u);
  for (const auto& g : out.groups) {
    EXPECT_LE(g.bits, static_cast<std::size_t>(
                          0.25 * static_cast<double>(bench.design.num_rows()) +
                          2));
  }
}

}  // namespace
}  // namespace dp::core
