#include <gtest/gtest.h>

#include <fstream>

#include "dpgen/benchmarks.hpp"
#include "eval/metrics.hpp"
#include "netlist/bookshelf.hpp"

namespace dp::netlist {
namespace {

class BookshelfRoundTrip : public ::testing::Test {
 protected:
  void SetUp() override {
    bench_.emplace(dpgen::make_benchmark("dp_add32"));
    base_ = ::testing::TempDir() + "bs_test";
    write_bookshelf(base_, bench_->netlist, bench_->design,
                    bench_->placement);
  }

  std::optional<dpgen::Benchmark> bench_;
  std::string base_;
};

TEST_F(BookshelfRoundTrip, CountsPreserved) {
  const BookshelfDesign loaded = read_bookshelf(base_ + ".aux");
  EXPECT_EQ(loaded.netlist.num_cells(), bench_->netlist.num_cells());
  EXPECT_EQ(loaded.netlist.num_nets(), bench_->netlist.num_nets());
  EXPECT_EQ(loaded.netlist.num_pins(), bench_->netlist.num_pins());
  EXPECT_EQ(loaded.netlist.num_movable(), bench_->netlist.num_movable());
}

TEST_F(BookshelfRoundTrip, GeometryPreserved) {
  const BookshelfDesign loaded = read_bookshelf(base_ + ".aux");
  EXPECT_EQ(loaded.design.num_rows(), bench_->design.num_rows());
  EXPECT_NEAR(loaded.design.core().width(), bench_->design.core().width(),
              1e-6);
  for (CellId c = 0; c < loaded.netlist.num_cells(); ++c) {
    EXPECT_NEAR(loaded.netlist.cell_width(c), bench_->netlist.cell_width(c),
                1e-9);
  }
}

TEST_F(BookshelfRoundTrip, HpwlPreserved) {
  // Pin offsets and positions both round-trip, so HPWL must match.
  const BookshelfDesign loaded = read_bookshelf(base_ + ".aux");
  EXPECT_NEAR(eval::hpwl(loaded.netlist, loaded.placement),
              eval::hpwl(bench_->netlist, bench_->placement),
              1e-4 * eval::hpwl(bench_->netlist, bench_->placement) + 1e-6);
}

TEST_F(BookshelfRoundTrip, FixedFlagsPreserved) {
  const BookshelfDesign loaded = read_bookshelf(base_ + ".aux");
  std::size_t fixed_in = 0, fixed_out = 0;
  for (const auto& c : bench_->netlist.cells()) fixed_in += c.fixed ? 1 : 0;
  for (const auto& c : loaded.netlist.cells()) fixed_out += c.fixed ? 1 : 0;
  EXPECT_EQ(fixed_in, fixed_out);
}

TEST_F(BookshelfRoundTrip, GroupsSidecarRoundTrips) {
  const std::string path = base_ + ".groups";
  write_groups(path, bench_->netlist, bench_->truth);
  const StructureAnnotation loaded = read_groups(path, bench_->netlist);
  ASSERT_EQ(loaded.groups.size(), bench_->truth.groups.size());
  for (std::size_t g = 0; g < loaded.groups.size(); ++g) {
    EXPECT_EQ(loaded.groups[g].bits, bench_->truth.groups[g].bits);
    EXPECT_EQ(loaded.groups[g].stages, bench_->truth.groups[g].stages);
    EXPECT_EQ(loaded.groups[g].cells, bench_->truth.groups[g].cells);
  }
}

TEST(Bookshelf, MissingFileThrows) {
  EXPECT_THROW(read_bookshelf("/nonexistent/foo.aux"), std::runtime_error);
}

TEST(Bookshelf, GroupsUnknownCellThrows) {
  const auto bench = dpgen::make_benchmark("dp_add32");
  const std::string path = ::testing::TempDir() + "bad.groups";
  {
    std::ofstream out(path);
    out << "group g 1 1 1.0\n  not_a_cell\n";
  }
  EXPECT_THROW(read_groups(path, bench.netlist), std::runtime_error);
}

}  // namespace
}  // namespace dp::netlist
