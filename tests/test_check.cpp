#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "check/rules.hpp"
#include "core/structure_placer.hpp"
#include "dpgen/benchmarks.hpp"
#include "netlist/library.hpp"

namespace dp::check {
namespace {

using netlist::CellFunc;
using netlist::CellId;
using netlist::NetlistSurgeon;
using netlist::PinDir;
using netlist::Placement;

/// A tiny, fully healthy design: one driving pad outside the core plus
/// two chained inverters, legally placed, annotated as a 1x2 group. Every
/// corruption test starts from this and breaks exactly one invariant.
struct LintBench {
  LintBench() {
    netlist::NetlistBuilder b(netlist::standard_library());
    pad = b.add_cell("pad", CellFunc::kPad, true);
    c1 = b.add_cell("c1", CellFunc::kInv);
    c2 = b.add_cell("c2", CellFunc::kInv);
    n1 = b.add_net("n1");
    b.connect_dir(pad, 0, n1, PinDir::kOutput);
    b.connect(c1, "A", n1);
    n2 = b.add_net("n2");
    b.connect(c1, "Y", n2);
    b.connect(c2, "A", n2);
    nl.emplace(b.take());
    design.emplace(geom::Rect{0, 0, 10, 4}, 1.0, 0.25);

    pl.assign(3, {});
    pl[pad] = {-1.0, 2.0};  // pads ring the outside of the core
    pl[c1] = at_site(1, 0);
    pl[c2] = at_site(12, 1);

    auto g = netlist::StructureGroup::make("g", 1, 2);
    g.at(0, 0) = c1;
    g.at(0, 1) = c2;
    ann.groups.push_back(std::move(g));
  }

  /// Center of an INV whose left edge is on site `site` of row `row`.
  geom::Point at_site(int site, int row) const {
    return {0.25 * site + nl->cell_width(c1) / 2.0, row + 0.5};
  }

  CheckContext ctx() {
    CheckContext c;
    c.netlist = &*nl;
    c.design = &*design;
    c.placement = &pl;
    c.structure = &ann;
    return c;
  }

  /// Run the full catalog and return the sink.
  DiagnosticSink lint(CheckLevel level = CheckLevel::kFull,
                      unsigned categories = kCatAll) {
    DiagnosticSink sink;
    run_checks(ctx(), sink, level, categories);
    return sink;
  }

  CellId pad, c1, c2;
  netlist::NetId n1, n2;
  std::optional<netlist::Netlist> nl;
  std::optional<netlist::Design> design;
  Placement pl;
  netlist::StructureAnnotation ann;
};

TEST(Checker, CleanDesignNoDiagnostics) {
  LintBench lb;
  const auto sink = lb.lint();
  EXPECT_TRUE(sink.clean()) << format_text(sink, &*lb.nl);
}

TEST(Checker, CatalogIsCompleteAndUnique) {
  const auto catalog = rule_catalog();
  EXPECT_GE(catalog.size(), 10u);
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    for (std::size_t j = i + 1; j < catalog.size(); ++j) {
      EXPECT_STRNE(catalog[i].id, catalog[j].id);
    }
  }
}

// ---- netlist rules ---------------------------------------------------------

TEST(Checker, DanglingPinCellFires) {
  LintBench lb;
  NetlistSurgeon(*lb.nl).pin(0).cell = 999999;
  const auto sink = lb.lint();
  EXPECT_GT(sink.num_errors(), 0u);
  EXPECT_TRUE(sink.fired("netlist.pin-refs"));
}

TEST(Checker, PinRewiredToForeignNetFires) {
  LintBench lb;
  NetlistSurgeon surgeon(*lb.nl);
  // The pin now claims n1 but is still listed (only) by n2.
  surgeon.pin(lb.nl->net(lb.n2).pins[0]).net = lb.n1;
  const auto sink = lb.lint();
  EXPECT_TRUE(sink.fired("netlist.pin-refs"));
}

TEST(Checker, BadPortIndexFires) {
  LintBench lb;
  NetlistSurgeon(*lb.nl).pin(1).port = 77;
  const auto sink = lb.lint();
  EXPECT_TRUE(sink.fired("netlist.cell-types"));
}

TEST(Checker, DegenerateTypeSizeFires) {
  netlist::Library lib;
  netlist::CellType t;
  t.name = "BROKEN";
  t.width = 0.0;
  t.height = 1.0;
  const netlist::CellTypeId tid = lib.add(std::move(t));
  netlist::NetlistBuilder b(lib);
  b.add_cell("x", tid);
  const auto nl = b.take();
  CheckContext ctx;
  ctx.netlist = &nl;
  DiagnosticSink sink;
  run_checks(ctx, sink);
  EXPECT_TRUE(sink.fired("netlist.cell-types"));
}

TEST(Checker, FlippedPinDirFires) {
  LintBench lb;
  NetlistSurgeon surgeon(*lb.nl);
  const netlist::PinId p = lb.nl->net(lb.n2).pins[0];  // c1's output "Y"
  surgeon.pin(p).dir = PinDir::kInput;
  const auto sink = lb.lint();
  EXPECT_TRUE(sink.fired("netlist.pin-dirs"));
}

TEST(Checker, BadNetWeightFires) {
  LintBench lb;
  NetlistSurgeon(*lb.nl).net(lb.n1).weight = -1.0;
  const auto sink = lb.lint();
  EXPECT_TRUE(sink.fired("netlist.net-shape"));
  EXPECT_GT(sink.num_errors(), 0u);
}

TEST(Checker, TwoDriversWarn) {
  LintBench lb;
  NetlistSurgeon surgeon(*lb.nl);
  // Make c2's input pin on n2 a second driver.
  surgeon.pin(lb.nl->net(lb.n2).pins[1]).dir = PinDir::kOutput;
  const auto sink = lb.lint();
  EXPECT_TRUE(sink.fired("netlist.net-shape"));
  EXPECT_GT(sink.num_warnings(), 0u);
}

// ---- geometry rules --------------------------------------------------------

TEST(Checker, NaNCoordinateFires) {
  LintBench lb;
  lb.pl[lb.c1].x = std::numeric_limits<double>::quiet_NaN();
  const auto sink = lb.lint();
  EXPECT_TRUE(sink.fired("geom.finite"));
}

TEST(Checker, ShortPlacementFires) {
  LintBench lb;
  lb.pl.resize(1);
  const auto sink = lb.lint();
  EXPECT_TRUE(sink.fired("geom.finite"));
}

TEST(Checker, OutOfCoreFires) {
  LintBench lb;
  lb.pl[lb.c2] = {50.0, 1.5};
  const auto sink = lb.lint();
  EXPECT_TRUE(sink.fired("geom.in-core"));
}

TEST(Checker, MovedFixedCellFires) {
  LintBench lb;
  const Placement reference = lb.pl;
  lb.pl[lb.pad] = {3.0, 2.0};
  CheckContext ctx = lb.ctx();
  ctx.fixed_reference = &reference;
  DiagnosticSink sink;
  run_checks(ctx, sink);
  EXPECT_TRUE(sink.fired("geom.fixed-immobile"));
}

// ---- legality rules --------------------------------------------------------

TEST(Checker, OffRowFires) {
  LintBench lb;
  lb.pl[lb.c1].y += 0.3;
  const auto sink = lb.lint();
  EXPECT_TRUE(sink.fired("legal.row-align"));
}

TEST(Checker, OffSiteFires) {
  LintBench lb;
  lb.pl[lb.c1].x += 0.1;
  const auto sink = lb.lint();
  EXPECT_TRUE(sink.fired("legal.site-align"));
}

TEST(Checker, OverlappingPairFires) {
  LintBench lb;
  lb.pl[lb.c2] = lb.at_site(2, 0);  // one site right of c1 (width 3 sites)
  const auto sink = lb.lint();
  EXPECT_TRUE(sink.fired("legal.overlap"));
}

TEST(Checker, CheapLevelSkipsOverlapSweep) {
  LintBench lb;
  lb.pl[lb.c2] = lb.at_site(2, 0);  // overlapping but row/site aligned
  const auto sink = lb.lint(CheckLevel::kCheap);
  EXPECT_FALSE(sink.fired("legal.overlap"));
  EXPECT_TRUE(sink.clean()) << format_text(sink, &*lb.nl);
}

TEST(Checker, CategoryMaskRespected) {
  LintBench lb;
  NetlistSurgeon(*lb.nl).pin(0).cell = 999999;  // netlist corruption
  const auto sink = lb.lint(CheckLevel::kFull, kCatGeometry | kCatLegality);
  EXPECT_TRUE(sink.clean()) << format_text(sink, &*lb.nl);
}

// ---- structure rules -------------------------------------------------------

TEST(Checker, RaggedGroupFires) {
  LintBench lb;
  lb.ann.groups[0].cells.resize(1);  // 1x2 group with one entry
  const auto sink = lb.lint();
  EXPECT_TRUE(sink.fired("structure.shape"));
}

TEST(Checker, ZeroShapeGroupFires) {
  LintBench lb;
  lb.ann.groups[0].bits = 0;
  lb.ann.groups[0].cells.clear();
  const auto sink = lb.lint();
  EXPECT_TRUE(sink.fired("structure.shape"));
}

TEST(Checker, DuplicateMemberFires) {
  LintBench lb;
  lb.ann.groups[0].at(0, 1) = lb.c1;  // c1 twice in one group
  const auto sink = lb.lint();
  EXPECT_TRUE(sink.fired("structure.members"));
}

TEST(Checker, OverlappingGroupsFire) {
  LintBench lb;
  auto g2 = netlist::StructureGroup::make("g2", 1, 1);
  g2.at(0, 0) = lb.c2;  // c2 already belongs to "g"
  lb.ann.groups.push_back(std::move(g2));
  const auto sink = lb.lint();
  EXPECT_TRUE(sink.fired("structure.members"));
}

TEST(Checker, FixedGroupMemberFires) {
  LintBench lb;
  lb.ann.groups[0].at(0, 1) = lb.pad;
  const auto sink = lb.lint();
  EXPECT_TRUE(sink.fired("structure.members"));
}

TEST(Checker, DanglingGroupMemberFires) {
  LintBench lb;
  lb.ann.groups[0].at(0, 1) = 424242;
  const auto sink = lb.lint();
  EXPECT_TRUE(sink.fired("structure.members"));
}

TEST(Checker, MixedStageTypesWarn) {
  dpgen::Benchmark bench = dpgen::make_benchmark("dp_add32");
  auto& g = bench.truth.groups[0];
  // Swap two cells from different stage columns (FA vs DFF) to mix types.
  std::swap(g.at(0, 0), g.at(0, 1));
  CheckContext ctx;
  ctx.netlist = &bench.netlist;
  ctx.structure = &bench.truth;
  DiagnosticSink sink;
  run_checks(ctx, sink, CheckLevel::kFull, kCatStructure);
  EXPECT_TRUE(sink.fired("structure.stage-types"));
}

// ---- timing rules ----------------------------------------------------------

TEST(Checker, CombinationalLoopFires) {
  // Two inverters in a ring: c1.Y -> c2.A, c2.Y -> c1.A. Every pin is on
  // the cycle, so the levelizer releases nothing.
  netlist::NetlistBuilder b(netlist::standard_library());
  const CellId c1 = b.add_cell("c1", CellFunc::kInv);
  const CellId c2 = b.add_cell("c2", CellFunc::kInv);
  const netlist::NetId na = b.add_net("na");
  const netlist::NetId nb = b.add_net("nb");
  b.connect(c1, "Y", na);
  b.connect(c2, "A", na);
  b.connect(c2, "Y", nb);
  b.connect(c1, "A", nb);
  const auto nl = b.take();
  CheckContext ctx;
  ctx.netlist = &nl;
  DiagnosticSink sink;
  run_checks(ctx, sink, CheckLevel::kFull, kCatTiming);
  EXPECT_TRUE(sink.fired("timing.comb-loops"));
  EXPECT_EQ(sink.num_errors(), 4u) << "one error per looped pin";
}

TEST(Checker, LoopReportingCapsAtEight) {
  // A 16-inverter ring: 32 looped pins, 8 reported + 1 aggregate error.
  netlist::NetlistBuilder b(netlist::standard_library());
  constexpr std::size_t kRing = 16;
  std::vector<CellId> cells;
  std::vector<netlist::NetId> nets;
  for (std::size_t i = 0; i < kRing; ++i) {
    cells.push_back(b.add_cell("i" + std::to_string(i), CellFunc::kInv));
    nets.push_back(b.add_net("n" + std::to_string(i)));
  }
  for (std::size_t i = 0; i < kRing; ++i) {
    b.connect(cells[i], "Y", nets[i]);
    b.connect(cells[(i + 1) % kRing], "A", nets[i]);
  }
  const auto nl = b.take();
  CheckContext ctx;
  ctx.netlist = &nl;
  DiagnosticSink sink;
  run_checks(ctx, sink, CheckLevel::kFull, kCatTiming);
  EXPECT_TRUE(sink.fired("timing.comb-loops"));
  EXPECT_EQ(sink.num_errors(), 9u);
}

TEST(Checker, UnregisteredOutputNoteFires) {
  // Input pad -> inverter -> output pad: the output pad's cone holds one
  // gate, so the (single, aggregated) note fires.
  netlist::NetlistBuilder b(netlist::standard_library());
  const CellId pi = b.add_cell("pi", CellFunc::kPad, true);
  const CellId inv = b.add_cell("inv", CellFunc::kInv);
  const CellId po = b.add_cell("po", CellFunc::kPad, true);
  const netlist::NetId n1 = b.add_net("n1");
  const netlist::NetId n2 = b.add_net("n2");
  b.connect_dir(pi, 0, n1, PinDir::kOutput);
  b.connect(inv, "A", n1);
  b.connect(inv, "Y", n2);
  b.connect_dir(po, 0, n2, PinDir::kInput);
  const auto nl = b.take();
  CheckContext ctx;
  ctx.netlist = &nl;
  DiagnosticSink sink;
  run_checks(ctx, sink, CheckLevel::kFull, kCatTiming);
  EXPECT_TRUE(sink.fired("timing.unregistered-outputs"));
  EXPECT_EQ(sink.num_errors(), 0u);
  EXPECT_EQ(sink.num_warnings(), 0u);
  EXPECT_EQ(sink.num_notes(), 1u);
}

TEST(Checker, RegisteredOutputStaysQuiet) {
  // Input pad -> inverter -> DFF -> output pad: the pad is driven by a
  // register, so no note.
  netlist::NetlistBuilder b(netlist::standard_library());
  const CellId pi = b.add_cell("pi", CellFunc::kPad, true);
  const CellId inv = b.add_cell("inv", CellFunc::kInv);
  const CellId ff = b.add_cell("ff", CellFunc::kDff);
  const CellId po = b.add_cell("po", CellFunc::kPad, true);
  const netlist::NetId n1 = b.add_net("n1");
  const netlist::NetId n2 = b.add_net("n2");
  const netlist::NetId n3 = b.add_net("n3");
  b.connect_dir(pi, 0, n1, PinDir::kOutput);
  b.connect(inv, "A", n1);
  b.connect(inv, "Y", n2);
  b.connect(ff, "D", n2);
  b.connect(ff, "Q", n3);
  b.connect_dir(po, 0, n3, PinDir::kInput);
  const auto nl = b.take();
  CheckContext ctx;
  ctx.netlist = &nl;
  DiagnosticSink sink;
  run_checks(ctx, sink, CheckLevel::kFull, kCatTiming);
  EXPECT_TRUE(sink.clean()) << format_text(sink, &nl);
}

TEST(Checker, TimingRulesSkipCorruptNetlists) {
  // A dangling pin->cell reference must not crash the timing rules (they
  // dereference those links to build the graph); pin-refs reports it.
  LintBench lb;
  NetlistSurgeon(*lb.nl).pin(0).cell = 999999;
  const auto sink = lb.lint(CheckLevel::kFull, kCatTiming);
  EXPECT_TRUE(sink.clean()) << format_text(sink, &*lb.nl);
}

// ---- sink & reporters ------------------------------------------------------

TEST(DiagnosticSink, CapsRetentionButCountsEverything) {
  DiagnosticSink sink(2);
  for (int i = 0; i < 5; ++i) {
    sink.report(Severity::kError, "r", Anchor::cell(0), "m");
  }
  EXPECT_EQ(sink.diagnostics().size(), 2u);
  EXPECT_EQ(sink.num_errors(), 5u);
  EXPECT_EQ(sink.dropped(), 3u);
}

TEST(Reporters, TextNamesRuleAndCell) {
  LintBench lb;
  lb.pl[lb.c1].x = std::numeric_limits<double>::quiet_NaN();
  const auto sink = lb.lint();
  const std::string text = format_text(sink, &*lb.nl);
  EXPECT_NE(text.find("geom.finite"), std::string::npos);
  EXPECT_NE(text.find("'c1'"), std::string::npos);
}

TEST(Reporters, JsonHasSummaryAndAnchors) {
  LintBench lb;
  lb.pl[lb.c1].x = std::numeric_limits<double>::quiet_NaN();
  const auto sink = lb.lint();
  const std::string json = format_json(sink, &*lb.nl);
  EXPECT_NE(json.find("\"summary\""), std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"geom.finite\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"c1\""), std::string::npos);
}

// ---- pipeline phase hooks --------------------------------------------------

TEST(PhaseHooks, FullPipelineRunsClean) {
  dpgen::Benchmark bench = dpgen::make_benchmark("dp_add32");
  core::PlacerConfig config;
  config.check_level = CheckLevel::kFull;
  core::StructurePlacer placer(bench.netlist, bench.design, config);
  Placement pl = bench.placement;
  const core::PlaceReport report = placer.place(pl, &bench.truth);
  ASSERT_EQ(report.checks.size(), 4u);
  EXPECT_EQ(report.checks[0].phase, "extract");
  EXPECT_EQ(report.checks[1].phase, "gp");
  EXPECT_EQ(report.checks[2].phase, "legal");
  EXPECT_EQ(report.checks[3].phase, "detail");
  for (const auto& phase : report.checks) {
    EXPECT_GT(phase.summary.rules_run, 0u) << phase.phase;
  }
  EXPECT_TRUE(report.checks_ok())
      << format_text(report.diagnostics, &bench.netlist);
  // dp_add32 exports combinational flag outputs, so the (informational)
  // unregistered-outputs note fires at each phase; nothing else may.
  EXPECT_EQ(report.diagnostics.num_errors(), 0u)
      << format_text(report.diagnostics, &bench.netlist);
  EXPECT_EQ(report.diagnostics.num_warnings(), 0u)
      << format_text(report.diagnostics, &bench.netlist);
  for (const auto& diag : report.diagnostics.diagnostics()) {
    EXPECT_EQ(std::string(diag.rule), "timing.unregistered-outputs");
  }
}

TEST(PhaseHooks, OffLevelRecordsNothing) {
  dpgen::Benchmark bench = dpgen::make_benchmark("dp_add32");
  core::PlacerConfig config;
  config.structure_aware = false;
  config.check_level = CheckLevel::kOff;
  core::StructurePlacer placer(bench.netlist, bench.design, config);
  Placement pl = bench.placement;
  const core::PlaceReport report = placer.place(pl, &bench.truth);
  EXPECT_TRUE(report.checks.empty());
  EXPECT_TRUE(report.diagnostics.clean());
}

}  // namespace
}  // namespace dp::check
