#include <gtest/gtest.h>

#include "dpgen/benchmarks.hpp"
#include "gp/density.hpp"
#include "util/prng.hpp"

namespace dp::gp {
namespace {

using netlist::CellId;
using netlist::Placement;

struct SmallDesign {
  SmallDesign() {
    dpgen::Generator gen("t", 9);
    auto a = gen.input_bus("a", 4);
    auto b = gen.input_bus("b", 4);
    gen.add_pipelined_adder("add", a, b, 1);
    bench.emplace(gen.finish());
  }
  std::optional<dpgen::Benchmark> bench;
};

TEST(Density, ValueNonNegativeAndFinite) {
  SmallDesign d;
  const auto& nl = d.bench->netlist;
  VarMap vars(nl);
  DensityPenalty den(nl, d.bench->design, 16);
  Placement pl = d.bench->placement;
  std::vector<double> gx(vars.num_vars(), 0.0), gy(vars.num_vars(), 0.0);
  const double v = den.eval(pl, vars, gx, gy);
  EXPECT_GE(v, 0.0);
  EXPECT_TRUE(std::isfinite(v));
}

TEST(Density, PiledPlacementWorseThanSpread) {
  SmallDesign d;
  const auto& nl = d.bench->netlist;
  const auto& design = d.bench->design;
  VarMap vars(nl);
  DensityPenalty den(nl, design, 16);
  std::vector<double> gx(vars.num_vars(), 0.0), gy(vars.num_vars(), 0.0);

  Placement piled = d.bench->placement;  // everything at the center
  const double v_piled = den.eval(piled, vars, gx, gy);

  Placement spread = piled;
  util::Rng rng(3);
  const geom::Rect& core = design.core();
  for (const CellId c : vars.movable_cells()) {
    spread[c] = {rng.uniform(core.lx, core.hx),
                 rng.uniform(core.ly, core.hy)};
  }
  gx.assign(vars.num_vars(), 0.0);
  gy.assign(vars.num_vars(), 0.0);
  const double v_spread = den.eval(spread, vars, gx, gy);
  EXPECT_LT(v_spread, v_piled);
}

TEST(Density, GradientMatchesFiniteDifference) {
  SmallDesign d;
  const auto& nl = d.bench->netlist;
  VarMap vars(nl);
  DensityPenalty den(nl, d.bench->design, 16);
  Placement pl = d.bench->placement;
  util::Rng rng(11);
  const geom::Rect& core = d.bench->design.core();
  for (const CellId c : vars.movable_cells()) {
    pl[c] = {rng.uniform(core.lx + 1, core.hx - 1),
             rng.uniform(core.ly + 1, core.hy - 1)};
  }
  const std::size_t n = vars.num_vars();
  std::vector<double> gx(n, 0.0), gy(n, 0.0);
  den.eval(pl, vars, gx, gy);

  std::vector<double> dump_x(n), dump_y(n);
  const double h = 1e-5;
  for (std::size_t v = 0; v < std::min<std::size_t>(n, 8); ++v) {
    const CellId c = vars.cell(v);
    const double y0 = pl[c].y;
    pl[c].y = y0 + h;
    dump_x.assign(n, 0.0);
    dump_y.assign(n, 0.0);
    const double fp = den.eval(pl, vars, dump_x, dump_y);
    pl[c].y = y0 - h;
    dump_x.assign(n, 0.0);
    dump_y.assign(n, 0.0);
    const double fm = den.eval(pl, vars, dump_x, dump_y);
    pl[c].y = y0;
    const double fd = (fp - fm) / (2 * h);
    // The analytic gradient treats the per-cell normalization as constant
    // (the standard approximation), so allow a few percent slack.
    EXPECT_NEAR(gx.size() ? gy[v] : 0.0, fd,
                std::max(0.05 * std::abs(fd), 0.05));
  }
}

/// Finite-difference validation of the one-sided mode (`one_sided_cap_ >=
/// 0`): only over-full bins contribute, so value and gradient share the
/// same clamped error and must stay consistent. (The two-sided path is
/// covered by GradientMatchesFiniteDifference above.)
TEST(Density, OneSidedGradientMatchesFiniteDifference) {
  SmallDesign d;
  const auto& nl = d.bench->netlist;
  VarMap vars(nl);
  DensityPenalty den(nl, d.bench->design, 16);
  den.set_one_sided(0.5);  // low cap so a loose cluster still overfills
  Placement pl = d.bench->placement;
  util::Rng rng(13);
  const geom::Rect& core = d.bench->design.core();
  // Cluster cells in a central window (away from the core edges, where
  // footprint clipping makes the constant-normalization approximation
  // poor): guarantees bins above the cap, so the one-sided gradient is
  // non-trivially exercised.
  const auto ctr = core.center();
  for (const CellId c : vars.movable_cells()) {
    pl[c] = {rng.uniform(ctr.x - core.width() / 5, ctr.x + core.width() / 5),
             rng.uniform(ctr.y - core.height() / 5,
                         ctr.y + core.height() / 5)};
  }
  const std::size_t n = vars.num_vars();
  std::vector<double> gx(n, 0.0), gy(n, 0.0);
  den.eval(pl, vars, gx, gy);
  EXPECT_GT(std::abs(gx[0]) + std::abs(gy[0]) +
                std::abs(gx[n / 2]) + std::abs(gy[n / 2]),
            0.0);

  std::vector<double> dump_x(n), dump_y(n);
  const double h = 1e-5;
  for (std::size_t v = 0; v < std::min<std::size_t>(n, 8); ++v) {
    const CellId c = vars.cell(v);
    for (int axis = 0; axis < 2; ++axis) {
      double& coord = axis == 0 ? pl[c].x : pl[c].y;
      const double c0 = coord;
      coord = c0 + h;
      dump_x.assign(n, 0.0);
      dump_y.assign(n, 0.0);
      const double fp = den.eval(pl, vars, dump_x, dump_y);
      coord = c0 - h;
      dump_x.assign(n, 0.0);
      dump_y.assign(n, 0.0);
      const double fm = den.eval(pl, vars, dump_x, dump_y);
      coord = c0;
      const double fd = (fp - fm) / (2 * h);
      const double analytic = axis == 0 ? gx[v] : gy[v];
      // Same slack as the two-sided test: the normalization is treated
      // as constant, and the one-sided clamp adds a kink at the cap.
      EXPECT_NEAR(analytic, fd, std::max(0.05 * std::abs(fd), 0.05))
          << "cell " << nl.cell(c).name << " axis " << axis;
    }
  }
}

TEST(Density, OverflowZeroForUniformSpread) {
  SmallDesign d;
  const auto& nl = d.bench->netlist;
  const auto& design = d.bench->design;
  VarMap vars(nl);
  DensityPenalty den(nl, design, 8);
  // Place cells on a regular grid: low local density everywhere.
  Placement pl = d.bench->placement;
  const geom::Rect& core = design.core();
  const auto movable = vars.movable_cells();
  const auto side = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(movable.size()))));
  for (std::size_t i = 0; i < movable.size(); ++i) {
    const double fx = (static_cast<double>(i % side) + 0.5) /
                      static_cast<double>(side);
    const double fy = (static_cast<double>(i / side) + 0.5) /
                      static_cast<double>(side);
    pl[movable[i]] = {core.lx + fx * core.width(),
                      core.ly + fy * core.height()};
  }
  EXPECT_LT(den.overflow(pl, vars, 1.0), 0.05);
}

TEST(Density, OverflowHighForPile) {
  SmallDesign d;
  VarMap vars(d.bench->netlist);
  DensityPenalty den(d.bench->netlist, d.bench->design, 8);
  const Placement pl = d.bench->placement;  // piled at center
  EXPECT_GT(den.overflow(pl, vars, 1.0), 0.5);
}

TEST(Density, AreaScaleReducesContribution) {
  SmallDesign d;
  const auto& nl = d.bench->netlist;
  VarMap vars(nl);
  DensityPenalty den(nl, d.bench->design, 8);
  const Placement pl = d.bench->placement;
  const double before = den.overflow(pl, vars, 1.0);
  std::vector<double> scale(nl.num_cells(), 0.5);
  den.set_area_scale(scale);
  // Same pile but every cell counts half: same relative overflow ratio,
  // but the absolute overflowing area halves; the normalized metric uses
  // the scaled total, so the value stays comparable (not larger).
  EXPECT_LE(den.overflow(pl, vars, 1.0), before + 1e-9);
}

TEST(Density, PreloadObstaclesBlocksBins) {
  SmallDesign d;
  const auto& nl = d.bench->netlist;
  // Freeze every cell: subset VarMap with empty mask.
  std::vector<bool> none(nl.num_cells(), false);
  VarMap frozen(nl, none);
  EXPECT_EQ(frozen.num_vars(), 0u);
  DensityPenalty den(nl, d.bench->design, 8);
  den.preload_obstacles(d.bench->placement, frozen);
  // All movable area is now preload: full overflow against a 0 target...
  // overflow() with no movable cells returns 0 by definition; instead the
  // penalty value must reflect the preloaded pile.
  std::vector<double> gx, gy;
  const double v = den.eval(d.bench->placement, frozen, gx, gy);
  EXPECT_GT(v, 0.0);
}

TEST(Density, OneSidedIgnoresUnderfull) {
  SmallDesign d;
  const auto& nl = d.bench->netlist;
  VarMap vars(nl);
  DensityPenalty den(nl, d.bench->design, 8);
  // Spread grid placement: nothing above 1.0 density.
  Placement pl = d.bench->placement;
  const geom::Rect& core = d.bench->design.core();
  const auto movable = vars.movable_cells();
  const auto side = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(movable.size()))));
  for (std::size_t i = 0; i < movable.size(); ++i) {
    pl[movable[i]] = {
        core.lx + (static_cast<double>(i % side) + 0.5) /
                      static_cast<double>(side) * core.width(),
        core.ly + (static_cast<double>(i / side) + 0.5) /
                      static_cast<double>(side) * core.height()};
  }
  std::vector<double> gx(vars.num_vars(), 0.0), gy(vars.num_vars(), 0.0);
  const double two_sided = den.eval(pl, vars, gx, gy);
  den.set_one_sided(1.0);
  gx.assign(vars.num_vars(), 0.0);
  gy.assign(vars.num_vars(), 0.0);
  const double one_sided = den.eval(pl, vars, gx, gy);
  // Under-full bins dominate a spread placement's two-sided penalty; the
  // one-sided value keeps only the (tiny, quantization-level) overfull
  // residue.
  EXPECT_LT(one_sided, 0.05 * two_sided);
}

}  // namespace
}  // namespace dp::gp
