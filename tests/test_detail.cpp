#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "detail/detailed_placer.hpp"
#include "dpgen/benchmarks.hpp"
#include "eval/metrics.hpp"
#include "legal/abacus.hpp"
#include "util/prng.hpp"

namespace dp::detail {
namespace {

using netlist::CellId;
using netlist::Placement;

struct LegalBench {
  explicit LegalBench(std::uint64_t seed) {
    dpgen::Generator gen("t", seed);
    gen.add_control_block("ctl", 50);
    auto a = gen.input_bus("a", 8);
    auto b = gen.input_bus("b", 8);
    auto s = gen.add_pipelined_adder("add", a, b, 2);
    gen.output_bus("s", s);
    bench.emplace(gen.finish());
    pl = bench->placement;
    util::Rng rng(seed * 3 + 1);
    const geom::Rect& core = bench->design.core();
    for (CellId c = 0; c < bench->netlist.num_cells(); ++c) {
      if (!bench->netlist.cell(c).fixed) {
        pl[c] = {rng.uniform(core.lx, core.hx),
                 rng.uniform(core.ly, core.hy)};
      }
    }
    legal::AbacusLegalizer(bench->netlist, bench->design).run_all(pl);
  }
  std::optional<dpgen::Benchmark> bench;
  Placement pl;
};

class DetailProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DetailProperty, NeverIncreasesHpwl) {
  LegalBench lb(GetParam());
  const double before = eval::hpwl(lb.bench->netlist, lb.pl);
  DetailedPlacer placer(lb.bench->netlist, lb.bench->design);
  const DetailStats stats = placer.run(lb.pl);
  EXPECT_LE(stats.hpwl_after, before + 1e-9);
  EXPECT_DOUBLE_EQ(stats.hpwl_before, before);
}

TEST_P(DetailProperty, PreservesLegality) {
  LegalBench lb(GetParam());
  ASSERT_TRUE(
      eval::check_legality(lb.bench->netlist, lb.bench->design, lb.pl)
          .legal());
  DetailedPlacer placer(lb.bench->netlist, lb.bench->design);
  placer.run(lb.pl);
  EXPECT_TRUE(
      eval::check_legality(lb.bench->netlist, lb.bench->design, lb.pl)
          .legal());
}

TEST_P(DetailProperty, StructuredModePreservesLegality) {
  LegalBench lb(GetParam());
  DetailedPlacer placer(lb.bench->netlist, lb.bench->design);
  std::vector<bool> along_y(lb.bench->truth.groups.size(), true);
  placer.run_structured(lb.pl, lb.bench->truth, along_y);
  EXPECT_TRUE(
      eval::check_legality(lb.bench->netlist, lb.bench->design, lb.pl)
          .legal());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DetailProperty,
                         ::testing::Values(1, 2, 3, 4));

TEST(Detail, ActuallyImprovesRandomLegalPlacement) {
  LegalBench lb(9);
  DetailedPlacer placer(lb.bench->netlist, lb.bench->design);
  const DetailStats stats = placer.run(lb.pl);
  EXPECT_LT(stats.hpwl_after, stats.hpwl_before);
  EXPECT_GT(stats.slides + stats.swaps, 0u);
}

TEST(Detail, MaxPassesZeroIsNoop) {
  LegalBench lb(10);
  const Placement before = lb.pl;
  DetailedPlacer placer(lb.bench->netlist, lb.bench->design);
  DetailOptions opt;
  opt.max_passes = 0;
  placer.run(lb.pl, opt);
  for (CellId c = 0; c < lb.bench->netlist.num_cells(); ++c) {
    EXPECT_DOUBLE_EQ(lb.pl[c].x, before[c].x);
  }
}

// ---------------------------------------------------------------------------
// Bitwise equivalence against the original full-rescan implementation.
//
// The detailed placer was rewritten on top of eval::IncrementalHpwl; at the
// default options its accept decisions and committed coordinates must be
// indistinguishable from the historical engine, which is reproduced here
// verbatim as the reference.
// ---------------------------------------------------------------------------
namespace seedref {

constexpr int kNoUnit = -1;

struct Entry {
  double lx = 0.0;
  double width = 0.0;
  CellId cell = netlist::kInvalidId;
  int unit = kNoUnit;

  double hx() const { return lx + width; }
};

struct Unit {
  std::vector<CellId> cells;
  std::size_t row = 0;
};

class Engine {
 public:
  Engine(const netlist::Netlist& nl, const netlist::Design& design,
         netlist::Placement& pl, const std::vector<Unit>& units)
      : nl_(&nl), design_(&design), pl_(&pl), units_(&units) {
    build_rows();
  }

  void optimize(const DetailOptions& options) {
    double current = eval::hpwl(*nl_, *pl_);
    for (std::size_t pass = 0; pass < options.max_passes; ++pass) {
      slide_pass();
      swap_pass();
      unit_slide_pass();
      const double next = eval::hpwl(*nl_, *pl_);
      const bool converged =
          current - next <= options.rel_improvement_floor * current;
      current = next;
      if (converged) break;
    }
  }

 private:
  void build_rows() {
    rows_.assign(design_->num_rows(), {});
    std::vector<bool> in_unit(nl_->num_cells(), false);
    for (std::size_t u = 0; u < units_->size(); ++u) {
      const Unit& unit = (*units_)[u];
      if (unit.cells.empty()) continue;
      double lo = std::numeric_limits<double>::infinity(), hi = -lo;
      for (CellId c : unit.cells) {
        in_unit[c] = true;
        lo = std::min(lo, (*pl_)[c].x - nl_->cell_width(c) / 2.0);
        hi = std::max(hi, (*pl_)[c].x + nl_->cell_width(c) / 2.0);
      }
      const std::size_t r = design_->nearest_row((*pl_)[unit.cells[0]].y);
      rows_[r].push_back({lo, hi - lo, netlist::kInvalidId,
                          static_cast<int>(u)});
    }
    for (CellId c = 0; c < nl_->num_cells(); ++c) {
      if (nl_->cell(c).fixed || in_unit[c]) continue;
      const double w = nl_->cell_width(c);
      const std::size_t r = design_->nearest_row((*pl_)[c].y);
      rows_[r].push_back({(*pl_)[c].x - w / 2.0, w, c, kNoUnit});
    }
    for (auto& row : rows_) {
      std::sort(row.begin(), row.end(),
                [](const Entry& a, const Entry& b) { return a.lx < b.lx; });
      std::vector<Entry> clean;
      clean.reserve(row.size());
      for (const Entry& e : row) {
        if (!clean.empty() && clean.back().hx() > e.lx + 1e-9) continue;
        clean.push_back(e);
      }
      row = std::move(clean);
    }
  }

  double nets_hpwl(const std::vector<CellId>& cells) {
    scratch_nets_.clear();
    for (CellId c : cells) {
      for (netlist::PinId p : nl_->cell(c).pins) {
        scratch_nets_.push_back(nl_->pin(p).net);
      }
    }
    std::sort(scratch_nets_.begin(), scratch_nets_.end());
    scratch_nets_.erase(
        std::unique(scratch_nets_.begin(), scratch_nets_.end()),
        scratch_nets_.end());
    double total = 0.0;
    for (netlist::NetId n : scratch_nets_) {
      total += nl_->net(n).weight * eval::net_hpwl(*nl_, n, *pl_);
    }
    return total;
  }

  double optimal_position(const std::vector<CellId>& cells,
                          const std::vector<double>& rel) {
    breakpoints_.clear();
    for (std::size_t k = 0; k < cells.size(); ++k) {
      for (netlist::PinId p : nl_->cell(cells[k]).pins) {
        const auto& pin = nl_->pin(p);
        const auto& net_pins = nl_->net(pin.net).pins;
        if (net_pins.size() < 2) continue;
        double lo = std::numeric_limits<double>::infinity(), hi = -lo;
        bool external = false;
        for (netlist::PinId q : net_pins) {
          const CellId oc = nl_->pin(q).cell;
          bool moving = false;
          for (CellId mc : cells) {
            if (oc == mc) {
              moving = true;
              break;
            }
          }
          if (moving) continue;
          const double x = nl_->pin_position(q, *pl_).x;
          lo = std::min(lo, x);
          hi = std::max(hi, x);
          external = true;
        }
        if (!external) continue;
        const double off = rel[k] + pin.offset_x;
        breakpoints_.push_back(lo - off);
        breakpoints_.push_back(hi - off);
      }
    }
    if (breakpoints_.empty()) {
      return std::numeric_limits<double>::quiet_NaN();
    }
    std::sort(breakpoints_.begin(), breakpoints_.end());
    const std::size_t m = breakpoints_.size();
    return (breakpoints_[(m - 1) / 2] + breakpoints_[m / 2]) / 2.0;
  }

  bool try_shift(std::size_t r, std::size_t i, double new_lx,
                 std::vector<CellId>& moved_cells) {
    auto& row = rows_[r];
    Entry& e = row[i];
    const double lo_bound = i > 0 ? row[i - 1].hx() : design_->row(r).lx;
    const double hi_bound =
        i + 1 < row.size() ? row[i + 1].lx : design_->row(r).hx;
    new_lx = std::clamp(new_lx, lo_bound, hi_bound - e.width);
    new_lx = design_->snap_x(new_lx);
    if (new_lx < lo_bound - 1e-9 || new_lx + e.width > hi_bound + 1e-9) {
      new_lx = std::clamp(new_lx, lo_bound, hi_bound - e.width);
      const double site = design_->site_width();
      new_lx = design_->core().lx +
               std::ceil((new_lx - design_->core().lx) / site - 1e-9) * site;
      if (new_lx + e.width > hi_bound + 1e-9) return false;
    }
    const double dx = new_lx - e.lx;
    if (std::abs(dx) < 1e-12) return false;

    const double before = nets_hpwl(moved_cells);
    for (std::size_t k = 0; k < moved_cells.size(); ++k) {
      (*pl_)[moved_cells[k]].x += dx;
    }
    const double after = nets_hpwl(moved_cells);
    if (after + 1e-12 < before) {
      e.lx = new_lx;
      return true;
    }
    for (CellId c : moved_cells) (*pl_)[c].x -= dx;
    return false;
  }

  void slide_pass() {
    std::vector<CellId> one(1);
    std::vector<double> rel{0.0};
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      for (std::size_t i = 0; i < rows_[r].size(); ++i) {
        Entry& e = rows_[r][i];
        if (e.unit != kNoUnit) continue;
        one[0] = e.cell;
        rel[0] = nl_->cell_width(e.cell) / 2.0;
        const double x_opt = optimal_position(one, rel);
        if (!std::isfinite(x_opt)) continue;
        try_shift(r, i, x_opt, one);
      }
    }
  }

  void swap_pass() {
    std::vector<CellId> pair(2);
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      auto& row = rows_[r];
      for (std::size_t i = 0; i + 1 < row.size(); ++i) {
        Entry& a = row[i];
        Entry& b = row[i + 1];
        if (a.unit != kNoUnit || b.unit != kNoUnit) continue;
        const double gap = b.lx - a.hx();
        const double new_b_lx = a.lx;
        const double new_a_lx = a.lx + b.width + gap;
        pair[0] = a.cell;
        pair[1] = b.cell;
        const double before = nets_hpwl(pair);
        const double old_a_lx = a.lx, old_b_lx = b.lx;
        (*pl_)[a.cell].x = new_a_lx + a.width / 2.0;
        (*pl_)[b.cell].x = new_b_lx + b.width / 2.0;
        const double after = nets_hpwl(pair);
        if (after + 1e-12 < before) {
          a.lx = new_a_lx;
          b.lx = new_b_lx;
          std::swap(row[i], row[i + 1]);
        } else {
          (*pl_)[a.cell].x = old_a_lx + a.width / 2.0;
          (*pl_)[b.cell].x = old_b_lx + b.width / 2.0;
        }
      }
    }
  }

  void unit_slide_pass() {
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      for (std::size_t i = 0; i < rows_[r].size(); ++i) {
        Entry& e = rows_[r][i];
        if (e.unit == kNoUnit) continue;
        const Unit& unit = (*units_)[static_cast<std::size_t>(e.unit)];
        std::vector<CellId> cells = unit.cells;
        std::vector<double> rel(cells.size());
        for (std::size_t k = 0; k < cells.size(); ++k) {
          rel[k] = (*pl_)[cells[k]].x - e.lx;
        }
        const double x_opt = optimal_position(cells, rel);
        if (!std::isfinite(x_opt)) continue;
        try_shift(r, i, x_opt, cells);
      }
    }
  }

  const netlist::Netlist* nl_;
  const netlist::Design* design_;
  netlist::Placement* pl_;
  const std::vector<Unit>* units_;
  std::vector<std::vector<Entry>> rows_;
  std::vector<netlist::NetId> scratch_nets_;
  std::vector<double> breakpoints_;
};

void run_plain(const netlist::Netlist& nl, const netlist::Design& design,
               netlist::Placement& pl, const DetailOptions& options = {}) {
  const std::vector<Unit> no_units;
  Engine engine(nl, design, pl, no_units);
  engine.optimize(options);
}

void run_structured(const netlist::Netlist& nl,
                    const netlist::Design& design, netlist::Placement& pl,
                    const netlist::StructureAnnotation& groups,
                    const std::vector<bool>& bits_along_y,
                    const DetailOptions& options = {}) {
  std::vector<Unit> units;
  for (std::size_t g = 0; g < groups.groups.size(); ++g) {
    const bool along_y = g < bits_along_y.size() ? bits_along_y[g] : true;
    for (auto& lane : netlist::row_lanes(groups.groups[g], along_y)) {
      if (lane.empty()) continue;
      std::sort(lane.begin(), lane.end(), [&](CellId a, CellId b) {
        return pl[a].x < pl[b].x;
      });
      std::vector<std::pair<std::size_t, CellId>> by_row;
      by_row.reserve(lane.size());
      for (CellId c : lane) {
        by_row.emplace_back(design.nearest_row(pl[c].y), c);
      }
      std::stable_sort(
          by_row.begin(), by_row.end(),
          [](const auto& a, const auto& b) { return a.first < b.first; });
      std::size_t start = 0;
      while (start < by_row.size()) {
        std::size_t end = start;
        while (end < by_row.size() &&
               by_row[end].first == by_row[start].first) {
          ++end;
        }
        Unit u;
        u.row = by_row[start].first;
        double sum_w = 0.0, lo = 1e300, hi = -1e300;
        for (std::size_t k = start; k < end; ++k) {
          const CellId c = by_row[k].second;
          u.cells.push_back(c);
          sum_w += nl.cell_width(c);
          lo = std::min(lo, pl[c].x - nl.cell_width(c) / 2.0);
          hi = std::max(hi, pl[c].x + nl.cell_width(c) / 2.0);
        }
        if (hi - lo <= sum_w + 1e-9) {
          units.push_back(std::move(u));
        }
        start = end;
      }
    }
  }
  Engine engine(nl, design, pl, units);
  engine.optimize(options);
}

}  // namespace seedref

/// Random scatter + Abacus legalization: the detailer's standard input.
Placement legalized_scatter(const dpgen::Benchmark& bench,
                            std::uint64_t seed) {
  Placement pl = bench.placement;
  util::Rng rng(seed);
  const geom::Rect& core = bench.design.core();
  for (CellId c = 0; c < bench.netlist.num_cells(); ++c) {
    if (!bench.netlist.cell(c).fixed) {
      pl[c] = {rng.uniform(core.lx, core.hx), rng.uniform(core.ly, core.hy)};
    }
  }
  legal::AbacusLegalizer(bench.netlist, bench.design).run_all(pl);
  return pl;
}

class DetailEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(DetailEquivalence, BitwiseIdenticalToSeedImplementation) {
  dpgen::Benchmark bench = dpgen::make_benchmark(GetParam());
  const Placement start = legalized_scatter(bench, 42);

  Placement pl_ref = start;
  seedref::run_plain(bench.netlist, bench.design, pl_ref);

  Placement pl_new = start;
  DetailedPlacer placer(bench.netlist, bench.design);
  const DetailStats stats = placer.run(pl_new);

  for (CellId c = 0; c < bench.netlist.num_cells(); ++c) {
    ASSERT_EQ(pl_new[c].x, pl_ref[c].x) << "cell " << c;
    ASSERT_EQ(pl_new[c].y, pl_ref[c].y) << "cell " << c;
  }
  EXPECT_EQ(stats.hpwl_after, eval::hpwl(bench.netlist, pl_ref));
}

TEST_P(DetailEquivalence, StructuredModeBitwiseIdentical) {
  dpgen::Benchmark bench = dpgen::make_benchmark(GetParam());
  const Placement start = legalized_scatter(bench, 43);
  std::vector<bool> along_y(bench.truth.groups.size(), true);

  Placement pl_ref = start;
  seedref::run_structured(bench.netlist, bench.design, pl_ref, bench.truth,
                          along_y);

  Placement pl_new = start;
  DetailedPlacer placer(bench.netlist, bench.design);
  placer.run_structured(pl_new, bench.truth, along_y);

  for (CellId c = 0; c < bench.netlist.num_cells(); ++c) {
    ASSERT_EQ(pl_new[c].x, pl_ref[c].x) << "cell " << c;
    ASSERT_EQ(pl_new[c].y, pl_ref[c].y) << "cell " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, DetailEquivalence,
                         ::testing::ValuesIn(dpgen::standard_benchmarks()));

TEST(Detail, ParanoidModeMatchesSeedAndPassesAllChecks) {
  dpgen::Benchmark bench = dpgen::make_benchmark("dp_alu32");
  const Placement start = legalized_scatter(bench, 44);

  Placement pl_ref = start;
  seedref::run_plain(bench.netlist, bench.design, pl_ref);

  Placement pl_new = start;
  DetailedPlacer placer(bench.netlist, bench.design);
  DetailOptions opt;
  opt.paranoid = true;
  const DetailStats stats = placer.run(pl_new, opt);

  EXPECT_GT(stats.profile.paranoid_checks, 0u);
  EXPECT_EQ(stats.profile.paranoid_failures, 0u);
  for (CellId c = 0; c < bench.netlist.num_cells(); ++c) {
    ASSERT_EQ(pl_new[c].x, pl_ref[c].x) << "cell " << c;
    ASSERT_EQ(pl_new[c].y, pl_ref[c].y) << "cell " << c;
  }
}

TEST(Detail, SwapWindowWidensTheSearch) {
  LegalBench lb(5);
  const double before = eval::hpwl(lb.bench->netlist, lb.pl);

  Placement pl_wide = lb.pl;
  DetailedPlacer placer(lb.bench->netlist, lb.bench->design);
  DetailOptions opt;
  opt.swap_window = 4;
  const DetailStats stats = placer.run(pl_wide, opt);

  // Still legal, still monotone, and the pass actually looked at more
  // candidates than the adjacent-only default.
  EXPECT_TRUE(
      eval::check_legality(lb.bench->netlist, lb.bench->design, pl_wide)
          .legal());
  EXPECT_LE(stats.hpwl_after, before + 1e-9);

  DetailStats narrow = placer.run(lb.pl);
  EXPECT_GT(stats.profile.swap.candidates, narrow.profile.swap.candidates);
}

TEST(Detail, ProfileCountsAreConsistent) {
  LegalBench lb(6);
  DetailedPlacer placer(lb.bench->netlist, lb.bench->design);
  const DetailStats stats = placer.run(lb.pl);
  const Profile& p = stats.profile;
  EXPECT_EQ(p.slide.accepted, stats.slides);
  EXPECT_EQ(p.swap.accepted, stats.swaps);
  EXPECT_EQ(p.unit_slide.accepted, stats.slice_slides);
  EXPECT_LE(p.slide.accepted, p.slide.candidates);
  EXPECT_LE(p.swap.accepted, p.swap.candidates);
  // One resync before the pass loop plus one per executed pass.
  EXPECT_EQ(p.resyncs, stats.passes + 1);
  EXPECT_FALSE(p.to_string().empty());
}

TEST(Detail, StructuredModeKeepsContiguousLanesRigid) {
  // Build a placement where group lanes are perfectly packed, then check
  // relative offsets within each lane survive detailed placement.
  dpgen::Benchmark bench = dpgen::make_benchmark("dp_add32");
  std::vector<bool> along_y(bench.truth.groups.size(), true);
  legal::AbacusLegalizer ab(bench.netlist, bench.design);
  Placement pl = bench.placement;
  util::Rng rng(3);
  const geom::Rect& core = bench.design.core();
  for (CellId c = 0; c < bench.netlist.num_cells(); ++c) {
    if (!bench.netlist.cell(c).fixed) {
      pl[c] = {rng.uniform(core.lx, core.hx), rng.uniform(core.ly, core.hy)};
    }
  }
  ab.run_all(pl);

  DetailedPlacer placer(bench.netlist, bench.design);
  placer.run_structured(pl, bench.truth, along_y);
  EXPECT_TRUE(eval::check_legality(bench.netlist, bench.design, pl).legal());
}

}  // namespace
}  // namespace dp::detail
