#include <gtest/gtest.h>

#include "detail/detailed_placer.hpp"
#include "dpgen/benchmarks.hpp"
#include "eval/metrics.hpp"
#include "legal/abacus.hpp"
#include "util/prng.hpp"

namespace dp::detail {
namespace {

using netlist::CellId;
using netlist::Placement;

struct LegalBench {
  explicit LegalBench(std::uint64_t seed) {
    dpgen::Generator gen("t", seed);
    gen.add_control_block("ctl", 50);
    auto a = gen.input_bus("a", 8);
    auto b = gen.input_bus("b", 8);
    auto s = gen.add_pipelined_adder("add", a, b, 2);
    gen.output_bus("s", s);
    bench.emplace(gen.finish());
    pl = bench->placement;
    util::Rng rng(seed * 3 + 1);
    const geom::Rect& core = bench->design.core();
    for (CellId c = 0; c < bench->netlist.num_cells(); ++c) {
      if (!bench->netlist.cell(c).fixed) {
        pl[c] = {rng.uniform(core.lx, core.hx),
                 rng.uniform(core.ly, core.hy)};
      }
    }
    legal::AbacusLegalizer(bench->netlist, bench->design).run_all(pl);
  }
  std::optional<dpgen::Benchmark> bench;
  Placement pl;
};

class DetailProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DetailProperty, NeverIncreasesHpwl) {
  LegalBench lb(GetParam());
  const double before = eval::hpwl(lb.bench->netlist, lb.pl);
  DetailedPlacer placer(lb.bench->netlist, lb.bench->design);
  const DetailStats stats = placer.run(lb.pl);
  EXPECT_LE(stats.hpwl_after, before + 1e-9);
  EXPECT_DOUBLE_EQ(stats.hpwl_before, before);
}

TEST_P(DetailProperty, PreservesLegality) {
  LegalBench lb(GetParam());
  ASSERT_TRUE(
      eval::check_legality(lb.bench->netlist, lb.bench->design, lb.pl)
          .legal());
  DetailedPlacer placer(lb.bench->netlist, lb.bench->design);
  placer.run(lb.pl);
  EXPECT_TRUE(
      eval::check_legality(lb.bench->netlist, lb.bench->design, lb.pl)
          .legal());
}

TEST_P(DetailProperty, StructuredModePreservesLegality) {
  LegalBench lb(GetParam());
  DetailedPlacer placer(lb.bench->netlist, lb.bench->design);
  std::vector<bool> along_y(lb.bench->truth.groups.size(), true);
  placer.run_structured(lb.pl, lb.bench->truth, along_y);
  EXPECT_TRUE(
      eval::check_legality(lb.bench->netlist, lb.bench->design, lb.pl)
          .legal());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DetailProperty,
                         ::testing::Values(1, 2, 3, 4));

TEST(Detail, ActuallyImprovesRandomLegalPlacement) {
  LegalBench lb(9);
  DetailedPlacer placer(lb.bench->netlist, lb.bench->design);
  const DetailStats stats = placer.run(lb.pl);
  EXPECT_LT(stats.hpwl_after, stats.hpwl_before);
  EXPECT_GT(stats.slides + stats.swaps, 0u);
}

TEST(Detail, MaxPassesZeroIsNoop) {
  LegalBench lb(10);
  const Placement before = lb.pl;
  DetailedPlacer placer(lb.bench->netlist, lb.bench->design);
  DetailOptions opt;
  opt.max_passes = 0;
  placer.run(lb.pl, opt);
  for (CellId c = 0; c < lb.bench->netlist.num_cells(); ++c) {
    EXPECT_DOUBLE_EQ(lb.pl[c].x, before[c].x);
  }
}

TEST(Detail, StructuredModeKeepsContiguousLanesRigid) {
  // Build a placement where group lanes are perfectly packed, then check
  // relative offsets within each lane survive detailed placement.
  dpgen::Benchmark bench = dpgen::make_benchmark("dp_add32");
  std::vector<bool> along_y(bench.truth.groups.size(), true);
  legal::AbacusLegalizer ab(bench.netlist, bench.design);
  Placement pl = bench.placement;
  util::Rng rng(3);
  const geom::Rect& core = bench.design.core();
  for (CellId c = 0; c < bench.netlist.num_cells(); ++c) {
    if (!bench.netlist.cell(c).fixed) {
      pl[c] = {rng.uniform(core.lx, core.hx), rng.uniform(core.ly, core.hy)};
    }
  }
  ab.run_all(pl);

  DetailedPlacer placer(bench.netlist, bench.design);
  placer.run_structured(pl, bench.truth, along_y);
  EXPECT_TRUE(eval::check_legality(bench.netlist, bench.design, pl).legal());
}

}  // namespace
}  // namespace dp::detail
