#include <gtest/gtest.h>

#include <set>

#include "dpgen/benchmarks.hpp"
#include "eval/metrics.hpp"

namespace dp::dpgen {
namespace {

using netlist::CellId;
using netlist::kInvalidId;

TEST(Generator, AdderShape) {
  Generator gen("t", 1);
  Bus a = gen.input_bus("a", 8);
  Bus b = gen.input_bus("b", 8);
  Bus s = gen.add_pipelined_adder("add", a, b, 2);
  EXPECT_EQ(s.size(), 8u);
  const Benchmark bench = gen.finish();
  ASSERT_EQ(bench.truth.groups.size(), 1u);
  const auto& g = bench.truth.groups[0];
  EXPECT_EQ(g.bits, 8u);
  EXPECT_EQ(g.stages, 6u);  // FA + sum reg + operand reg per pipe stage
  EXPECT_EQ(g.num_cells(), 8u * 6u);
}

TEST(Generator, AluShape) {
  Generator gen("t", 1);
  Bus a = gen.input_bus("a", 4);
  Bus b = gen.input_bus("b", 4);
  Bus y = gen.add_alu("alu", a, b);
  EXPECT_EQ(y.size(), 4u);
  const Benchmark bench = gen.finish();
  const auto& g = bench.truth.groups[0];
  EXPECT_EQ(g.bits, 4u);
  EXPECT_EQ(g.stages, 8u);
  EXPECT_EQ(g.num_cells(), 32u);
}

TEST(Generator, MultiplierHasRowZeroHoles) {
  Generator gen("t", 1);
  Bus a = gen.input_bus("a", 4);
  Bus b = gen.input_bus("b", 4);
  gen.add_multiplier("mul", a, b);
  const Benchmark bench = gen.finish();
  const auto& g = bench.truth.groups[0];
  EXPECT_EQ(g.bits, 4u);
  EXPECT_EQ(g.stages, 8u);
  // Row 0 has partial products only (no adders).
  for (std::size_t s = 1; s < g.stages; s += 2) {
    EXPECT_EQ(g.at(0, s), kInvalidId);
  }
  EXPECT_EQ(g.num_cells(), 16u + 12u);
}

TEST(Generator, ShifterRequiresPowerOfTwo) {
  Generator gen("t", 1);
  Bus a = gen.input_bus("a", 6);
  EXPECT_THROW(gen.add_shifter("sh", a), std::invalid_argument);
}

TEST(Generator, ShifterShape) {
  Generator gen("t", 1);
  Bus a = gen.input_bus("a", 8);
  gen.add_shifter("sh", a);
  const Benchmark bench = gen.finish();
  const auto& g = bench.truth.groups[0];
  EXPECT_EQ(g.bits, 8u);
  EXPECT_EQ(g.stages, 3u);  // log2(8)
}

TEST(Generator, RegisterFileGroups) {
  Generator gen("t", 1);
  Bus d = gen.input_bus("d", 4);
  gen.add_register_file("rf", d, 4);
  const Benchmark bench = gen.finish();
  // 4 word groups + 1 read-tree group.
  EXPECT_EQ(bench.truth.groups.size(), 5u);
}

TEST(Generator, TruthCellsAreUniqueAcrossGroups) {
  const Benchmark bench = make_benchmark("dp_alu32");
  std::set<CellId> seen;
  for (const auto& g : bench.truth.groups) {
    for (CellId c : g.cells) {
      if (c == kInvalidId) continue;
      EXPECT_TRUE(seen.insert(c).second) << "cell in two groups: " << c;
    }
  }
}

TEST(Generator, PadsFixedAndOutsideCore) {
  const Benchmark bench = make_benchmark("dp_add32");
  const geom::Rect& core = bench.design.core();
  for (CellId c = 0; c < bench.netlist.num_cells(); ++c) {
    if (!bench.netlist.cell(c).fixed) continue;
    const geom::Point p = bench.placement[c];
    EXPECT_FALSE(core.lx < p.x && p.x < core.hx && core.ly < p.y &&
                 p.y < core.hy)
        << "pad strictly inside core";
  }
}

TEST(Generator, EveryPortConnectedOnce) {
  const Benchmark bench = make_benchmark("dp_mul16");
  for (CellId c = 0; c < bench.netlist.num_cells(); ++c) {
    const auto& cell = bench.netlist.cell(c);
    std::set<std::uint16_t> ports;
    for (auto p : cell.pins) {
      EXPECT_TRUE(ports.insert(bench.netlist.pin(p).port).second);
    }
  }
}

TEST(Generator, ControlBlockAvoidsPadExplosion) {
  Generator with_ctl("a", 1);
  with_ctl.add_control_block("ctl", 64);
  Bus a1 = with_ctl.input_bus("a", 8);
  Bus b1 = with_ctl.input_bus("b", 8);
  with_ctl.add_alu("alu", a1, b1);
  const Benchmark bench1 = with_ctl.finish();

  Generator without("b", 1);
  Bus a2 = without.input_bus("a", 8);
  Bus b2 = without.input_bus("b", 8);
  without.add_alu("alu", a2, b2);
  const Benchmark bench2 = without.finish();

  auto pads = [](const Benchmark& b) {
    std::size_t n = 0;
    for (const auto& c : b.netlist.cells()) n += c.fixed ? 1 : 0;
    return n;
  };
  // With a control pool, the ALU's op/cin come from logic, not pads:
  // bench1 adds a 64-cell block but NOT the 4 control pads.
  EXPECT_EQ(pads(bench2), 8u + 8u + 4u);  // a, b, op0..op2 + cin
  EXPECT_EQ(pads(bench1), 8u + 8u + 2u);  // a, b, glue seed pads
}

class BenchmarkSuite : public ::testing::TestWithParam<std::string> {};

TEST_P(BenchmarkSuite, BuildsAndIsConsistent) {
  const Benchmark bench = make_benchmark(GetParam());
  EXPECT_GT(bench.netlist.num_cells(), 100u);
  EXPECT_GT(bench.netlist.num_nets(), 100u);
  EXPECT_EQ(bench.placement.size(), bench.netlist.num_cells());
  // All group cells exist and are movable.
  for (const auto& g : bench.truth.groups) {
    for (CellId c : g.cells) {
      if (c == kInvalidId) continue;
      ASSERT_LT(c, bench.netlist.num_cells());
      EXPECT_FALSE(bench.netlist.cell(c).fixed);
    }
  }
  // Nets have at most one driver.
  for (netlist::NetId n = 0; n < bench.netlist.num_nets(); ++n) {
    int drivers = 0;
    for (auto p : bench.netlist.net(n).pins) {
      drivers +=
          bench.netlist.pin(p).dir == netlist::PinDir::kOutput ? 1 : 0;
    }
    EXPECT_LE(drivers, 1) << bench.netlist.net(n).name;
  }
}

TEST_P(BenchmarkSuite, Deterministic) {
  const Benchmark a = make_benchmark(GetParam());
  const Benchmark b = make_benchmark(GetParam());
  EXPECT_EQ(a.netlist.num_cells(), b.netlist.num_cells());
  EXPECT_EQ(a.netlist.num_nets(), b.netlist.num_nets());
  EXPECT_EQ(a.netlist.num_pins(), b.netlist.num_pins());
  EXPECT_DOUBLE_EQ(eval::hpwl(a.netlist, a.placement),
                   eval::hpwl(b.netlist, b.placement));
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkSuite,
                         ::testing::ValuesIn(standard_benchmarks()));

TEST(Mix, FractionControlsDatapathShare) {
  const Benchmark lo = make_mix(0.25, 2000);
  const Benchmark hi = make_mix(0.75, 2000);
  const auto frac = [](const Benchmark& b) {
    return static_cast<double>(b.truth.total_cells()) /
           static_cast<double>(b.netlist.num_movable());
  };
  EXPECT_LT(frac(lo), frac(hi));
  EXPECT_NEAR(frac(lo), 0.25, 0.15);
  EXPECT_NEAR(frac(hi), 0.75, 0.15);
}

TEST(Scaled, ApproximatesTarget) {
  const Benchmark b = make_scaled(4000);
  EXPECT_NEAR(static_cast<double>(b.netlist.num_movable()), 4000.0, 800.0);
}

TEST(MakeBenchmark, UnknownNameThrows) {
  EXPECT_THROW(make_benchmark("nope"), std::invalid_argument);
}

}  // namespace
}  // namespace dp::dpgen
