#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/report_json.hpp"
#include "dpgen/benchmarks.hpp"
#include "eval/metrics.hpp"
#include "eval/svg.hpp"

namespace dp::eval {
namespace {

using netlist::CellFunc;
using netlist::CellId;
using netlist::Placement;

struct RowBench {
  RowBench() {
    netlist::NetlistBuilder b(netlist::standard_library());
    c1 = b.add_cell("c1", CellFunc::kInv);
    c2 = b.add_cell("c2", CellFunc::kInv);
    nl.emplace(b.take());
    design.emplace(geom::Rect{0, 0, 10, 4}, 1.0, 0.25);
  }
  CellId c1, c2;
  std::optional<netlist::Netlist> nl;
  std::optional<netlist::Design> design;

  double w() const { return nl->cell_width(c1); }
};

TEST(Legality, CleanPlacementPasses) {
  RowBench rb;
  Placement pl(2);
  pl[rb.c1] = {0.25 + rb.w() / 2, 0.5};
  pl[rb.c2] = {2.0 + rb.w() / 2, 1.5};
  EXPECT_TRUE(check_legality(*rb.nl, *rb.design, pl).legal());
}

TEST(Legality, DetectsOverlap) {
  RowBench rb;
  Placement pl(2);
  pl[rb.c1] = {1.0 + rb.w() / 2, 0.5};
  pl[rb.c2] = {1.25 + rb.w() / 2, 0.5};  // overlaps c1 (width 0.75)
  const auto rep = check_legality(*rb.nl, *rb.design, pl);
  EXPECT_EQ(rep.overlaps, 1u);
  EXPECT_GT(rep.total_overlap_area, 0.0);
}

TEST(Legality, DetectsOffRow) {
  RowBench rb;
  Placement pl(2);
  pl[rb.c1] = {1.0 + rb.w() / 2, 0.7};  // not on a row boundary
  pl[rb.c2] = {5.0 + rb.w() / 2, 1.5};
  EXPECT_GT(check_legality(*rb.nl, *rb.design, pl).off_row, 0u);
}

TEST(Legality, DetectsOffSite) {
  RowBench rb;
  Placement pl(2);
  pl[rb.c1] = {1.1 + rb.w() / 2, 0.5};  // 1.1 not a site multiple
  pl[rb.c2] = {5.0 + rb.w() / 2, 1.5};
  EXPECT_GT(check_legality(*rb.nl, *rb.design, pl).off_site, 0u);
}

TEST(OverlapPairs, WideCellOverlapsTwoNeighbors) {
  netlist::NetlistBuilder b(netlist::standard_library());
  // FA is 10 sites (2.5 units) wide; the two INVs (0.75) tuck under it.
  const CellId fa = b.add_cell("fa", CellFunc::kFullAdder);
  const CellId i1 = b.add_cell("i1", CellFunc::kInv);
  const CellId i2 = b.add_cell("i2", CellFunc::kInv);
  const auto nl = b.take();
  const netlist::Design design(geom::Rect{0, 0, 10, 4}, 1.0, 0.25);
  Placement pl(3);
  pl[fa] = {1.25, 0.5};  // spans [0, 2.5]
  pl[i1] = {0.5 + 0.375, 0.5};
  pl[i2] = {1.5 + 0.375, 0.5};
  const auto pairs = overlap_pairs(nl, design, pl);
  EXPECT_EQ(pairs.size(), 2u);
  const auto rep = check_legality(nl, design, pl);
  EXPECT_EQ(rep.overlaps, 2u);
}

TEST(OverlapPairs, RespectsPairCap) {
  netlist::NetlistBuilder b(netlist::standard_library());
  for (int i = 0; i < 10; ++i) {
    b.add_cell("c" + std::to_string(i), CellFunc::kInv);
  }
  const auto nl = b.take();
  const netlist::Design design(geom::Rect{0, 0, 10, 4}, 1.0, 0.25);
  Placement pl(10, geom::Point{1.0, 0.5});  // all stacked: 45 pairs
  bool truncated = true;
  EXPECT_EQ(overlap_pairs(nl, design, pl, 1e-6, 100000, &truncated).size(),
            45u);
  EXPECT_FALSE(truncated) << "complete sweep must clear the flag";
  EXPECT_EQ(overlap_pairs(nl, design, pl, 1e-6, 7, &truncated).size(), 7u);
  EXPECT_TRUE(truncated);
  // A cap just above the true pair count never fires.
  EXPECT_EQ(overlap_pairs(nl, design, pl, 1e-6, 46, &truncated).size(), 45u);
  EXPECT_FALSE(truncated);
  // check_legality carries the flag through its report.
  EXPECT_FALSE(check_legality(nl, design, pl).overlap_truncated);
}

TEST(Legality, DetectsOutOfCore) {
  RowBench rb;
  Placement pl(2);
  pl[rb.c1] = {-5.0, 0.5};
  pl[rb.c2] = {5.0 + rb.w() / 2, 1.5};
  EXPECT_GT(check_legality(*rb.nl, *rb.design, pl).out_of_core, 0u);
}

TEST(AlignmentScore, PerfectArrayScoresZero) {
  dpgen::Benchmark bench = dpgen::make_benchmark("dp_add32");
  Placement pl = bench.placement;
  const auto& g = bench.truth.groups[0];
  for (std::size_t bit = 0; bit < g.bits; ++bit) {
    for (std::size_t s = 0; s < g.stages; ++s) {
      const CellId c = g.at(bit, s);
      if (c != netlist::kInvalidId) {
        pl[c] = {static_cast<double>(s) * 3.0,
                 static_cast<double>(bit) * 1.0};
      }
    }
  }
  netlist::StructureAnnotation one;
  one.groups.push_back(g);
  EXPECT_NEAR(alignment_score(bench.netlist, pl, one).rms_misalignment, 0.0,
              1e-12);
}

TEST(AlignmentScore, ScrambledArrayScoresHigh) {
  dpgen::Benchmark bench = dpgen::make_benchmark("dp_add32");
  Placement pl = bench.placement;
  util::Rng rng(8);
  for (CellId c = 0; c < bench.netlist.num_cells(); ++c) {
    pl[c] = {rng.uniform(0, 30), rng.uniform(0, 30)};
  }
  EXPECT_GT(alignment_score(bench.netlist, pl, bench.truth).rms_misalignment,
            2.0);
}

TEST(DatapathHpwl, SubsetOfTotal) {
  const dpgen::Benchmark bench = dpgen::make_benchmark("mix50");
  const double total = hpwl(bench.netlist, bench.placement);
  const double dp = datapath_hpwl(bench.netlist, bench.placement, bench.truth);
  EXPECT_LE(dp, total + 1e-9);
  EXPECT_GT(dp, 0.0);
}

TEST(DensityOverflow, ZeroWithoutCells) {
  netlist::NetlistBuilder b(netlist::standard_library());
  b.add_cell("p", CellFunc::kPad, true);
  const auto nl = b.take();
  const netlist::Design design(geom::Rect{0, 0, 4, 4}, 1.0, 0.25);
  Placement pl(1);
  EXPECT_DOUBLE_EQ(density_overflow(nl, design, pl, 1.0), 0.0);
}

std::string read_and_remove(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  std::remove(path.c_str());
  return content;
}

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(Svg, LayerElementCountsMatchDesign) {
  const dpgen::Benchmark bench = dpgen::make_benchmark("dp_add32");
  const std::string path = ::testing::TempDir() + "svg_layers.svg";
  write_svg(path, bench.netlist, bench.design, bench.placement,
            &bench.truth);
  const std::string content = read_and_remove(path);

  EXPECT_EQ(count_occurrences(content, "class='core'"), 1u);
  EXPECT_EQ(count_occurrences(content, "class='heat'"), 0u)
      << "no heatmap requested";
  // One rect per movable cell; datapath members carry the extra class.
  std::size_t movable = 0, datapath = 0;
  std::vector<bool> in_group(bench.netlist.num_cells(), false);
  for (const auto& g : bench.truth.groups) {
    for (netlist::CellId c : g.cells) {
      if (c != netlist::kInvalidId) in_group[c] = true;
    }
  }
  for (netlist::CellId c = 0; c < bench.netlist.num_cells(); ++c) {
    if (bench.netlist.cell(c).fixed) continue;
    ++movable;
    if (in_group[c]) ++datapath;
  }
  EXPECT_EQ(count_occurrences(content, "class='cell"), movable);
  EXPECT_EQ(count_occurrences(content, "class='cell dp'"), datapath);
  EXPECT_GT(datapath, 0u);
}

TEST(Svg, HeatmapLayerTogglesOneRectPerBin) {
  const dpgen::Benchmark bench = dpgen::make_benchmark("dp_add32");
  const std::string path = ::testing::TempDir() + "svg_heat.svg";
  SvgOptions options;
  options.heatmap_bins = 4;
  options.heatmap.assign(16, 0.5);
  options.heatmap[5] = 2.0;  // a hotspot renders like any other bin
  write_svg(path, bench.netlist, bench.design, bench.placement, options);
  const std::string content = read_and_remove(path);
  EXPECT_EQ(count_occurrences(content, "class='heat'"), 16u);
  EXPECT_EQ(count_occurrences(content, "class='core'"), 1u);

  // Undersized heatmap data: the layer is skipped rather than read out
  // of bounds.
  options.heatmap.resize(15);
  write_svg(path, bench.netlist, bench.design, bench.placement, options);
  EXPECT_EQ(count_occurrences(read_and_remove(path), "class='heat'"), 0u);
}

TEST(Svg, CriticalPathLayerTogglesOnPoints) {
  const dpgen::Benchmark bench = dpgen::make_benchmark("dp_add32");
  const std::string path = ::testing::TempDir() + "svg_critpath.svg";
  SvgOptions options;
  options.critical_path = {{1.0, 1.0}, {5.0, 2.0}, {9.0, 3.0}};
  write_svg(path, bench.netlist, bench.design, bench.placement, options);
  const std::string content = read_and_remove(path);
  // One polyline plus two endpoint markers.
  EXPECT_EQ(count_occurrences(content, "class='critpath'"), 3u);
  EXPECT_EQ(count_occurrences(content, "<polyline"), 1u);

  // A single point is not a path; the layer stays off.
  options.critical_path.resize(1);
  write_svg(path, bench.netlist, bench.design, bench.placement, options);
  EXPECT_EQ(count_occurrences(read_and_remove(path), "class='critpath'"),
            0u);
}

TEST(ReportJson, SchemaVersionLeadsAndEscapesHold) {
  // json_escape must neutralize everything JSON forbids in a string.
  EXPECT_EQ(core::json_escape("plain"), "plain");
  EXPECT_EQ(core::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(core::json_escape("l1\nl2\tt\rr"), "l1\\nl2\\tt\\rr");
  EXPECT_EQ(core::json_escape(std::string("x\x01y\x1f", 4)),
            "x\\u0001y\\u001f");
  EXPECT_EQ(core::json_escape("\b\f"), "\\b\\f");

  core::PlaceReport report;
  const std::string json = core::report_to_json(report);
  EXPECT_EQ(json.rfind("{\"schema_version\":1,", 0), 0u)
      << "schema_version must be the first key: " << json;
  EXPECT_NE(json.find("\"timing\":null"), std::string::npos)
      << "timing not measured -> null section";
}

TEST(ReportJson, TimingSectionCarriesCriticalPathNames) {
  const dpgen::Benchmark bench = dpgen::make_benchmark("dp_add32");
  core::PlaceReport report;
  report.timing_measured = true;
  report.timing.wns = -0.5;
  report.timing.critical_path = {{0, 0.0}, {1, 1.5}};
  const std::string json = core::report_to_json(report, &bench.netlist);
  EXPECT_NE(json.find("\"wns\":-0.5"), std::string::npos);
  EXPECT_NE(json.find("\"cell\":"), std::string::npos);
  EXPECT_NE(json.find("\"port\":"), std::string::npos);
  // Without a netlist the trace still serializes, ids only.
  const std::string bare = core::report_to_json(report);
  EXPECT_NE(bare.find("\"critical_path\":[{\"pin\":0"), std::string::npos);
  EXPECT_EQ(bare.find("\"cell\":"), std::string::npos);
}

}  // namespace
}  // namespace dp::eval
