#include <gtest/gtest.h>

#include <set>

#include "dpgen/benchmarks.hpp"
#include "extract/extractor.hpp"
#include "extract/metrics.hpp"
#include "extract/signature.hpp"

namespace dp::extract {
namespace {

using netlist::CellId;
using netlist::kInvalidId;

TEST(Signature, EquivalentBitsShareSignature) {
  // Interior FA cells of a ripple-carry stage are structurally identical.
  dpgen::Generator gen("t", 50);
  auto a = gen.input_bus("a", 8);
  auto b = gen.input_bus("b", 8);
  gen.add_pipelined_adder("add", a, b, 1);
  const auto bench = gen.finish();
  const auto sig = cell_signatures(bench.netlist);
  const auto& g = bench.truth.groups[0];
  // Interior bits (not 0 or last, away from boundary effects).
  const auto s3 = sig[g.at(3, 0)];
  const auto s4 = sig[g.at(4, 0)];
  EXPECT_EQ(s3, s4);
  // An FA and a DFF never share a signature.
  EXPECT_NE(sig[g.at(3, 0)], sig[g.at(3, 1)]);
}

TEST(Signature, Deterministic) {
  const auto bench = dpgen::make_benchmark("dp_add32");
  EXPECT_EQ(cell_signatures(bench.netlist), cell_signatures(bench.netlist));
}

TEST(Signature, FanoutLimitMakesControlRailsNeutral) {
  // Signatures must not blow up on designs with big control nets.
  const auto bench = dpgen::make_benchmark("dp_rf16x32");
  const auto sig = cell_signatures(bench.netlist);
  EXPECT_EQ(sig.size(), bench.netlist.num_cells());
}

TEST(Extractor, CleanAdderFullyRecovered) {
  dpgen::Generator gen("t", 51);
  auto a = gen.input_bus("a", 16);
  auto b = gen.input_bus("b", 16);
  gen.add_pipelined_adder("add", a, b, 2);
  const auto bench = gen.finish();
  const auto result = extract_structures(bench.netlist);
  const auto q =
      compare_extraction(bench.netlist, result.annotation, bench.truth);
  EXPECT_DOUBLE_EQ(q.precision, 1.0);
  EXPECT_GT(q.recall, 0.7);
  EXPECT_GT(q.lane_accuracy, 0.95);
}

TEST(Extractor, PureGlueYieldsNothing) {
  dpgen::Generator gen("t", 52);
  gen.add_glue("g", 800, {});
  const auto bench = gen.finish();
  const auto result = extract_structures(bench.netlist);
  EXPECT_TRUE(result.annotation.groups.empty());
}

TEST(Extractor, NoCellInTwoGroups) {
  const auto bench = dpgen::make_benchmark("mix50");
  const auto result = extract_structures(bench.netlist);
  std::set<CellId> seen;
  for (const auto& g : result.annotation.groups) {
    for (CellId c : g.cells) {
      if (c == kInvalidId) continue;
      EXPECT_TRUE(seen.insert(c).second) << "duplicated cell " << c;
    }
  }
}

TEST(Extractor, NoCellTwiceWithinGroup) {
  const auto bench = dpgen::make_benchmark("dp_alu32");
  const auto result = extract_structures(bench.netlist);
  for (const auto& g : result.annotation.groups) {
    std::set<CellId> seen;
    for (CellId c : g.cells) {
      if (c == kInvalidId) continue;
      EXPECT_TRUE(seen.insert(c).second)
          << "cell " << c << " twice in group " << g.name;
    }
  }
}

TEST(Extractor, NeverClaimsFixedCells) {
  const auto bench = dpgen::make_benchmark("dp_add32");
  const auto result = extract_structures(bench.netlist);
  for (const auto& g : result.annotation.groups) {
    for (CellId c : g.cells) {
      if (c != kInvalidId) {
        EXPECT_FALSE(bench.netlist.cell(c).fixed);
      }
    }
  }
}

TEST(Extractor, Deterministic) {
  const auto bench = dpgen::make_benchmark("dp_mul16");
  const auto r1 = extract_structures(bench.netlist);
  const auto r2 = extract_structures(bench.netlist);
  ASSERT_EQ(r1.annotation.groups.size(), r2.annotation.groups.size());
  for (std::size_t i = 0; i < r1.annotation.groups.size(); ++i) {
    EXPECT_EQ(r1.annotation.groups[i].cells, r2.annotation.groups[i].cells);
  }
}

TEST(Extractor, MinBitsRespected) {
  const auto bench = dpgen::make_benchmark("dp_add32");
  ExtractOptions opt;
  opt.min_bits = 8;
  const auto result = extract_structures(bench.netlist, opt);
  for (const auto& g : result.annotation.groups) {
    EXPECT_GE(g.bits, 8u);
  }
}

TEST(Extractor, MinStagesRespected) {
  const auto bench = dpgen::make_benchmark("dp_add32");
  ExtractOptions opt;
  opt.min_stages = 3;
  const auto result = extract_structures(bench.netlist, opt);
  for (const auto& g : result.annotation.groups) {
    EXPECT_GE(g.stages, 3u);
  }
}

class SuiteExtraction : public ::testing::TestWithParam<std::string> {};

TEST_P(SuiteExtraction, PerfectPrecisionHighRecall) {
  const auto bench = dpgen::make_benchmark(GetParam());
  const auto result = extract_structures(bench.netlist);
  const auto q =
      compare_extraction(bench.netlist, result.annotation, bench.truth);
  if (bench.truth.groups.empty()) {
    EXPECT_EQ(q.cells_extracted, 0u);
    return;
  }
  EXPECT_DOUBLE_EQ(q.precision, 1.0) << GetParam();
  EXPECT_GT(q.recall, 0.7) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, SuiteExtraction,
                         ::testing::ValuesIn(dpgen::standard_benchmarks()));

TEST(Metrics, PerfectMatchScoresOne) {
  const auto bench = dpgen::make_benchmark("dp_add32");
  const auto q =
      compare_extraction(bench.netlist, bench.truth, bench.truth);
  EXPECT_DOUBLE_EQ(q.precision, 1.0);
  EXPECT_DOUBLE_EQ(q.recall, 1.0);
  EXPECT_DOUBLE_EQ(q.lane_accuracy, 1.0);
}

TEST(Metrics, EmptyExtractionScoresZeroRecall) {
  const auto bench = dpgen::make_benchmark("dp_add32");
  const netlist::StructureAnnotation empty;
  const auto q = compare_extraction(bench.netlist, empty, bench.truth);
  EXPECT_DOUBLE_EQ(q.recall, 0.0);
  EXPECT_EQ(q.groups_found, 0u);
}

}  // namespace
}  // namespace dp::extract
