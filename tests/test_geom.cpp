#include <gtest/gtest.h>

#include "geom/point.hpp"
#include "geom/rect.hpp"
#include "util/prng.hpp"

namespace dp::geom {
namespace {

TEST(Point, Arithmetic) {
  const Point a{1.0, 2.0}, b{3.0, -1.0};
  EXPECT_EQ(a + b, (Point{4.0, 1.0}));
  EXPECT_EQ(b - a, (Point{2.0, -3.0}));
  EXPECT_EQ(a * 2.0, (Point{2.0, 4.0}));
}

TEST(Point, Manhattan) {
  EXPECT_DOUBLE_EQ(manhattan({0, 0}, {3, 4}), 7.0);
  EXPECT_DOUBLE_EQ(manhattan({-1, -1}, {-1, -1}), 0.0);
}

TEST(Rect, DefaultIsEmpty) {
  const Rect r;
  EXPECT_TRUE(r.empty());
  EXPECT_DOUBLE_EQ(r.area(), 0.0);
  EXPECT_DOUBLE_EQ(r.half_perimeter(), 0.0);
}

TEST(Rect, ExpandByPoints) {
  Rect r;
  r.expand(Point{1, 2});
  EXPECT_FALSE(r.empty());
  EXPECT_DOUBLE_EQ(r.area(), 0.0);
  r.expand(Point{4, 6});
  EXPECT_DOUBLE_EQ(r.width(), 3.0);
  EXPECT_DOUBLE_EQ(r.height(), 4.0);
  EXPECT_DOUBLE_EQ(r.half_perimeter(), 7.0);
}

TEST(Rect, ExpandByEmptyRectIsNoop) {
  Rect r{0, 0, 2, 2};
  r.expand(Rect{});
  EXPECT_DOUBLE_EQ(r.area(), 4.0);
}

TEST(Rect, FromCenter) {
  const Rect r = Rect::from_center({5, 5}, 2.0, 4.0);
  EXPECT_DOUBLE_EQ(r.lx, 4.0);
  EXPECT_DOUBLE_EQ(r.hy, 7.0);
  EXPECT_EQ(r.center(), (Point{5, 5}));
}

TEST(Rect, OverlapAreaDisjoint) {
  const Rect a{0, 0, 1, 1}, b{2, 2, 3, 3};
  EXPECT_DOUBLE_EQ(a.overlap_area(b), 0.0);
  EXPECT_FALSE(a.intersects(b));
}

TEST(Rect, OverlapAreaPartial) {
  const Rect a{0, 0, 2, 2}, b{1, 1, 3, 3};
  EXPECT_DOUBLE_EQ(a.overlap_area(b), 1.0);
  EXPECT_TRUE(a.intersects(b));
}

TEST(Rect, OverlapAreaTouchingIsZero) {
  const Rect a{0, 0, 1, 1}, b{1, 0, 2, 1};
  EXPECT_DOUBLE_EQ(a.overlap_area(b), 0.0);
  EXPECT_FALSE(a.intersects(b));
}

TEST(Rect, ContainsBoundary) {
  const Rect r{0, 0, 2, 2};
  EXPECT_TRUE(r.contains({0, 0}));
  EXPECT_TRUE(r.contains({2, 2}));
  EXPECT_FALSE(r.contains({2.001, 1}));
}

TEST(Rect, ClampInside) {
  const Rect r{0, 0, 10, 10};
  EXPECT_EQ(r.clamp({5, 5}), (Point{5, 5}));
  EXPECT_EQ(r.clamp({-3, 20}), (Point{0, 10}));
}

TEST(RectProperty, OverlapIsSymmetricAndBounded) {
  util::Rng rng(2026);
  for (int i = 0; i < 200; ++i) {
    const Rect a{rng.uniform(0, 5), rng.uniform(0, 5), rng.uniform(5, 10),
                 rng.uniform(5, 10)};
    const Rect b{rng.uniform(0, 5), rng.uniform(0, 5), rng.uniform(5, 10),
                 rng.uniform(5, 10)};
    const double ab = a.overlap_area(b);
    EXPECT_DOUBLE_EQ(ab, b.overlap_area(a));
    EXPECT_LE(ab, std::min(a.area(), b.area()) + 1e-12);
    EXPECT_GE(ab, 0.0);
  }
}

TEST(RectProperty, ExpandContainsBothInputs) {
  util::Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    Rect a{rng.uniform(0, 4), rng.uniform(0, 4), rng.uniform(4, 8),
           rng.uniform(4, 8)};
    const Rect b{rng.uniform(0, 4), rng.uniform(0, 4), rng.uniform(4, 8),
                 rng.uniform(4, 8)};
    const Rect a0 = a;
    a.expand(b);
    EXPECT_LE(a.lx, std::min(a0.lx, b.lx));
    EXPECT_GE(a.hx, std::max(a0.hx, b.hx));
  }
}

}  // namespace
}  // namespace dp::geom
