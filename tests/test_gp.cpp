#include <gtest/gtest.h>

#include "dpgen/benchmarks.hpp"
#include "eval/metrics.hpp"
#include "gp/global_placer.hpp"
#include "gp/quadratic.hpp"

namespace dp::gp {
namespace {

using netlist::CellId;
using netlist::Placement;

struct SmallBench {
  SmallBench() {
    dpgen::Generator gen("t", 21);
    gen.add_control_block("ctl", 40);
    auto a = gen.input_bus("a", 8);
    auto b = gen.input_bus("b", 8);
    auto s = gen.add_pipelined_adder("add", a, b, 2);
    gen.output_bus("s", s);
    bench.emplace(gen.finish());
  }
  std::optional<dpgen::Benchmark> bench;
};

TEST(VarMap, FreeModeOneVarPerMovable) {
  SmallBench sb;
  const VarMap vars(sb.bench->netlist);
  EXPECT_EQ(vars.num_vars(), sb.bench->netlist.num_movable());
  for (const CellId c : vars.movable_cells()) {
    EXPECT_FALSE(sb.bench->netlist.cell(c).fixed);
    EXPECT_EQ(vars.cell(vars.var(c)), c);
  }
}

TEST(VarMap, ScatterGatherRoundTrip) {
  SmallBench sb;
  const VarMap vars(sb.bench->netlist);
  Placement pl = sb.bench->placement;
  const auto v = vars.gather(pl);
  Placement pl2(pl.size());
  vars.scatter(v, pl2);
  for (const CellId c : vars.movable_cells()) {
    EXPECT_DOUBLE_EQ(pl2[c].x, pl[c].x);
    EXPECT_DOUBLE_EQ(pl2[c].y, pl[c].y);
  }
}

TEST(VarMap, RigidBodySharesVariable) {
  SmallBench sb;
  const auto& nl = sb.bench->netlist;
  // First three movable cells form one body.
  std::vector<CellId> body;
  for (CellId c = 0; c < nl.num_cells() && body.size() < 3; ++c) {
    if (!nl.cell(c).fixed) body.push_back(c);
  }
  Placement pl = sb.bench->placement;
  pl[body[1]] = {pl[body[0]].x + 2.0, pl[body[0]].y};
  pl[body[2]] = {pl[body[0]].x + 5.0, pl[body[0]].y + 1.0};
  const VarMap vars(nl, pl, {body});
  EXPECT_EQ(vars.num_vars(), nl.num_movable() - 2);
  EXPECT_EQ(vars.var(body[0]), vars.var(body[1]));
  EXPECT_EQ(vars.var(body[0]), vars.var(body[2]));

  // Moving the shared variable moves all members rigidly.
  auto v = vars.gather(pl);
  v[vars.var(body[0])] += 10.0;
  Placement moved = pl;
  vars.scatter(v, moved);
  EXPECT_DOUBLE_EQ(moved[body[1]].x - moved[body[0]].x, 2.0);
  EXPECT_DOUBLE_EQ(moved[body[2]].x - moved[body[0]].x, 5.0);
  EXPECT_DOUBLE_EQ(moved[body[0]].x, pl[body[0]].x + 10.0);
}

TEST(VarMap, SubsetModeFreezesOthers) {
  SmallBench sb;
  const auto& nl = sb.bench->netlist;
  std::vector<bool> mask(nl.num_cells(), false);
  CellId chosen = netlist::kInvalidId;
  for (CellId c = 0; c < nl.num_cells(); ++c) {
    if (!nl.cell(c).fixed) {
      mask[c] = true;
      chosen = c;
      break;
    }
  }
  const VarMap vars(nl, mask);
  EXPECT_EQ(vars.num_vars(), 1u);
  EXPECT_TRUE(vars.is_movable(chosen));
}

TEST(Quadratic, PullsCellsIntoCore) {
  SmallBench sb;
  const auto& nl = sb.bench->netlist;
  const auto& design = sb.bench->design;
  VarMap vars(nl);
  Placement pl = sb.bench->placement;
  quadratic_initial_placement(nl, design, vars, pl);
  const geom::Rect& core = design.core();
  for (const CellId c : vars.movable_cells()) {
    EXPECT_GE(pl[c].x, core.lx);
    EXPECT_LE(pl[c].x, core.hx);
    EXPECT_GE(pl[c].y, core.ly);
    EXPECT_LE(pl[c].y, core.hy);
  }
}

TEST(Quadratic, ImprovesHpwlFromRandomStart) {
  SmallBench sb;
  const auto& nl = sb.bench->netlist;
  VarMap vars(nl);
  Placement pl = sb.bench->placement;
  util::Rng rng(5);
  const geom::Rect& core = sb.bench->design.core();
  for (const CellId c : vars.movable_cells()) {
    pl[c] = {rng.uniform(core.lx, core.hx), rng.uniform(core.ly, core.hy)};
  }
  const double before = eval::hpwl(nl, pl);
  quadratic_initial_placement(nl, sb.bench->design, vars, pl);
  EXPECT_LT(eval::hpwl(nl, pl), before);
}

TEST(GlobalPlacer, ReducesOverflowBelowStop) {
  SmallBench sb;
  GpOptions opt;
  opt.stop_overflow = 0.15;
  opt.max_outer = 30;
  GlobalPlacer placer(sb.bench->netlist, sb.bench->design, opt);
  Placement pl = sb.bench->placement;
  const GpResult res = placer.place(pl);
  EXPECT_LE(res.final_overflow, 0.25);
  EXPECT_FALSE(res.trace.empty());
  EXPECT_GT(res.total_cg_iterations, 0u);
}

TEST(GlobalPlacer, KeepsCellsInCore) {
  SmallBench sb;
  GlobalPlacer placer(sb.bench->netlist, sb.bench->design);
  Placement pl = sb.bench->placement;
  placer.place(pl);
  const geom::Rect& core = sb.bench->design.core();
  for (const CellId c : placer.vars().movable_cells()) {
    EXPECT_GE(pl[c].x, core.lx - 1e-9);
    EXPECT_LE(pl[c].x, core.hx + 1e-9);
  }
}

TEST(GlobalPlacer, Deterministic) {
  SmallBench sb;
  Placement p1 = sb.bench->placement, p2 = sb.bench->placement;
  GlobalPlacer(sb.bench->netlist, sb.bench->design).place(p1);
  GlobalPlacer(sb.bench->netlist, sb.bench->design).place(p2);
  EXPECT_DOUBLE_EQ(eval::hpwl(sb.bench->netlist, p1),
                   eval::hpwl(sb.bench->netlist, p2));
}

TEST(GlobalPlacer, ExtraTermWeightCallbackRuns) {
  SmallBench sb;
  // A pull-everything-to-origin term; with a huge weight it must visibly
  // drag the placement toward the corner.
  class Pull final : public ObjectiveTerm {
   public:
    double eval(const Placement& pl, const VarMap& vars,
                std::span<double> gx, std::span<double> gy) const override {
      double f = 0.0;
      for (const CellId c : vars.movable_cells()) {
        f += pl[c].x * pl[c].x + pl[c].y * pl[c].y;
        gx[vars.var(c)] += 2 * pl[c].x;
        gy[vars.var(c)] += 2 * pl[c].y;
      }
      return f;
    }
  };
  Pull pull;
  int calls = 0;
  GpOptions opt;
  opt.max_outer = 6;
  GlobalPlacer placer(sb.bench->netlist, sb.bench->design, opt);
  placer.add_term({&pull, [&calls](const TermContext&) {
                     ++calls;
                     return 1e3;
                   }});
  Placement pl = sb.bench->placement;
  placer.place(pl);
  EXPECT_GT(calls, 0);
  // Center of gravity pulled toward the origin corner.
  double cx = 0.0;
  std::size_t n = 0;
  for (const CellId c : placer.vars().movable_cells()) {
    cx += pl[c].x;
    ++n;
  }
  cx /= static_cast<double>(n);
  EXPECT_LT(cx, sb.bench->design.core().center().x);
}

TEST(GlobalPlacer, TraceIsMonotoneInLambda) {
  SmallBench sb;
  GlobalPlacer placer(sb.bench->netlist, sb.bench->design);
  Placement pl = sb.bench->placement;
  const GpResult res = placer.place(pl);
  for (std::size_t i = 1; i < res.trace.size(); ++i) {
    EXPECT_GE(res.trace[i].lambda, res.trace[i - 1].lambda);
    EXPECT_LE(res.trace[i].gamma, res.trace[i - 1].gamma + 1e-12);
  }
}

}  // namespace
}  // namespace dp::gp
