#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "dpgen/benchmarks.hpp"
#include "eval/incremental_hpwl.hpp"
#include "eval/metrics.hpp"
#include "util/prng.hpp"

namespace dp::eval {
namespace {

using netlist::CellId;
using netlist::NetId;
using netlist::PinId;
using netlist::Placement;

/// Reference incident-net HPWL: the exact sum the seed detailer computed
/// from scratch for every candidate move (sorted unique incident nets,
/// weighted net_hpwl, ascending net-id order).
double ref_incident(const netlist::Netlist& nl, const Placement& pl,
                    const std::vector<CellId>& cells) {
  std::vector<NetId> nets;
  for (CellId c : cells) {
    for (PinId p : nl.cell(c).pins) nets.push_back(nl.pin(p).net);
  }
  std::sort(nets.begin(), nets.end());
  nets.erase(std::unique(nets.begin(), nets.end()), nets.end());
  double total = 0.0;
  for (NetId n : nets) total += nl.net(n).weight * net_hpwl(nl, n, pl);
  return total;
}

TEST(IncrementalHpwl, ConstructionMatchesFullEvalBitwise) {
  dpgen::Benchmark bench = dpgen::make_benchmark("dp_add32");
  IncrementalHpwl eng(bench.netlist, bench.placement);
  EXPECT_EQ(eng.total(), hpwl(bench.netlist, bench.placement));
  for (NetId n = 0; n < bench.netlist.num_nets(); ++n) {
    EXPECT_EQ(eng.net_hpwl(n), net_hpwl(bench.netlist, n, bench.placement))
        << "net " << n;
  }
}

TEST(IncrementalHpwl, RollbackIsANoop) {
  dpgen::Benchmark bench = dpgen::make_benchmark("dp_add32");
  Placement pl = bench.placement;
  IncrementalHpwl eng(bench.netlist, pl);
  const double before = eng.total();
  const Placement snapshot = pl;
  std::vector<CellId> cells{0, 1, 2};
  eng.trial_shift(cells, 3.25, -1.5);
  eng.rollback();
  EXPECT_EQ(eng.total(), before);
  EXPECT_EQ(eng.resync_total(), hpwl(bench.netlist, pl));
  for (CellId c = 0; c < bench.netlist.num_cells(); ++c) {
    EXPECT_EQ(pl[c].x, snapshot[c].x);
    EXPECT_EQ(pl[c].y, snapshot[c].y);
  }
}

// Thousands of seeded random trial/commit/rollback cycles against the
// from-scratch reference: every trial's before and after must match the
// seed computation bitwise, the running total must track the committed
// deltas exactly, and a periodic resync must agree with eval::hpwl to
// 0 ulp.
TEST(IncrementalHpwl, RandomizedMovesCommitsRollbacks) {
  dpgen::Benchmark bench = dpgen::make_benchmark("dp_add32");
  const netlist::Netlist& nl = bench.netlist;
  Placement pl = bench.placement;
  IncrementalHpwl eng(nl, pl);
  util::Rng rng(0xD5A11CE5ULL);
  const geom::Rect core = bench.design.core();

  double running = eng.total();
  ASSERT_EQ(running, hpwl(nl, pl));

  std::vector<CellId> cells;
  std::vector<geom::Point> centers;
  Placement scratch;
  std::size_t commits = 0;
  for (int iter = 0; iter < 4000; ++iter) {
    cells.clear();
    const std::size_t k = 1 + rng.index(4);
    while (cells.size() < k) {
      const CellId c = static_cast<CellId>(rng.index(nl.num_cells()));
      if (nl.cell(c).fixed) continue;
      if (std::find(cells.begin(), cells.end(), c) != cells.end()) continue;
      cells.push_back(c);
    }

    const double expect_before = ref_incident(nl, pl, cells);
    scratch = pl;
    IncrementalHpwl::Trial t;
    if (rng.chance(0.5)) {
      centers.clear();
      for (std::size_t j = 0; j < cells.size(); ++j) {
        centers.push_back({rng.uniform(core.lx, core.hx),
                           rng.uniform(core.ly, core.hy)});
        scratch[cells[j]] = centers.back();
      }
      t = eng.trial_place(cells, centers);
    } else {
      const double dx = rng.uniform(-5.0, 5.0);
      const double dy = rng.uniform(-5.0, 5.0);
      for (CellId c : cells) {
        scratch[c].x += dx;
        scratch[c].y += dy;
      }
      t = eng.trial_shift(cells, dx, dy);
    }
    const double expect_after = ref_incident(nl, scratch, cells);
    ASSERT_EQ(t.before, expect_before) << "iter " << iter;
    ASSERT_EQ(t.after, expect_after) << "iter " << iter;

    if (rng.chance(0.5)) {
      eng.commit();
      ++commits;
      running += t.after - t.before;  // the same update commit applies
      ASSERT_EQ(eng.total(), running) << "iter " << iter;
      // The committed coordinates must equal the staged ones bitwise.
      for (CellId c : cells) {
        ASSERT_EQ(pl[c].x, scratch[c].x);
        ASSERT_EQ(pl[c].y, scratch[c].y);
      }
    } else {
      eng.rollback();
      ASSERT_EQ(eng.total(), running) << "iter " << iter;
    }

    if (commits > 0 && commits % 100 == 0) {
      // After resync the total is bitwise identical to a full recompute.
      running = eng.resync_total();
      ASSERT_EQ(running, hpwl(nl, pl)) << "iter " << iter;
    }
  }
  EXPECT_GT(commits, 100u);
  EXPECT_EQ(eng.resync_total(), hpwl(nl, pl));
}

TEST(IncrementalHpwl, RefreshAbsorbsExternalMutation) {
  dpgen::Benchmark bench = dpgen::make_benchmark("dp_add32");
  const netlist::Netlist& nl = bench.netlist;
  Placement pl = bench.placement;
  IncrementalHpwl eng(nl, pl);
  util::Rng rng(7);
  const geom::Rect core = bench.design.core();

  std::vector<CellId> cells;
  for (int round = 0; round < 50; ++round) {
    cells.clear();
    const std::size_t k = 1 + rng.index(8);
    while (cells.size() < k) {
      const CellId c = static_cast<CellId>(rng.index(nl.num_cells()));
      if (std::find(cells.begin(), cells.end(), c) != cells.end()) continue;
      cells.push_back(c);
    }
    // Mutate the placement behind the engine's back (as a legalizer
    // does), then tell it which cells moved.
    for (CellId c : cells) {
      pl[c] = {rng.uniform(core.lx, core.hx), rng.uniform(core.ly, core.hy)};
    }
    eng.refresh(cells);
    ASSERT_EQ(eng.resync_total(), hpwl(nl, pl)) << "round " << round;
  }
}

TEST(IncrementalHpwl, IncidentHpwlMatchesReference) {
  dpgen::Benchmark bench = dpgen::make_benchmark("dp_add32");
  const netlist::Netlist& nl = bench.netlist;
  Placement pl = bench.placement;
  IncrementalHpwl eng(nl, pl);
  util::Rng rng(11);
  std::vector<CellId> cells;
  for (int round = 0; round < 100; ++round) {
    cells.clear();
    const std::size_t k = 1 + rng.index(6);
    while (cells.size() < k) {
      const CellId c = static_cast<CellId>(rng.index(nl.num_cells()));
      if (std::find(cells.begin(), cells.end(), c) != cells.end()) continue;
      cells.push_back(c);
    }
    EXPECT_EQ(eng.incident_hpwl(cells), ref_incident(nl, pl, cells));
  }
}

}  // namespace
}  // namespace dp::eval
