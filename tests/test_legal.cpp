#include <gtest/gtest.h>

#include "dpgen/benchmarks.hpp"
#include "eval/metrics.hpp"
#include "legal/abacus.hpp"
#include "legal/repair.hpp"
#include "legal/rowmap.hpp"
#include "legal/structure_legal.hpp"
#include "legal/tetris.hpp"
#include "util/prng.hpp"

namespace dp::legal {
namespace {

using netlist::CellId;
using netlist::Placement;

TEST(RowMap, InitialSegmentsSpanRows) {
  const netlist::Design design(geom::Rect{0, 0, 10, 4}, 1.0, 0.25);
  const RowMap rows(design);
  ASSERT_EQ(rows.num_rows(), 4u);
  ASSERT_EQ(rows.segments(0).size(), 1u);
  EXPECT_DOUBLE_EQ(rows.free_width(0), 10.0);
}

TEST(RowMap, BlockSplitsSegment) {
  const netlist::Design design(geom::Rect{0, 0, 10, 2}, 1.0, 0.25);
  RowMap rows(design);
  rows.block(0, 4.0, 6.0);
  ASSERT_EQ(rows.segments(0).size(), 2u);
  EXPECT_DOUBLE_EQ(rows.segments(0)[0].hx, 4.0);
  EXPECT_DOUBLE_EQ(rows.segments(0)[1].lx, 6.0);
  EXPECT_DOUBLE_EQ(rows.free_width(0), 8.0);
  EXPECT_DOUBLE_EQ(rows.free_width(1), 10.0);
}

TEST(RowMap, BlockAtEdgeTrims) {
  const netlist::Design design(geom::Rect{0, 0, 10, 1}, 1.0, 0.25);
  RowMap rows(design);
  rows.block(0, 0.0, 3.0);
  ASSERT_EQ(rows.segments(0).size(), 1u);
  EXPECT_DOUBLE_EQ(rows.segments(0)[0].lx, 3.0);
}

TEST(RowMap, OverlappingBlocksMerge) {
  const netlist::Design design(geom::Rect{0, 0, 10, 1}, 1.0, 0.25);
  RowMap rows(design);
  rows.block(0, 2.0, 5.0);
  rows.block(0, 4.0, 7.0);
  EXPECT_DOUBLE_EQ(rows.free_width(0), 5.0);
}

struct RandomBench {
  explicit RandomBench(std::uint64_t seed, std::size_t glue = 400,
                       double utilization = 0.7) {
    dpgen::Generator gen("t", seed);
    gen.add_glue("g", glue, {});
    bench.emplace(gen.finish(utilization));
  }
  std::optional<dpgen::Benchmark> bench;

  Placement random_start(std::uint64_t seed) const {
    Placement pl = bench->placement;
    util::Rng rng(seed);
    const geom::Rect& core = bench->design.core();
    for (CellId c = 0; c < bench->netlist.num_cells(); ++c) {
      if (!bench->netlist.cell(c).fixed) {
        pl[c] = {rng.uniform(core.lx, core.hx),
                 rng.uniform(core.ly, core.hy)};
      }
    }
    return pl;
  }
};

class LegalizerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LegalizerProperty, TetrisProducesLegalPlacement) {
  // Tetris wastes the gaps behind its fill tails, so give it headroom;
  // at high utilization the pipeline backstops it with repair_legality.
  RandomBench rb(GetParam(), 400, 0.6);
  Placement pl = rb.random_start(GetParam() * 31 + 7);
  TetrisLegalizer tetris(rb.bench->netlist, rb.bench->design);
  const LegalizeStats stats = tetris.run_all(pl);
  EXPECT_EQ(stats.cells_failed, 0u);
  const auto rep =
      eval::check_legality(rb.bench->netlist, rb.bench->design, pl);
  EXPECT_TRUE(rep.legal()) << "ov=" << rep.overlaps << " row=" << rep.off_row
                           << " site=" << rep.off_site
                           << " out=" << rep.out_of_core;
}

TEST_P(LegalizerProperty, AbacusProducesLegalPlacement) {
  RandomBench rb(GetParam());
  Placement pl = rb.random_start(GetParam() * 13 + 5);
  AbacusLegalizer abacus(rb.bench->netlist, rb.bench->design);
  const LegalizeStats stats = abacus.run_all(pl);
  EXPECT_EQ(stats.cells_failed, 0u);
  EXPECT_TRUE(
      eval::check_legality(rb.bench->netlist, rb.bench->design, pl).legal());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LegalizerProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(Abacus, SmallerDisplacementThanTetrisOnSpreadInput) {
  RandomBench rb(42);
  // Near-legal start: quadratic-ish spread.
  Placement pl = rb.random_start(99);
  Placement pl2 = pl;
  TetrisLegalizer tetris(rb.bench->netlist, rb.bench->design);
  AbacusLegalizer abacus(rb.bench->netlist, rb.bench->design);
  const auto st = tetris.run_all(pl);
  const auto sa = abacus.run_all(pl2);
  EXPECT_LT(sa.avg_displacement(), st.avg_displacement() * 1.5);
}

TEST(Abacus, RespectsBlockedSegments) {
  RandomBench rb(7, 100);
  Placement pl = rb.random_start(3);
  RowMap rows(rb.bench->design);
  // Block the left half of every row.
  const geom::Rect& core = rb.bench->design.core();
  for (std::size_t r = 0; r < rows.num_rows(); ++r) {
    rows.block(r, core.lx, core.center().x);
  }
  std::vector<CellId> cells;
  for (CellId c = 0; c < rb.bench->netlist.num_cells(); ++c) {
    if (!rb.bench->netlist.cell(c).fixed) cells.push_back(c);
  }
  AbacusLegalizer abacus(rb.bench->netlist, rb.bench->design);
  std::vector<CellId> failed;
  abacus.run(pl, cells, rows, &failed);
  for (CellId c : cells) {
    bool is_failed = false;
    for (CellId f : failed) is_failed |= (f == c);
    if (is_failed) continue;
    EXPECT_GE(pl[c].x - rb.bench->netlist.cell_width(c) / 2.0,
              core.center().x - 1e-6)
        << rb.bench->netlist.cell(c).name;
  }
}

TEST(Repair, FixesInjectedViolations) {
  RandomBench rb(11);
  Placement pl = rb.random_start(1);
  TetrisLegalizer tetris(rb.bench->netlist, rb.bench->design);
  tetris.run_all(pl);
  ASSERT_TRUE(
      eval::check_legality(rb.bench->netlist, rb.bench->design, pl).legal());

  // Break it: pile 20 cells onto one spot and knock one off-grid.
  util::Rng rng(2);
  const geom::Point spot = rb.bench->design.core().center();
  std::size_t broken = 0;
  for (CellId c = 0; c < rb.bench->netlist.num_cells() && broken < 20; ++c) {
    if (rb.bench->netlist.cell(c).fixed) continue;
    pl[c] = {spot.x + rng.uniform(-0.1, 0.1), spot.y};
    ++broken;
  }
  ASSERT_FALSE(
      eval::check_legality(rb.bench->netlist, rb.bench->design, pl).legal());

  const std::size_t repaired =
      repair_legality(rb.bench->netlist, rb.bench->design, pl);
  EXPECT_GT(repaired, 0u);
  EXPECT_TRUE(
      eval::check_legality(rb.bench->netlist, rb.bench->design, pl).legal());
}

TEST(Repair, NoopOnLegalInput) {
  RandomBench rb(13);
  Placement pl = rb.random_start(1);
  AbacusLegalizer(rb.bench->netlist, rb.bench->design).run_all(pl);
  const Placement before = pl;
  EXPECT_EQ(repair_legality(rb.bench->netlist, rb.bench->design, pl), 0u);
  for (CellId c = 0; c < rb.bench->netlist.num_cells(); ++c) {
    EXPECT_DOUBLE_EQ(pl[c].x, before[c].x);
  }
}

TEST(StructureLegalizer, ProducesLegalBlocksForAdder) {
  dpgen::Benchmark bench = dpgen::make_benchmark("dp_add32");
  // Use ground truth as the structure; start from the parked placement.
  std::vector<bool> along_y(bench.truth.groups.size(), true);
  StructureLegalizer legalizer(bench.netlist, bench.design, bench.truth,
                               along_y);
  Placement pl = bench.placement;
  const StructureLegalizeStats stats = legalizer.run(pl);
  EXPECT_EQ(stats.rest.cells_failed, 0u);
  EXPECT_TRUE(
      eval::check_legality(bench.netlist, bench.design, pl).legal());

  // Every slice of every block-placed group sits on one row, aligned.
  const auto score = eval::alignment_score(bench.netlist, pl, bench.truth);
  EXPECT_LT(score.rms_misalignment, 0.5);
}

}  // namespace
}  // namespace dp::legal
