#include <gtest/gtest.h>

#include "netlist/design.hpp"
#include "netlist/netlist.hpp"
#include "netlist/stats.hpp"

namespace dp::netlist {
namespace {

TEST(Library, StandardLibraryHasAllFunctions) {
  const Library& lib = standard_library();
  EXPECT_GE(lib.size(), 18u);
  EXPECT_NO_THROW(lib.by_func(CellFunc::kFullAdder));
  EXPECT_NO_THROW(lib.by_func(CellFunc::kPad));
  EXPECT_THROW(lib.by_func(CellFunc::kGeneric), std::out_of_range);
}

TEST(Library, CellGeometrySane) {
  const Library& lib = standard_library();
  for (CellTypeId i = 0; i < lib.size(); ++i) {
    const CellType& t = lib.type(i);
    EXPECT_GT(t.width, 0.0) << t.name;
    EXPECT_GT(t.height, 0.0) << t.name;
    // Widths are whole numbers of sites.
    const double sites = t.width / kSiteWidth;
    EXPECT_NEAR(sites, std::round(sites), 1e-9) << t.name;
  }
}

TEST(Library, OutputPinMarked) {
  const Library& lib = standard_library();
  const CellType& inv = lib.type(lib.by_func(CellFunc::kInv));
  ASSERT_GE(inv.output_pin, 0);
  EXPECT_EQ(inv.pins[static_cast<std::size_t>(inv.output_pin)].dir,
            PinDir::kOutput);
  EXPECT_EQ(inv.num_inputs(), 1u);
}

TEST(Library, FullAdderHasTwoOutputs) {
  const Library& lib = standard_library();
  const CellType& fa = lib.type(lib.by_func(CellFunc::kFullAdder));
  int outputs = 0;
  for (const auto& p : fa.pins) outputs += p.dir == PinDir::kOutput ? 1 : 0;
  EXPECT_EQ(outputs, 2);
}

class BuilderTest : public ::testing::Test {
 protected:
  NetlistBuilder builder_{standard_library()};
};

TEST_F(BuilderTest, AddCellAndConnect) {
  const CellId inv = builder_.add_cell("u1", CellFunc::kInv);
  const NetId in = builder_.add_net("in");
  const NetId out = builder_.add_net("out");
  builder_.connect(inv, "A", in);
  builder_.connect(inv, "Y", out);
  const Netlist nl = builder_.take();
  EXPECT_EQ(nl.num_cells(), 1u);
  EXPECT_EQ(nl.num_nets(), 2u);
  EXPECT_EQ(nl.num_pins(), 2u);
  EXPECT_EQ(nl.cell(inv).pins.size(), 2u);
  EXPECT_EQ(nl.net(out).pins.size(), 1u);
}

TEST_F(BuilderTest, DoubleConnectThrows) {
  const CellId inv = builder_.add_cell("u1", CellFunc::kInv);
  const NetId n = builder_.add_net("n");
  builder_.connect(inv, "A", n);
  EXPECT_THROW(builder_.connect(inv, "A", n), std::logic_error);
}

TEST_F(BuilderTest, UnknownPortThrows) {
  const CellId inv = builder_.add_cell("u1", CellFunc::kInv);
  const NetId n = builder_.add_net("n");
  EXPECT_THROW(builder_.connect(inv, "NOPE", n), std::out_of_range);
  EXPECT_THROW(builder_.connect(inv, 99, n), std::out_of_range);
}

TEST_F(BuilderTest, DriverFound) {
  const CellId a = builder_.add_cell("a", CellFunc::kInv);
  const CellId b = builder_.add_cell("b", CellFunc::kInv);
  const NetId n = builder_.add_net("n");
  builder_.connect(a, "Y", n);
  builder_.connect(b, "A", n);
  const Netlist nl = builder_.take();
  const PinId drv = nl.driver(n);
  ASSERT_NE(drv, kInvalidId);
  EXPECT_EQ(nl.pin(drv).cell, a);
}

TEST_F(BuilderTest, MovableAreaExcludesFixed) {
  builder_.add_cell("pad", CellFunc::kPad, /*fixed=*/true);
  const CellId inv = builder_.add_cell("u", CellFunc::kInv);
  const Netlist nl = builder_.take();
  EXPECT_EQ(nl.num_movable(), 1u);
  EXPECT_DOUBLE_EQ(nl.movable_area(), nl.cell_area(inv));
}

TEST_F(BuilderTest, PinPositionUsesOffsets) {
  const CellId inv = builder_.add_cell("u", CellFunc::kInv);
  const NetId n = builder_.add_net("n");
  const PinId p = builder_.connect(inv, "A", n);
  const Netlist nl = builder_.take();
  Placement pl(1);
  pl[inv] = {10.0, 20.0};
  const geom::Point pos = nl.pin_position(p, pl);
  EXPECT_DOUBLE_EQ(pos.x, 10.0 + nl.pin(p).offset_x);
  EXPECT_DOUBLE_EQ(pos.y, 20.0 + nl.pin(p).offset_y);
}

TEST_F(BuilderTest, ConnectDirOverridesDirection) {
  const CellId pad = builder_.add_cell("pad", CellFunc::kPad, true);
  const NetId n = builder_.add_net("n");
  const PinId p = builder_.connect_dir(pad, 0, n, PinDir::kOutput);
  const Netlist nl = builder_.take();
  EXPECT_EQ(nl.pin(p).dir, PinDir::kOutput);
  EXPECT_EQ(nl.driver(n), p);
}

TEST(Design, RowsCoverCore) {
  const Design d(geom::Rect{0, 0, 10, 5}, 1.0, 0.25);
  EXPECT_EQ(d.num_rows(), 5u);
  EXPECT_DOUBLE_EQ(d.row(0).y, 0.0);
  EXPECT_DOUBLE_EQ(d.row(4).y, 4.0);
}

TEST(Design, DegenerateThrows) {
  EXPECT_THROW(Design(geom::Rect{0, 0, 10, 0.5}, 1.0, 0.25),
               std::invalid_argument);
  EXPECT_THROW(Design(geom::Rect{}, 1.0, 0.25), std::invalid_argument);
}

TEST(Design, NearestRowClamped) {
  const Design d(geom::Rect{0, 0, 10, 5}, 1.0, 0.25);
  EXPECT_EQ(d.nearest_row(-100.0), 0u);
  EXPECT_EQ(d.nearest_row(100.0), 4u);
  EXPECT_EQ(d.nearest_row(2.5), 2u);
}

TEST(Design, SnapX) {
  const Design d(geom::Rect{0, 0, 10, 5}, 1.0, 0.25);
  EXPECT_DOUBLE_EQ(d.snap_x(0.3), 0.25);
  EXPECT_DOUBLE_EQ(d.snap_x(0.4), 0.5);
}

TEST(Design, ForNetlistMeetsUtilization) {
  NetlistBuilder b(standard_library());
  for (int i = 0; i < 100; ++i) {
    b.add_cell("c" + std::to_string(i), CellFunc::kNand2);
  }
  const Netlist nl = b.take();
  const Design d = Design::for_netlist(nl, 0.7);
  const double util = nl.movable_area() / d.core().area();
  EXPECT_LE(util, 0.75);
  EXPECT_GE(util, 0.5);
}

TEST(Design, ForNetlistRejectsBadUtilization) {
  NetlistBuilder b(standard_library());
  b.add_cell("c", CellFunc::kInv);
  const Netlist nl = b.take();
  EXPECT_THROW(Design::for_netlist(nl, 0.0), std::invalid_argument);
  EXPECT_THROW(Design::for_netlist(nl, 1.5), std::invalid_argument);
}

TEST(Stats, ComputeStatsCounts) {
  NetlistBuilder b(standard_library());
  const CellId a = b.add_cell("a", CellFunc::kInv);
  const CellId p = b.add_cell("p", CellFunc::kPad, true);
  const NetId n = b.add_net("n");
  b.connect(a, "Y", n);
  b.connect_dir(p, 0, n, PinDir::kInput);
  const Netlist nl = b.take();
  const NetlistStats s = compute_stats(nl);
  EXPECT_EQ(s.num_cells, 2u);
  EXPECT_EQ(s.num_movable, 1u);
  EXPECT_EQ(s.num_fixed, 1u);
  EXPECT_EQ(s.num_pins, 2u);
  EXPECT_EQ(s.max_net_degree, 2u);
}

}  // namespace
}  // namespace dp::netlist
