#include <gtest/gtest.h>

#include <cmath>

#include "gp/optimizer.hpp"

namespace dp::gp {
namespace {

/// f(x) = sum (x_i - t_i)^2 -- convex bowl with known minimum.
class Bowl final : public Objective {
 public:
  explicit Bowl(std::vector<double> target) : target_(std::move(target)) {}
  double eval(std::span<const double> v, std::span<double> g) override {
    double f = 0.0;
    for (std::size_t i = 0; i < v.size(); ++i) {
      const double d = v[i] - target_[i];
      f += d * d;
      g[i] = 2 * d;
    }
    return f;
  }

 private:
  std::vector<double> target_;
};

/// 2-D Rosenbrock: the classic narrow-valley stress test.
class Rosenbrock final : public Objective {
 public:
  double eval(std::span<const double> v, std::span<double> g) override {
    const double x = v[0], y = v[1];
    const double f = 100 * (y - x * x) * (y - x * x) + (1 - x) * (1 - x);
    g[0] = -400 * x * (y - x * x) - 2 * (1 - x);
    g[1] = 200 * (y - x * x);
    return f;
  }
};

TEST(Cg, SolvesQuadraticBowl) {
  Bowl bowl({3.0, -2.0, 7.0});
  std::vector<double> v{0.0, 0.0, 0.0};
  CgOptions opt;
  opt.max_iters = 200;
  opt.step_ref = 1.0;
  opt.rel_tol = 1e-12;
  const CgResult res = minimize_cg(bowl, v, opt);
  EXPECT_NEAR(v[0], 3.0, 1e-3);
  EXPECT_NEAR(v[1], -2.0, 1e-3);
  EXPECT_NEAR(v[2], 7.0, 1e-3);
  EXPECT_NEAR(res.final_value, 0.0, 1e-5);
}

TEST(Cg, ReducesRosenbrock) {
  Rosenbrock f;
  std::vector<double> v{-1.2, 1.0};
  CgOptions opt;
  opt.max_iters = 500;
  opt.step_ref = 0.1;
  opt.rel_tol = 1e-14;
  const CgResult res = minimize_cg(f, v, opt);
  EXPECT_LT(res.final_value, 1.0);  // start value is ~24.2
}

TEST(Cg, EmptyProblemIsNoop) {
  Bowl bowl({});
  std::vector<double> v;
  const CgResult res = minimize_cg(bowl, v, {});
  EXPECT_EQ(res.iterations, 0u);
}

TEST(Cg, AlreadyOptimalStopsQuickly) {
  Bowl bowl({1.0, 1.0});
  std::vector<double> v{1.0, 1.0};
  CgOptions opt;
  opt.max_iters = 100;
  const CgResult res = minimize_cg(bowl, v, opt);
  EXPECT_LE(res.iterations, 3u);
  EXPECT_NEAR(res.final_value, 0.0, 1e-12);
}

TEST(Cg, MonotoneNonIncreasing) {
  // The Armijo line search guarantees each accepted step decreases f.
  Bowl bowl({5.0, 5.0, 5.0, 5.0});
  std::vector<double> v{0, 0, 0, 0};
  CgOptions opt;
  opt.max_iters = 1;
  double prev = 100.0;  // f(0) = 100
  for (int i = 0; i < 20; ++i) {
    const CgResult res = minimize_cg(bowl, v, opt);
    EXPECT_LE(res.final_value, prev + 1e-12);
    prev = res.final_value;
  }
}

TEST(Cg, CountsEvaluations) {
  Bowl bowl({2.0});
  std::vector<double> v{0.0};
  CgOptions opt;
  opt.max_iters = 10;
  const CgResult res = minimize_cg(bowl, v, opt);
  EXPECT_GE(res.evaluations, res.iterations);
}

}  // namespace
}  // namespace dp::gp
