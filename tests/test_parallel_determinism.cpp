// Determinism of the parallel gradient kernels: the chunked evaluation
// uses fixed chunk boundaries and ordered reductions, so value, gradient,
// and the entire placement trajectory must be BITWISE identical for every
// thread count (ISSUE 2 acceptance: same seed, 1 thread vs N threads ->
// identical final HPWL on dp_add32).
#include <gtest/gtest.h>

#include <memory>

#include "dpgen/benchmarks.hpp"
#include "eval/metrics.hpp"
#include "gp/density.hpp"
#include "gp/global_placer.hpp"
#include "gp/wirelength.hpp"
#include "util/thread_pool.hpp"

namespace dp::gp {
namespace {

using netlist::Placement;

const dpgen::Benchmark& add32() {
  static const dpgen::Benchmark b = dpgen::make_benchmark("dp_add32");
  return b;
}

struct Grads {
  double value = 0.0;
  std::vector<double> gx, gy;
};

Grads eval_wirelength(std::size_t threads, WirelengthModel model) {
  const auto& b = add32();
  const VarMap vars(b.netlist);
  SmoothWirelength wl(b.netlist, model, 1.5);
  wl.set_thread_pool(std::make_shared<util::ThreadPool>(threads));
  Grads g;
  g.gx.assign(vars.num_vars(), 0.0);
  g.gy.assign(vars.num_vars(), 0.0);
  g.value = wl.eval(b.placement, vars, g.gx, g.gy);
  return g;
}

Grads eval_density(std::size_t threads) {
  const auto& b = add32();
  const VarMap vars(b.netlist);
  DensityPenalty den(b.netlist, b.design);
  den.set_thread_pool(std::make_shared<util::ThreadPool>(threads));
  Grads g;
  g.gx.assign(vars.num_vars(), 0.0);
  g.gy.assign(vars.num_vars(), 0.0);
  g.value = den.eval(b.placement, vars, g.gx, g.gy);
  return g;
}

void expect_bitwise_equal(const Grads& a, const Grads& b) {
  EXPECT_EQ(a.value, b.value);
  ASSERT_EQ(a.gx.size(), b.gx.size());
  for (std::size_t i = 0; i < a.gx.size(); ++i) {
    ASSERT_EQ(a.gx[i], b.gx[i]) << "gx[" << i << "]";
    ASSERT_EQ(a.gy[i], b.gy[i]) << "gy[" << i << "]";
  }
}

TEST(ParallelDeterminism, WirelengthKernelBitwiseAcrossThreadCounts) {
  for (const auto model : {WirelengthModel::kWa, WirelengthModel::kLse}) {
    const Grads serial = eval_wirelength(1, model);
    expect_bitwise_equal(serial, eval_wirelength(2, model));
    expect_bitwise_equal(serial, eval_wirelength(4, model));
  }
}

TEST(ParallelDeterminism, DensityKernelBitwiseAcrossThreadCounts) {
  const Grads serial = eval_density(1);
  expect_bitwise_equal(serial, eval_density(2));
  expect_bitwise_equal(serial, eval_density(4));
}

TEST(ParallelDeterminism, NullGradientValueMatchesEval) {
  // value() shares the CSR kernel with eval() in null-gradient mode, so
  // the two paths must agree exactly.
  const auto& b = add32();
  const VarMap vars(b.netlist);
  for (const auto model : {WirelengthModel::kWa, WirelengthModel::kLse}) {
    SmoothWirelength wl(b.netlist, model, 1.5);
    std::vector<double> gx(vars.num_vars(), 0.0), gy(vars.num_vars(), 0.0);
    EXPECT_EQ(wl.value(b.placement), wl.eval(b.placement, vars, gx, gy));
  }
}

TEST(ParallelDeterminism, GlobalPlacerFinalHpwlIdentical1VsN) {
  const auto& b = add32();
  GpOptions opt;
  opt.max_outer = 12;  // enough outers to compound any divergence

  opt.num_threads = 1;
  Placement pl1 = b.placement;
  const GpResult r1 = GlobalPlacer(b.netlist, b.design, opt).place(pl1);

  opt.num_threads = 4;
  Placement pl4 = b.placement;
  const GpResult r4 = GlobalPlacer(b.netlist, b.design, opt).place(pl4);

  EXPECT_EQ(r1.final_hpwl, r4.final_hpwl);
  EXPECT_EQ(r1.final_overflow, r4.final_overflow);
  EXPECT_EQ(r1.total_cg_iterations, r4.total_cg_iterations);
  ASSERT_EQ(pl1.size(), pl4.size());
  for (std::size_t c = 0; c < pl1.size(); ++c) {
    ASSERT_EQ(pl1[c].x, pl4[c].x) << "cell " << c;
    ASSERT_EQ(pl1[c].y, pl4[c].y) << "cell " << c;
  }
}

TEST(ParallelDeterminism, ProfileCountsEvaluations) {
  const auto& b = add32();
  GpOptions opt;
  opt.max_outer = 4;
  Placement pl = b.placement;
  const GpResult res = GlobalPlacer(b.netlist, b.design, opt).place(pl);
  // Every CompositeObjective evaluation hits both terms.
  EXPECT_EQ(res.profile.wirelength.calls, res.profile.density.calls);
  EXPECT_GE(res.profile.wirelength.calls, res.total_evaluations);
  EXPECT_GT(res.profile.line_search.calls, 0u);
  EXPECT_LE(res.profile.line_search.calls, res.total_evaluations);
  EXPECT_GE(res.profile.wirelength.seconds, 0.0);
  EXPECT_FALSE(res.profile.to_string().empty());
}

}  // namespace
}  // namespace dp::gp
