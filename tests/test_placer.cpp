#include <gtest/gtest.h>

#include "core/structure_placer.hpp"
#include "dpgen/benchmarks.hpp"

namespace dp::core {
namespace {

using netlist::Placement;

struct Pipe {
  explicit Pipe(const std::string& name)
      : bench(dpgen::make_benchmark(name)) {}

  PlaceReport run(PlacerConfig config) {
    StructurePlacer placer(bench.netlist, bench.design, config);
    pl = bench.placement;
    return placer.place(pl, &bench.truth);
  }

  dpgen::Benchmark bench;
  Placement pl;
};

TEST(StructurePlacer, BaselineIsLegalAndFinite) {
  Pipe pipe("dp_add32");
  PlacerConfig c;
  c.structure_aware = false;
  const PlaceReport rep = pipe.run(c);
  EXPECT_TRUE(rep.legality.legal());
  EXPECT_GT(rep.hpwl_final, 0.0);
  EXPECT_TRUE(rep.structure.groups.empty());
  EXPECT_GT(rep.gp_result.trace.size(), 0u);
}

TEST(StructurePlacer, GentleFlowLegalAndAligned) {
  Pipe pipe("dp_add32");
  PlacerConfig c;
  c.structure_aware = true;
  c.legalization = LegalizationMode::kGentle;
  const PlaceReport rep = pipe.run(c);
  EXPECT_TRUE(rep.legality.legal());
  EXPECT_FALSE(rep.structure.groups.empty());
  // The whole point: far better alignment than the baseline's ~4 rows.
  EXPECT_LT(rep.alignment.rms_misalignment, 1.5);
}

TEST(StructurePlacer, StructuredFlowPerfectAlignment) {
  Pipe pipe("dp_add32");
  PlacerConfig c;
  c.structure_aware = true;
  c.legalization = LegalizationMode::kStructured;
  const PlaceReport rep = pipe.run(c);
  EXPECT_TRUE(rep.legality.legal());
  EXPECT_LT(rep.alignment.rms_misalignment, 0.2);
  EXPECT_GT(rep.legal_blocks, 0u);
}

TEST(StructurePlacer, BaselineBeatsNothingOnAlignment) {
  Pipe pipe("dp_add32");
  PlacerConfig base;
  base.structure_aware = false;
  const PlaceReport rb = pipe.run(base);
  const double base_mis =
      eval::alignment_score(pipe.bench.netlist, pipe.pl, pipe.bench.truth)
          .rms_misalignment;

  PlacerConfig sa;
  sa.structure_aware = true;
  const PlaceReport rs = pipe.run(sa);
  EXPECT_LT(rs.alignment.rms_misalignment, base_mis);
  (void)rb;
}

TEST(StructurePlacer, Deterministic) {
  Pipe pipe("dp_add32");
  PlacerConfig c;
  const PlaceReport r1 = pipe.run(c);
  const PlaceReport r2 = pipe.run(c);
  EXPECT_DOUBLE_EQ(r1.hpwl_final, r2.hpwl_final);
}

TEST(StructurePlacer, TruthOracleAblationWorks) {
  Pipe pipe("dp_add32");
  PlacerConfig c;
  c.use_truth_structure = true;
  const PlaceReport rep = pipe.run(c);
  EXPECT_TRUE(rep.legality.legal());
  // The structure used is (a partition of) the truth annotation.
  EXPECT_EQ(rep.structure.total_cells(), pipe.bench.truth.total_cells());
}

TEST(StructurePlacer, ReportsStageTimings) {
  Pipe pipe("dp_add32");
  const PlaceReport rep = pipe.run({});
  EXPECT_GT(rep.t_gp, 0.0);
  EXPECT_GE(rep.t_total, rep.t_gp);
  EXPECT_GT(rep.hpwl_gp, 0.0);
  EXPECT_GT(rep.hpwl_legal, 0.0);
}

TEST(StructurePlacer, AlignmentWeightZeroStillLegal) {
  Pipe pipe("dp_add32");
  PlacerConfig c;
  c.alignment_weight = 0.0;
  const PlaceReport rep = pipe.run(c);
  EXPECT_TRUE(rep.legality.legal());
}

TEST(StructurePlacer, TimingMeasureOnlyReportsWithoutSteering) {
  Pipe pipe("dp_add32");
  PlacerConfig c;
  c.timing.measure = true;
  const PlaceReport rep = pipe.run(c);
  EXPECT_TRUE(rep.timing_measured);
  EXPECT_GT(rep.timing.endpoints, 0u);
  EXPECT_GT(rep.timing.max_arrival, 0.0);
  EXPECT_GT(rep.timing_gp.max_arrival, 0.0);
  EXPECT_FALSE(rep.timing.critical_path.empty());
  EXPECT_EQ(rep.timing_reweights, 0u) << "measure-only must not steer";

  // Measurement is an observer: the placement matches the untimed run.
  Pipe ref("dp_add32");
  const PlaceReport untimed = ref.run({});
  EXPECT_DOUBLE_EQ(rep.hpwl_final, untimed.hpwl_final);
}

TEST(StructurePlacer, TimingDrivenReweightsAndGuards) {
  Pipe pipe("dp_add32");
  PlacerConfig c;
  c.timing.driven = true;
  const PlaceReport rep = pipe.run(c);
  EXPECT_TRUE(rep.legality.legal());
  EXPECT_TRUE(rep.timing_measured);
  EXPECT_GT(rep.timing_reweights, 0u);
  // With an auto period the proxy is WNS = 0 by construction; driven
  // mode should not blow up wirelength while chasing it.
  Pipe ref("dp_add32");
  const PlaceReport untimed = ref.run({});
  EXPECT_LT(rep.hpwl_final, untimed.hpwl_final * 1.1);
}

TEST(StructurePlacer, PureGlueSaEqualsBaseline) {
  Pipe pipe("glue");
  PlacerConfig base;
  base.structure_aware = false;
  const PlaceReport rb = pipe.run(base);
  PlacerConfig sa;
  sa.structure_aware = true;
  const PlaceReport rs = pipe.run(sa);
  // No structure found, so the flows are byte-identical.
  EXPECT_DOUBLE_EQ(rb.hpwl_final, rs.hpwl_final);
}

class SuitePlacement : public ::testing::TestWithParam<std::string> {};

TEST_P(SuitePlacement, DefaultFlowLegalOnEveryBenchmark) {
  Pipe pipe(GetParam());
  const PlaceReport rep = pipe.run({});
  EXPECT_TRUE(rep.legality.legal())
      << GetParam() << ": ov=" << rep.legality.overlaps
      << " row=" << rep.legality.off_row << " out="
      << rep.legality.out_of_core;
  EXPECT_GT(rep.hpwl_final, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, SuitePlacement,
    ::testing::Values("dp_add32", "dp_mul16", "dp_shift32", "mix50"));

}  // namespace
}  // namespace dp::core
