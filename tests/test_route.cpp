// route::CongestionMap (RUDY + pin density) and the cell-inflation
// feedback: hand-computed rasterization, demand conservation, bitwise
// determinism across thread counts (same discipline as the GP kernels),
// report metric sanity, and inflation eligibility/clamping.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "core/structure_placer.hpp"
#include "dpgen/benchmarks.hpp"
#include "route/congestion.hpp"
#include "route/inflation.hpp"
#include "util/thread_pool.hpp"

namespace dp::route {
namespace {

using netlist::CellFunc;
using netlist::CellId;
using netlist::NetId;
using netlist::NetlistBuilder;
using netlist::Placement;

double sum(std::span<const double> v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

/// Two inverters on one weighted net inside a 10x10 core.
struct TwoCellFixture {
  explicit TwoCellFixture(double weight = 1.0)
      : builder(netlist::standard_library()) {
    a = builder.add_cell("a", CellFunc::kInv);
    b = builder.add_cell("b", CellFunc::kInv);
    const NetId n = builder.add_net("n", weight);
    builder.connect(a, "Y", n);
    builder.connect(b, "A", n);
    nl.emplace(builder.take());
    design.emplace(geom::Rect{0, 0, 10, 10}, 1.0, 0.25);
  }

  geom::Rect pin_box(const Placement& pl) const {
    geom::Rect box;
    for (netlist::PinId p = 0; p < nl->num_pins(); ++p) {
      box.expand(nl->pin_position(p, pl));
    }
    return box;
  }

  NetlistBuilder builder;
  CellId a, b;
  std::optional<netlist::Netlist> nl;
  std::optional<netlist::Design> design;
};

TEST(CongestionMap, TotalDemandConservedInsideCore) {
  TwoCellFixture f(2.0);
  Placement pl(2);
  pl[f.a] = {2.0, 3.0};
  pl[f.b] = {7.0, 6.0};  // bbox well inside the core: nothing clips away
  CongestionMap map(*f.nl, *f.design, {});
  map.build(pl);

  const geom::Rect box = f.pin_box(pl);
  const CongestionOptions opt;  // defaults used above
  const double surcharge =
      static_cast<double>(f.nl->num_pins()) * opt.pin_weight / 2.0;
  EXPECT_NEAR(sum(map.demand_h()), 2.0 * box.width() + surcharge, 1e-9);
  EXPECT_NEAR(sum(map.demand_v()), 2.0 * box.height() + surcharge, 1e-9);
  EXPECT_DOUBLE_EQ(sum(map.pin_density()),
                   static_cast<double>(f.nl->num_pins()));
}

TEST(CongestionMap, HandComputedCornerToCornerSplit) {
  // Pins far outside the core: the expanded bbox clips to exactly the
  // core, so on a 2x2 grid every bin receives wire/4, and each corner
  // bin additionally gets one pin's surcharge.
  TwoCellFixture f;
  Placement pl(2);
  pl[f.a] = {-100.0, -100.0};
  pl[f.b] = {100.0, 100.0};
  CongestionOptions opt;
  opt.bins_per_side = 2;
  CongestionMap map(*f.nl, *f.design, opt);
  map.build(pl);

  const geom::Rect box = f.pin_box(pl);
  const double wire_x = box.width();  // weight 1
  const double half_pin = opt.pin_weight / 2.0;
  const auto d = map.demand_h();
  // Row-major: (0,0), (1,0), (0,1), (1,1). One pin lands in bin (0,0),
  // the other in (1,1); the off-diagonal bins are pure RUDY quarters.
  EXPECT_DOUBLE_EQ(d[1], wire_x / 4.0);
  EXPECT_DOUBLE_EQ(d[2], wire_x / 4.0);
  EXPECT_DOUBLE_EQ(d[0], wire_x / 4.0 + half_pin);
  EXPECT_DOUBLE_EQ(d[3], wire_x / 4.0 + half_pin);
  EXPECT_DOUBLE_EQ(map.pin_density()[0], 1.0);
  EXPECT_DOUBLE_EQ(map.pin_density()[3], 1.0);
}

TEST(CongestionMap, SinglePinNetContributesOnlySurcharge) {
  NetlistBuilder b(netlist::standard_library());
  const CellId c = b.add_cell("c", CellFunc::kInv);
  const NetId n = b.add_net("n");
  b.connect(c, "Y", n);
  const auto nl = b.take();
  const netlist::Design design(geom::Rect{0, 0, 10, 10}, 1.0, 0.25);
  Placement pl(1);
  pl[c] = {5.0, 5.0};
  CongestionOptions opt;
  opt.pin_weight = 1.0;
  CongestionMap map(nl, design, opt);
  map.build(pl);
  EXPECT_NEAR(sum(map.demand_h()), 0.5, 1e-12);  // pin_weight / 2
  EXPECT_NEAR(sum(map.demand_v()), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(sum(map.pin_density()), 1.0);
}

TEST(CongestionMap, RebuildOverwritesPreviousGrids) {
  TwoCellFixture f;
  Placement pl(2);
  pl[f.a] = {2.0, 2.0};
  pl[f.b] = {8.0, 8.0};
  CongestionMap map(*f.nl, *f.design, {});
  map.build(pl);
  const double first = sum(map.demand_h());
  map.build(pl);  // identical placement: grids must not accumulate
  EXPECT_DOUBLE_EQ(sum(map.demand_h()), first);
}

TEST(CongestionMap, BitwiseDeterministicAcrossThreadCounts) {
  const dpgen::Benchmark bench = dpgen::make_benchmark("mix50");
  auto grids = [&](std::size_t threads) {
    CongestionMap map(bench.netlist, bench.design, {});
    if (threads > 0) {
      map.set_thread_pool(std::make_shared<util::ThreadPool>(threads));
    }
    map.build(bench.placement);
    struct G {
      std::vector<double> h, v, p;
    } g;
    g.h.assign(map.demand_h().begin(), map.demand_h().end());
    g.v.assign(map.demand_v().begin(), map.demand_v().end());
    g.p.assign(map.pin_density().begin(), map.pin_density().end());
    return g;
  };
  const auto serial = grids(0);  // no pool at all
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}, std::size_t{7}}) {
    const auto par = grids(threads);
    ASSERT_EQ(serial.h.size(), par.h.size());
    for (std::size_t i = 0; i < serial.h.size(); ++i) {
      ASSERT_EQ(serial.h[i], par.h[i]) << "demand_h[" << i << "] threads="
                                       << threads;
      ASSERT_EQ(serial.v[i], par.v[i]) << "demand_v[" << i << "] threads="
                                       << threads;
      ASSERT_EQ(serial.p[i], par.p[i]) << "pins[" << i << "] threads="
                                       << threads;
    }
  }
}

TEST(CongestionReport, MetricsAreOrderedAndBounded) {
  const dpgen::Benchmark bench = dpgen::make_benchmark("dp_alu32");
  CongestionMap map(bench.netlist, bench.design, {});
  map.build(bench.placement);
  const CongestionReport rep = map.report();
  EXPECT_EQ(rep.bins, map.bins_per_side());
  EXPECT_DOUBLE_EQ(rep.peak, std::max(rep.peak_h, rep.peak_v));
  // Worst-0.5% mean dominates the wider percentiles; the peak bounds all.
  EXPECT_GE(rep.peak + 1e-12, rep.ace_0_5);
  EXPECT_GE(rep.ace_0_5 + 1e-12, rep.ace_1);
  EXPECT_GE(rep.ace_1 + 1e-12, rep.ace_2);
  EXPECT_GE(rep.ace_2 + 1e-12, rep.ace_5);
  EXPECT_GE(rep.ace_5, 0.0);
  EXPECT_GE(rep.overflow_frac, 0.0);
  EXPECT_LE(rep.overflow_frac, 1.0);
  EXPECT_EQ(rep.overflowed(), rep.overflowed_bins > 0);
  // ratios() is the report's per-bin view: its max is the peak.
  double max_ratio = 0.0;
  for (const double r : map.ratios()) max_ratio = std::max(max_ratio, r);
  EXPECT_DOUBLE_EQ(max_ratio, rep.peak);
}

TEST(Inflation, ScalesOnlyEligibleCellsInOverflowedBins) {
  const dpgen::Benchmark bench = dpgen::make_benchmark("dp_add32");
  CongestionMap map(bench.netlist, bench.design, {});
  map.build(bench.placement);
  const double peak = map.report().peak;
  ASSERT_GT(peak, 0.0);

  const std::size_t n = bench.netlist.num_cells();
  const std::vector<double> base(n, 1.0);
  std::vector<bool> eligible(n, true);
  for (CellId c = 0; c < n; c += 2) eligible[c] = false;

  InflationOptions opt;
  opt.threshold = peak / 2.0;  // guarantee some bins count as overflowed
  opt.rate = 1.0;
  opt.max_scale = 1.5;
  std::vector<double> scale = base;
  const std::size_t grown = inflate_cells(bench.netlist, map,
                                          bench.placement, opt, base,
                                          eligible, scale);
  EXPECT_GT(grown, 0u);
  std::size_t above = 0;
  for (CellId c = 0; c < n; ++c) {
    if (!eligible[c]) {
      EXPECT_DOUBLE_EQ(scale[c], base[c]) << "ineligible cell " << c;
      continue;
    }
    EXPECT_GE(scale[c], base[c]);
    EXPECT_LE(scale[c], base[c] * opt.max_scale + 1e-12);
    if (scale[c] > base[c]) ++above;
  }
  EXPECT_EQ(above, grown);

  // Threshold above the peak: nothing is overflowed, nothing inflates.
  opt.threshold = peak + 1.0;
  std::vector<double> unchanged = base;
  EXPECT_EQ(inflate_cells(bench.netlist, map, bench.placement, opt, base,
                          eligible, unchanged),
            0u);
  EXPECT_EQ(unchanged, base);
}

TEST(Refinement, PlacerMeasuresAndRefinesDeterministically) {
  auto run = [&](std::size_t threads) {
    dpgen::Benchmark bench = dpgen::make_benchmark("dp_add32");
    core::PlacerConfig c;
    c.structure_aware = false;
    c.num_threads = threads;
    c.congestion.refine = true;
    c.congestion.max_iters = 1;
    Placement pl = bench.placement;
    core::StructurePlacer placer(bench.netlist, bench.design, c);
    return placer.place(pl, nullptr);
  };
  const core::PlaceReport r1 = run(1);
  ASSERT_TRUE(r1.congestion_measured);
  EXPECT_GT(r1.congestion_gp.peak, 0.0);
  EXPECT_GT(r1.congestion.peak, 0.0);
  EXPECT_TRUE(r1.legality.legal());

  const core::PlaceReport r4 = run(4);
  EXPECT_EQ(r1.hpwl_final, r4.hpwl_final);
  EXPECT_EQ(r1.congestion.peak, r4.congestion.peak);
  EXPECT_EQ(r1.congestion_gp.peak, r4.congestion_gp.peak);
  EXPECT_EQ(r1.congestion_refine_iters, r4.congestion_refine_iters);
  EXPECT_EQ(r1.congestion_inflated_cells, r4.congestion_inflated_cells);
}

}  // namespace
}  // namespace dp::route
