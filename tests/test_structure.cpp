#include <gtest/gtest.h>

#include "netlist/structure.hpp"

namespace dp::netlist {
namespace {

TEST(StructureGroup, MakeInitializesHoles) {
  const auto g = StructureGroup::make("g", 4, 3);
  EXPECT_EQ(g.bits, 4u);
  EXPECT_EQ(g.stages, 3u);
  EXPECT_EQ(g.cells.size(), 12u);
  EXPECT_EQ(g.num_cells(), 0u);
  for (CellId c : g.cells) EXPECT_EQ(c, kInvalidId);
}

TEST(StructureGroup, AtIndexing) {
  auto g = StructureGroup::make("g", 2, 3);
  g.at(0, 0) = 10;
  g.at(1, 2) = 20;
  EXPECT_EQ(g.at(0, 0), 10u);
  EXPECT_EQ(g.at(1, 2), 20u);
  EXPECT_EQ(g.cells[0], 10u);
  EXPECT_EQ(g.cells[1 * 3 + 2], 20u);
  EXPECT_EQ(g.num_cells(), 2u);
}

TEST(StructureGroup, SliceSkipsHoles) {
  auto g = StructureGroup::make("g", 2, 3);
  g.at(0, 0) = 1;
  g.at(0, 2) = 3;
  const auto slice = g.slice(0);
  EXPECT_EQ(slice, (std::vector<CellId>{1, 3}));
  EXPECT_TRUE(g.slice(1).empty());
}

TEST(StructureGroup, StageSkipsHoles) {
  auto g = StructureGroup::make("g", 3, 2);
  g.at(0, 1) = 5;
  g.at(2, 1) = 7;
  EXPECT_EQ(g.stage(1), (std::vector<CellId>{5, 7}));
  EXPECT_TRUE(g.stage(0).empty());
}

TEST(StructureAnnotation, MembershipAndTotals) {
  StructureAnnotation ann;
  auto g = StructureGroup::make("g", 2, 2);
  g.at(0, 0) = 0;
  g.at(1, 1) = 3;
  ann.groups.push_back(g);
  EXPECT_EQ(ann.total_cells(), 2u);
  const auto member = ann.membership(5);
  EXPECT_TRUE(member[0]);
  EXPECT_FALSE(member[1]);
  EXPECT_TRUE(member[3]);
  EXPECT_TRUE(ann.covers(3, 5));
  EXPECT_FALSE(ann.covers(4, 5));
}

TEST(RowLanes, BitsAlongYGivesSlices) {
  auto g = StructureGroup::make("g", 2, 3);
  g.at(0, 0) = 1;
  g.at(0, 1) = 2;
  g.at(1, 0) = 3;
  const auto lanes = row_lanes(g, /*bits_along_y=*/true);
  ASSERT_EQ(lanes.size(), 2u);
  EXPECT_EQ(lanes[0], (std::vector<CellId>{1, 2}));
  EXPECT_EQ(lanes[1], (std::vector<CellId>{3}));
}

TEST(RowLanes, TransposedGivesStages) {
  auto g = StructureGroup::make("g", 2, 3);
  g.at(0, 0) = 1;
  g.at(1, 0) = 3;
  g.at(0, 2) = 9;
  const auto lanes = row_lanes(g, /*bits_along_y=*/false);
  ASSERT_EQ(lanes.size(), 3u);
  EXPECT_EQ(lanes[0], (std::vector<CellId>{1, 3}));
  EXPECT_TRUE(lanes[1].empty());
  EXPECT_EQ(lanes[2], (std::vector<CellId>{9}));
}

}  // namespace
}  // namespace dp::netlist
