#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "util/thread_pool.hpp"

namespace dp::util {
namespace {

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  constexpr std::size_t kTasks = 1000;
  std::vector<std::atomic<int>> hits(kTasks);
  pool.run(kTasks, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran(8);
  pool.run(8, [&](std::size_t i) { ran[i] = std::this_thread::get_id(); });
  for (const auto id : ran) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, ZeroTasksIsANoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.run(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, MoreTasksThanThreads) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(10000);
  pool.run(hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  int total = 0;
  for (auto& h : hits) total += h.load();
  EXPECT_EQ(total, 10000);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(4);
  std::vector<double> slot(16, 0.0);
  for (int round = 1; round <= 50; ++round) {
    pool.run(slot.size(),
             [&](std::size_t i) { slot[i] = static_cast<double>(round); });
    const double sum = std::accumulate(slot.begin(), slot.end(), 0.0);
    ASSERT_DOUBLE_EQ(sum, 16.0 * round);
  }
}

TEST(ThreadPool, PerSlotWritesReduceDeterministically) {
  // The usage contract of the gradient kernels: each task owns a slot,
  // the caller reduces slots in fixed order. The reduced value must not
  // depend on the worker count.
  auto reduce_with = [](std::size_t workers) {
    ThreadPool pool(workers);
    std::vector<double> part(37, 0.0);
    pool.run(part.size(), [&](std::size_t i) {
      double acc = 0.0;
      for (std::size_t j = 0; j <= i; ++j) {
        acc += 1.0 / static_cast<double>(1 + ((i * 31 + j) % 97));
      }
      part[i] = acc;
    });
    double total = 0.0;
    for (const double p : part) total += p;
    return total;
  };
  const double serial = reduce_with(1);
  EXPECT_EQ(serial, reduce_with(2));
  EXPECT_EQ(serial, reduce_with(4));
  EXPECT_EQ(serial, reduce_with(7));
}

TEST(ThreadPool, HardwareConcurrencyDefault) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

}  // namespace
}  // namespace dp::util
