// Timing subsystem: graph construction (pin-level arcs, levelization,
// loop detection), analyzer correctness (arrival/required/slack
// identities), and the parallel determinism contract (bitwise identical
// reports for every thread count; ISSUE 5 acceptance).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <random>

#include "dpgen/benchmarks.hpp"
#include "netlist/library.hpp"
#include "timing/timing_analyzer.hpp"
#include "timing/timing_graph.hpp"
#include "util/thread_pool.hpp"

namespace dp::timing {
namespace {

using netlist::CellFunc;
using netlist::CellId;
using netlist::NetId;
using netlist::PinDir;
using netlist::PinId;
using netlist::Placement;

constexpr double kInf = std::numeric_limits<double>::infinity();

const dpgen::Benchmark& alu32() {
  static const dpgen::Benchmark b = dpgen::make_benchmark("dp_alu32");
  return b;
}

/// pad -> inv -> dff -> pad chain with unit cell spacing.
struct Chain {
  Chain() {
    netlist::NetlistBuilder b(netlist::standard_library());
    pi = b.add_cell("pi", CellFunc::kPad, true);
    inv = b.add_cell("inv", CellFunc::kInv);
    ff = b.add_cell("ff", CellFunc::kDff);
    po = b.add_cell("po", CellFunc::kPad, true);
    n1 = b.add_net("n1");
    n2 = b.add_net("n2");
    n3 = b.add_net("n3");
    pi_out = b.connect_dir(pi, 0, n1, PinDir::kOutput);
    inv_a = b.connect(inv, "A", n1);
    inv_y = b.connect(inv, "Y", n2);
    ff_d = b.connect(ff, "D", n2);
    ff_q = b.connect(ff, "Q", n3);
    po_in = b.connect_dir(po, 0, n3, PinDir::kInput);
    nl.emplace(b.take());
    pl.assign(4, {});
    pl[pi] = {0.0, 0.0};
    pl[inv] = {1.0, 0.0};
    pl[ff] = {2.0, 0.0};
    pl[po] = {3.0, 0.0};
  }

  CellId pi, inv, ff, po;
  NetId n1, n2, n3;
  PinId pi_out, inv_a, inv_y, ff_d, ff_q, po_in;
  std::optional<netlist::Netlist> nl;
  Placement pl;
};

// ---- graph construction ----------------------------------------------------

TEST(TimingGraph, ChainArcsAndLevels) {
  Chain c;
  const TimingGraph g(*c.nl);
  EXPECT_EQ(g.num_nodes(), c.nl->num_pins());
  // Net arcs: pi->inv.A, inv.Y->ff.D, ff.Q->po. Cell arcs: inv.A->inv.Y
  // only (DFF and pads are path boundaries).
  EXPECT_EQ(g.num_arcs(), 4u);
  EXPECT_FALSE(g.has_loops());
  EXPECT_EQ(g.order().size(), c.nl->num_pins());
  // pi.out, ff.Q at level 0; inv.A and po (via ff.Q) downstream.
  EXPECT_EQ(g.level(c.pi_out), 0u);
  EXPECT_EQ(g.level(c.ff_q), 0u);
  EXPECT_EQ(g.level(c.inv_a), 1u);
  EXPECT_EQ(g.level(c.inv_y), 2u);
  EXPECT_EQ(g.level(c.ff_d), 3u);
  EXPECT_EQ(g.level(c.po_in), 1u);
  EXPECT_EQ(g.num_levels(), 4u);
  // Endpoints: the DFF D pin and the output pad, ascending.
  ASSERT_EQ(g.endpoints().size(), 2u);
  EXPECT_EQ(g.endpoints()[0], c.ff_d);
  EXPECT_EQ(g.endpoints()[1], c.po_in);
}

TEST(TimingGraph, OrderGroupedByLevel) {
  const TimingGraph g(alu32().netlist);
  EXPECT_FALSE(g.has_loops());
  const auto order = g.order();
  ASSERT_EQ(order.size() + g.loop_pins().size(), g.num_nodes());
  for (std::size_t l = 0; l < g.num_levels(); ++l) {
    for (std::size_t i = g.level_first(l); i < g.level_first(l + 1); ++i) {
      EXPECT_EQ(g.level(order[i]), l);
      if (i > g.level_first(l)) {
        EXPECT_LT(order[i - 1], order[i]) << "ascending ids within a level";
      }
    }
  }
  // Every fanin arc strictly crosses levels upward (the invariant that
  // makes per-level parallel propagation race-free).
  for (const PinId p : order) {
    for (std::size_t a = g.fanin_first(p); a < g.fanin_first(p + 1); ++a) {
      EXPECT_LT(g.level(g.arc_src()[a]), g.level(p));
    }
  }
}

TEST(TimingGraph, FanoutMirrorsFanin) {
  const TimingGraph g(alu32().netlist);
  std::size_t fanout_arcs = 0;
  for (PinId p = 0; p < g.num_nodes(); ++p) {
    for (std::size_t i = g.fanout_first(p); i < g.fanout_first(p + 1); ++i) {
      const std::uint32_t a = g.fanout_arc()[i];
      EXPECT_EQ(g.arc_src()[a], p);
      EXPECT_EQ(g.fanout_dst()[i], [&] {
        // The fanin arc index must map back to the same destination:
        // locate dst by binary property fanin_first(dst) <= a < next.
        PinId dst = g.fanout_dst()[i];
        EXPECT_GE(a, g.fanin_first(dst));
        EXPECT_LT(a, g.fanin_first(dst + 1));
        return dst;
      }());
      ++fanout_arcs;
    }
  }
  EXPECT_EQ(fanout_arcs, g.num_arcs());
}

TEST(TimingGraph, CombinationalLoopDetected) {
  netlist::NetlistBuilder b(netlist::standard_library());
  const CellId c1 = b.add_cell("c1", CellFunc::kInv);
  const CellId c2 = b.add_cell("c2", CellFunc::kInv);
  const NetId na = b.add_net("na");
  const NetId nb = b.add_net("nb");
  b.connect(c1, "Y", na);
  b.connect(c2, "A", na);
  b.connect(c2, "Y", nb);
  b.connect(c1, "A", nb);
  const auto nl = b.take();
  const TimingGraph g(nl);
  EXPECT_TRUE(g.has_loops());
  EXPECT_EQ(g.loop_pins().size(), 4u);
  EXPECT_TRUE(g.order().empty());

  // The analyzer degrades gracefully: loop pins carry zero slack.
  TimingAnalyzer an(g);
  Placement pl(2, {1.0, 1.0});
  const TimingReport& r = an.analyze(pl);
  EXPECT_EQ(r.loop_pins, 4u);
  for (const PinId p : g.loop_pins()) {
    EXPECT_EQ(an.arrival()[p], 0.0);
    EXPECT_EQ(an.slack()[p], 0.0);
  }
}

// ---- analyzer correctness --------------------------------------------------

TEST(TimingAnalyzer, ChainDelaysByHand) {
  Chain c;
  const TimingGraph g(*c.nl);
  TimingOptions opt;
  opt.gate_delay = 1.0;
  opt.wire_delay_per_unit = 0.5;
  TimingAnalyzer an(g, opt);
  const TimingReport& r = an.analyze(c.pl);

  // Pin offsets are zero-ish for these types? Compute expected from net
  // HPWL via the analyzer's own per-net delays for robustness.
  const double d1 = an.net_delay()[c.n1];
  const double d2 = an.net_delay()[c.n2];
  const double d3 = an.net_delay()[c.n3];
  EXPECT_GT(d1, 0.0);
  EXPECT_EQ(an.arrival()[c.inv_a], d1);
  EXPECT_EQ(an.arrival()[c.inv_y], d1 + 1.0);
  EXPECT_EQ(an.arrival()[c.ff_d], d1 + 1.0 + d2);
  // The register output starts a fresh path.
  EXPECT_EQ(an.arrival()[c.ff_q], 0.0);
  EXPECT_EQ(an.arrival()[c.po_in], d3);

  // Auto period = worst endpoint arrival -> zero worst slack, no
  // violations.
  EXPECT_EQ(r.clock_period, d1 + 1.0 + d2);
  EXPECT_EQ(r.wns, 0.0);
  EXPECT_EQ(r.tns, 0.0);
  EXPECT_EQ(r.violations, 0u);
  EXPECT_EQ(r.endpoints, 2u);

  // Critical path: pi.out -> inv.A -> inv.Y -> ff.D.
  ASSERT_EQ(r.critical_path.size(), 4u);
  EXPECT_EQ(r.critical_path.front().pin, c.pi_out);
  EXPECT_EQ(r.critical_path.back().pin, c.ff_d);
  EXPECT_EQ(r.critical_path.back().arrival, r.max_arrival);

  // An explicit tight period creates violations.
  opt.clock_period = 0.5;
  TimingAnalyzer tight(g, opt);
  const TimingReport& rt = tight.analyze(c.pl);
  EXPECT_LT(rt.wns, 0.0);
  EXPECT_LT(rt.tns, 0.0);
  EXPECT_GT(rt.violations, 0u);
  EXPECT_EQ(rt.clock_period, 0.5);
}

TEST(TimingAnalyzer, RandomizedSlackConsistency) {
  const auto& b = alu32();
  const TimingGraph g(b.netlist);
  TimingAnalyzer an(g);
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> jitter(-3.0, 3.0);
  Placement pl = b.placement;
  for (int round = 0; round < 3; ++round) {
    for (auto& p : pl) {
      p.x += jitter(rng);
      p.y += jitter(rng);
    }
    const TimingReport& r = an.analyze(pl);
    const auto arrival = an.arrival();
    const auto required = an.required();
    const auto slack = an.slack();

    // Arrival is the exact max over fanin; slack the exact difference.
    for (const PinId p : g.order()) {
      double at = 0.0;
      for (std::size_t a = g.fanin_first(p); a < g.fanin_first(p + 1); ++a) {
        const double d = g.arc_kind()[a] == ArcKind::kCell
                             ? an.options().gate_delay
                             : an.net_delay()[g.arc_net()[a]];
        at = std::max(at, arrival[g.arc_src()[a]] + d);
      }
      ASSERT_EQ(arrival[p], at) << "pin " << p;
      if (std::isfinite(required[p])) {
        ASSERT_EQ(slack[p], required[p] - arrival[p]) << "pin " << p;
      }
    }

    // Endpoint summary identities.
    double wns = kInf, tns = 0.0, max_arrival = 0.0;
    std::size_t violations = 0;
    for (const PinId e : g.endpoints()) {
      ASSERT_TRUE(std::isfinite(required[e]));
      ASSERT_LE(required[e], r.clock_period);
      wns = std::min(wns, slack[e]);
      max_arrival = std::max(max_arrival, arrival[e]);
      if (slack[e] < 0.0) {
        tns += slack[e];
        ++violations;
      }
    }
    EXPECT_EQ(r.wns, wns);
    EXPECT_EQ(r.tns, tns);
    EXPECT_EQ(r.violations, violations);
    EXPECT_EQ(r.max_arrival, max_arrival);
    // Auto period: the worst endpoint exactly meets timing.
    EXPECT_EQ(r.clock_period, max_arrival);
    EXPECT_EQ(r.wns, 0.0);

    // The critical path is a real path: consecutive nodes joined by an
    // arc, arrivals non-decreasing, ending at the worst endpoint arrival.
    const auto& path = r.critical_path;
    ASSERT_GE(path.size(), 1u);
    EXPECT_EQ(path.back().arrival, r.max_arrival);
    for (std::size_t i = 1; i < path.size(); ++i) {
      EXPECT_LE(path[i - 1].arrival, path[i].arrival);
      bool connected = false;
      for (std::size_t a = g.fanin_first(path[i].pin);
           a < g.fanin_first(path[i].pin + 1); ++a) {
        connected |= g.arc_src()[a] == path[i - 1].pin;
      }
      EXPECT_TRUE(connected) << "path hop " << i;
    }

    // Criticality lands in [0, 1] and the weight scale in [1, 1 + w].
    for (const double cr : an.net_criticality()) {
      EXPECT_GE(cr, 0.0);
      EXPECT_LE(cr, 1.0);
    }
    // The weight scale is positive, unit-mean, and ordered by
    // criticality (ratio between a crit-1 net and one below the floor
    // = 1 + w; a floor of 0 exposes the full quadratic ramp).
    std::vector<double> scale;
    an.net_weight_scale(8.0, 0.0, scale);
    ASSERT_EQ(scale.size(), b.netlist.num_nets());
    double mean = 0.0, smin = kInf, smax = 0.0;
    for (const double s : scale) {
      EXPECT_GT(s, 0.0);
      mean += s;
      smin = std::min(smin, s);
      smax = std::max(smax, s);
    }
    mean /= static_cast<double>(scale.size());
    EXPECT_NEAR(mean, 1.0, 1e-9);
    EXPECT_NEAR(smax / smin, 9.0, 1e-9);

    // A floor of 0.5 leaves sub-floor nets at the (common, normalized)
    // baseline scale: their scales collapse onto one value.
    std::vector<double> floored;
    an.net_weight_scale(8.0, 0.5, floored);
    double base = 0.0;
    for (std::size_t n = 0; n < floored.size(); ++n) {
      if (an.net_criticality()[n] <= 0.5) base = floored[n];
    }
    for (std::size_t n = 0; n < floored.size(); ++n) {
      if (an.net_criticality()[n] <= 0.5) {
        EXPECT_EQ(floored[n], base);
      } else {
        EXPECT_GT(floored[n], base);
      }
    }
  }
}

TEST(TimingAnalyzer, SomeNetIsFullyCritical) {
  const auto& b = alu32();
  const TimingGraph g(b.netlist);
  TimingAnalyzer an(g);
  an.analyze(b.placement);
  double max_crit = 0.0;
  for (const double c : an.net_criticality()) max_crit = std::max(max_crit, c);
  EXPECT_EQ(max_crit, 1.0) << "the tightest net defines criticality 1";
}

// ---- parallel determinism --------------------------------------------------

TEST(TimingDeterminism, ReportBitwiseAcrossThreadCounts) {
  const auto& b = alu32();
  const TimingGraph g(b.netlist);

  auto run = [&](std::size_t threads) {
    TimingAnalyzer an(g);
    if (threads > 0) {
      an.set_thread_pool(std::make_shared<util::ThreadPool>(threads));
    }
    an.analyze(b.placement);
    return std::make_unique<TimingAnalyzer>(std::move(an));
  };

  const auto serial = run(0);
  for (const std::size_t threads : {1u, 2u, 4u}) {
    const auto par = run(threads);
    const TimingReport& a = serial->report();
    const TimingReport& c = par->report();
    EXPECT_EQ(a.wns, c.wns) << threads;
    EXPECT_EQ(a.tns, c.tns) << threads;
    EXPECT_EQ(a.clock_period, c.clock_period) << threads;
    EXPECT_EQ(a.max_arrival, c.max_arrival) << threads;
    EXPECT_EQ(a.violations, c.violations) << threads;
    ASSERT_EQ(a.critical_path.size(), c.critical_path.size()) << threads;
    for (std::size_t i = 0; i < a.critical_path.size(); ++i) {
      ASSERT_EQ(a.critical_path[i].pin, c.critical_path[i].pin);
      ASSERT_EQ(a.critical_path[i].arrival, c.critical_path[i].arrival);
    }
    for (std::size_t p = 0; p < g.num_nodes(); ++p) {
      ASSERT_EQ(serial->arrival()[p], par->arrival()[p]) << "pin " << p;
      ASSERT_EQ(serial->required()[p], par->required()[p]) << "pin " << p;
      ASSERT_EQ(serial->slack()[p], par->slack()[p]) << "pin " << p;
    }
    for (std::size_t n = 0; n < b.netlist.num_nets(); ++n) {
      ASSERT_EQ(serial->net_criticality()[n], par->net_criticality()[n]);
    }
  }
}

}  // namespace
}  // namespace dp::timing
