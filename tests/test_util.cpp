#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/prng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace dp::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b()) ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformBoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, BelowNeverReachesBound) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(3);
  std::vector<bool> seen(8, false);
  for (int i = 0; i < 400; ++i) seen[rng.index(8)] = true;
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, GaussApproximatelyStandard) {
  Rng rng(5);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gauss();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(42);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  shuffle(v, rng);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ReseedResetsSequence) {
  Rng rng(77);
  const auto first = rng();
  rng.reseed(77);
  EXPECT_EQ(rng(), first);
}

TEST(Stats, MeanBasic) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stats, MeanEmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, VarianceBasic) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(variance(xs), 4.0);
}

TEST(Stats, VarianceOfConstantIsZero) {
  const std::vector<double> xs{3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(variance(xs), 0.0);
}

TEST(Stats, GeomeanBasic) {
  const std::vector<double> xs{1.0, 4.0, 16.0};
  EXPECT_NEAR(geomean(xs), 4.0, 1e-12);
}

TEST(Stats, PercentileEndpoints) {
  std::vector<double> xs{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 3.0);
}

TEST(Stats, SummarizeBounds) {
  const std::vector<double> xs{1.0, 9.0, 5.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
}

TEST(Table, RendersHeaderAndRows) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| a "), std::string::npos);
  EXPECT_NE(out.find("333"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvFormat) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n");
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::integer(42), "42");
  EXPECT_EQ(Table::pct(0.5, 1), "50.0%");
}

}  // namespace
}  // namespace dp::util
