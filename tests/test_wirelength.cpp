#include <gtest/gtest.h>

#include "dpgen/benchmarks.hpp"
#include "eval/metrics.hpp"
#include "gp/wirelength.hpp"
#include "util/prng.hpp"

namespace dp::gp {
namespace {

using netlist::CellFunc;
using netlist::CellId;
using netlist::NetId;
using netlist::NetlistBuilder;
using netlist::Placement;

/// Two inverters on one net, centers at given points (pin offsets apply).
struct TwoCellFixture {
  TwoCellFixture() : builder(netlist::standard_library()) {
    a = builder.add_cell("a", CellFunc::kInv);
    b = builder.add_cell("b", CellFunc::kInv);
    const NetId n = builder.add_net("n");
    builder.connect(a, "Y", n);
    builder.connect(b, "A", n);
    nl.emplace(builder.take());
  }
  NetlistBuilder builder;
  CellId a, b;
  std::optional<netlist::Netlist> nl;
};

TEST(Hpwl, TwoPinNetExact) {
  TwoCellFixture f;
  Placement pl(2);
  pl[f.a] = {0.0, 0.0};
  pl[f.b] = {3.0, 4.0};
  // Pin offsets shift the exact value; compute from pin positions.
  const auto& nl = *f.nl;
  geom::Rect box;
  for (auto p : nl.net(0).pins) box.expand(nl.pin_position(p, pl));
  EXPECT_DOUBLE_EQ(eval::hpwl(nl, pl), box.half_perimeter());
}

TEST(Hpwl, SinglePinNetIsZero) {
  NetlistBuilder b(netlist::standard_library());
  const CellId c = b.add_cell("c", CellFunc::kInv);
  const NetId n = b.add_net("n");
  b.connect(c, "Y", n);
  const auto nl = b.take();
  Placement pl(1);
  pl[c] = {5, 5};
  EXPECT_DOUBLE_EQ(eval::hpwl(nl, pl), 0.0);
}

TEST(Hpwl, NetWeightScales) {
  NetlistBuilder b(netlist::standard_library());
  const CellId c1 = b.add_cell("c1", CellFunc::kInv);
  const CellId c2 = b.add_cell("c2", CellFunc::kInv);
  const NetId n = b.add_net("n", 3.0);
  b.connect(c1, "Y", n);
  b.connect(c2, "A", n);
  const auto nl = b.take();
  Placement pl(2);
  pl[c1] = {0, 0};
  pl[c2] = {1, 0};
  EXPECT_DOUBLE_EQ(eval::hpwl(nl, pl),
                   3.0 * eval::net_hpwl(nl, n, pl));
}

TEST(SmoothWirelength, LseUpperBoundsHpwl) {
  TwoCellFixture f;
  Placement pl(2);
  pl[f.a] = {0, 0};
  pl[f.b] = {7, 2};
  SmoothWirelength lse(*f.nl, WirelengthModel::kLse, 1.0);
  EXPECT_GE(lse.value(pl), eval::hpwl(*f.nl, pl) - 1e-9);
}

TEST(SmoothWirelength, WaLowerBoundsHpwl) {
  TwoCellFixture f;
  Placement pl(2);
  pl[f.a] = {0, 0};
  pl[f.b] = {7, 2};
  SmoothWirelength wa(*f.nl, WirelengthModel::kWa, 1.0);
  EXPECT_LE(wa.value(pl), eval::hpwl(*f.nl, pl) + 1e-9);
}

class ModelConvergence
    : public ::testing::TestWithParam<WirelengthModel> {};

TEST_P(ModelConvergence, ApproachesHpwlAsGammaShrinks) {
  TwoCellFixture f;
  Placement pl(2);
  pl[f.a] = {0, 0};
  pl[f.b] = {10, 6};
  const double exact = eval::hpwl(*f.nl, pl);
  SmoothWirelength model(*f.nl, GetParam(), 4.0);
  const double loose = std::abs(model.value(pl) - exact);
  model.set_gamma(0.05);
  const double tight = std::abs(model.value(pl) - exact);
  EXPECT_LT(tight, loose);
  EXPECT_LT(tight, 0.2);
}

TEST_P(ModelConvergence, StableForDistantCells) {
  TwoCellFixture f;
  Placement pl(2);
  pl[f.a] = {0, 0};
  pl[f.b] = {1e6, 1e6};  // would overflow exp() without max-shift
  SmoothWirelength model(*f.nl, GetParam(), 0.5);
  EXPECT_TRUE(std::isfinite(model.value(pl)));
}

/// Finite-difference gradient validation on a random small netlist.
TEST_P(ModelConvergence, GradientMatchesFiniteDifference) {
  // A small ALU slice provides multi-pin nets with shared cells.
  dpgen::Generator gen("t", 3);
  auto a = gen.input_bus("a", 4);
  auto b = gen.input_bus("b", 4);
  gen.add_alu("alu", a, b);
  const dpgen::Benchmark bench = gen.finish();
  const auto& nl = bench.netlist;

  VarMap vars(nl);
  Placement pl = bench.placement;
  util::Rng rng(17);
  for (std::size_t v = 0; v < vars.num_vars(); ++v) {
    pl[vars.cell(v)] = {rng.uniform(0, 10), rng.uniform(0, 10)};
  }

  SmoothWirelength model(nl, GetParam(), 0.8);
  const std::size_t n = vars.num_vars();
  std::vector<double> gx(n, 0.0), gy(n, 0.0);
  model.eval(pl, vars, gx, gy);

  const double h = 1e-5;
  for (std::size_t v = 0; v < std::min<std::size_t>(n, 12); ++v) {
    const CellId c = vars.cell(v);
    const double x0 = pl[c].x;
    pl[c].x = x0 + h;
    const double fp = model.value(pl);
    pl[c].x = x0 - h;
    const double fm = model.value(pl);
    pl[c].x = x0;
    EXPECT_NEAR(gx[v], (fp - fm) / (2 * h), 1e-4)
        << "cell " << nl.cell(c).name;
  }
}

INSTANTIATE_TEST_SUITE_P(BothModels, ModelConvergence,
                         ::testing::Values(WirelengthModel::kLse,
                                           WirelengthModel::kWa));

TEST(SmoothWirelength, WaTighterThanLse) {
  // The WA model's defining property (Hsu/Balabanov/Chang): a tighter
  // approximation than LSE at equal gamma, on average.
  dpgen::Generator gen("t", 5);
  auto a = gen.input_bus("a", 8);
  auto b = gen.input_bus("b", 8);
  gen.add_pipelined_adder("add", a, b, 1);
  const auto bench = gen.finish();
  util::Rng rng(4);
  netlist::Placement pl = bench.placement;
  for (CellId c = 0; c < bench.netlist.num_cells(); ++c) {
    if (!bench.netlist.cell(c).fixed) {
      pl[c] = {rng.uniform(0, 20), rng.uniform(0, 20)};
    }
  }
  SmoothWirelength lse(bench.netlist, WirelengthModel::kLse, 1.0);
  SmoothWirelength wa(bench.netlist, WirelengthModel::kWa, 1.0);
  // The tightness claim is statistical, not per-instance: average the
  // approximation error over several random placements.
  double err_lse = 0.0, err_wa = 0.0;
  for (int trial = 0; trial < 8; ++trial) {
    for (CellId c = 0; c < bench.netlist.num_cells(); ++c) {
      if (!bench.netlist.cell(c).fixed) {
        pl[c] = {rng.uniform(0, 20), rng.uniform(0, 20)};
      }
    }
    const double exact = eval::hpwl(bench.netlist, pl);
    err_lse += std::abs(lse.value(pl) - exact);
    err_wa += std::abs(wa.value(pl) - exact);
  }
  EXPECT_LT(err_wa, err_lse);
}

}  // namespace
}  // namespace dp::gp
